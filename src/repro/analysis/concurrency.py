"""RDL009–RDL012: static lock-discipline analysis (the concurrency rules).

The serving stack shares mutable state across request threads and
``ThreadPoolExecutor`` workers — engine format swaps, decision caches,
metric stores, audit logs.  The convention protecting that state is a
per-object ``self._lock`` and the disjoint row-block discipline for
worker closures; these rules check the convention from source the way
RDL001–RDL008 check dtype and hot-loop discipline:

- **RDL009** — an attribute written under ``with self._lock:`` in one
  method is *guarded*; reading or writing it without the lock in
  another method is a race.  A per-class call map lets private helpers
  whose every in-class call site holds the lock inherit the locked
  context (the ``_drain``-style "caller holds the lock" pattern).
- **RDL010** — mutable state captured by a closure handed to an
  executor (``ThreadPoolExecutor``/``WorkerPool``) escapes its thread;
  mutating it without a lock is the race class RDL003 checks for
  pool-hinted receivers, extended here to constructor-tracked executor
  names and ``run()`` thunk lists, with lock-guarded mutations exempt.
- **RDL011** — two locks acquired in opposite nesting orders in the
  same class deadlock under contention; nesting one non-reentrant
  ``threading.Lock`` inside itself deadlocks unconditionally.
- **RDL012** — ``if x is None: x = ...`` lazy initialisation outside a
  lock is a time-of-check/time-of-use race: two threads both observe
  ``None`` and both construct (leaking one executor, in the
  ``WorkerPool._ensure`` case that motivated the rule).

The dynamic counterpart is :mod:`repro.analysis.race` (``REPRO_RACE=1``),
which checks the same discipline from recorded locksets at runtime.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.lint import Finding, Rule, _in_package, register

#: Packages where the lock discipline is load-bearing: everything the
#: serving/parallel path shares across threads.
CONCURRENT_PACKAGES = ("serve", "parallel", "obs", "core", "tune")

#: The concurrency rule family — what ``repro race`` selects.
CONCURRENCY_CODES = ("RDL009", "RDL010", "RDL011", "RDL012")

_LOCK_NAME = re.compile(r"lock|mutex|guard", re.IGNORECASE)

#: Container methods that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "remove",
        "discard",
        "clear",
        "pop",
        "popleft",
        "popitem",
        "sort",
        "reverse",
    }
)

#: Constructors whose result is shared-mutable when captured.
_MUTABLE_CTORS = frozenset(
    {
        "list",
        "dict",
        "set",
        "deque",
        "defaultdict",
        "bytearray",
        "Counter",
        "OrderedDict",
    }
)
_MUTABLE_NP_CTORS = frozenset({"empty", "zeros", "ones", "full"})

#: Executor types whose instances RDL010 tracks by assignment.
_EXECUTOR_CTORS = frozenset(
    {"ThreadPoolExecutor", "ProcessPoolExecutor", "WorkerPool"}
)
_EXECUTOR_FACTORIES = frozenset({"shared_pool"})

_INIT_METHODS = frozenset({"__init__", "__new__", "__post_init__"})


def _attr_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` -> ``("a", "b", "c")``; None for non-name roots."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _lock_name(node: ast.AST) -> Optional[str]:
    """Dotted name of a lock expression (terminal name says 'lock')."""
    chain = _attr_chain(node)
    if chain is None or not _LOCK_NAME.search(chain[-1]):
        return None
    return ".".join(chain)


class _FunctionFacts:
    """Lock-context facts for one function or method body.

    Walks statements carrying the stack of held locks and records:

    - ``accesses``: self-rooted attribute reads/writes with the lockset
    - ``lock_pairs``: (outer, inner) nested lock acquisitions
    - ``lazy_inits``: check-then-act ``if x is None: x = ...`` sites
    - ``self_calls``: ``self.method()`` calls with the lockset
    """

    def __init__(self, fn: ast.AST, self_name: Optional[str]) -> None:
        self.fn = fn
        self.self_name = self_name
        self.accesses: List[Tuple[Tuple[str, ...], bool, bool, ast.AST]] = []
        self.lock_pairs: List[Tuple[str, str, ast.AST]] = []
        self.lazy_inits: List[Tuple[str, bool, ast.AST]] = []
        self.self_calls: List[Tuple[str, bool]] = []
        self.globals_: Set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                self.globals_.update(node.names)
        body = fn.body if not isinstance(fn, ast.Lambda) else []
        self._walk(body, ())

    # -- statement walk carrying the lock stack -------------------------
    def _walk(self, stmts: List[ast.stmt], locks: Tuple[str, ...]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = list(locks)
                for item in stmt.items:
                    self._scan(item.context_expr, tuple(inner))
                    lk = _lock_name(item.context_expr)
                    if lk is not None:
                        for outer in inner:
                            self.lock_pairs.append(
                                (outer, lk, item.context_expr)
                            )
                        inner.append(lk)
                self._walk(stmt.body, tuple(inner))
            elif isinstance(stmt, ast.If):
                self._scan(stmt.test, locks)
                self._lazy_init(stmt, locks)
                self._walk(stmt.body, locks)
                self._walk(stmt.orelse, locks)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan(stmt.target, locks)
                self._scan(stmt.iter, locks)
                self._walk(stmt.body, locks)
                self._walk(stmt.orelse, locks)
            elif isinstance(stmt, ast.While):
                self._scan(stmt.test, locks)
                self._walk(stmt.body, locks)
                self._walk(stmt.orelse, locks)
            elif isinstance(stmt, ast.Try):
                self._walk(stmt.body, locks)
                for handler in stmt.handlers:
                    self._walk(handler.body, locks)
                self._walk(stmt.orelse, locks)
                self._walk(stmt.finalbody, locks)
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                # A nested def runs later, possibly on another thread —
                # its lock context is its own problem (RDL010 covers
                # closures that escape into executors).
                continue
            else:
                self._scan(stmt, locks)

    # -- expression scan -------------------------------------------------
    def _scan(self, node: ast.AST, locks: Tuple[str, ...]) -> None:
        locked = bool(locks)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute):
                chain = _attr_chain(sub)
                if (
                    chain is not None
                    and self.self_name is not None
                    and chain[0] == self.self_name
                    and len(chain) > 1
                ):
                    write = isinstance(sub.ctx, (ast.Store, ast.Del))
                    self.accesses.append((chain[1:], write, locked, sub))
            elif isinstance(sub, ast.Subscript) and isinstance(
                sub.ctx, (ast.Store, ast.Del)
            ):
                chain = _attr_chain(sub.value)
                if (
                    chain is not None
                    and self.self_name is not None
                    and chain[0] == self.self_name
                    and len(chain) > 1
                ):
                    self.accesses.append((chain[1:], True, locked, sub))
            elif isinstance(sub, ast.Call) and isinstance(
                sub.func, ast.Attribute
            ):
                chain = _attr_chain(sub.func.value)
                if (
                    chain is not None
                    and self.self_name is not None
                    and chain[0] == self.self_name
                ):
                    if sub.func.attr in _MUTATORS and len(chain) > 1:
                        self.accesses.append(
                            (chain[1:], True, locked, sub)
                        )
                    elif len(chain) == 1:
                        self.self_calls.append((sub.func.attr, locked))

    # -- RDL012 pattern --------------------------------------------------
    def _lazy_init(self, stmt: ast.If, locks: Tuple[str, ...]) -> None:
        test = stmt.test
        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Is)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            target = test.left
        elif isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            target = test.operand
        else:
            return
        desc = self._init_target(target)
        if desc is None:
            return
        for sub in stmt.body:
            for n in ast.walk(sub):
                if isinstance(n, ast.Assign):
                    for t in n.targets:
                        if self._init_target(t) == desc:
                            self.lazy_inits.append(
                                (desc, bool(locks), stmt)
                            )
                            return

    def _init_target(self, node: ast.AST) -> Optional[str]:
        chain = _attr_chain(node)
        if chain is None:
            return None
        if (
            self.self_name is not None
            and chain[0] == self.self_name
            and len(chain) > 1
        ):
            return ".".join(("self",) + chain[1:])
        if len(chain) == 1 and chain[0] in self.globals_:
            return chain[0]
        return None


def _method_facts(cls: ast.ClassDef) -> Dict[str, _FunctionFacts]:
    out: Dict[str, _FunctionFacts] = {}
    for item in cls.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = item.args.posonlyargs + item.args.args
            self_name = args[0].arg if args else None
            out[item.name] = _FunctionFacts(item, self_name)
    return out


def _lock_inherited(facts: Dict[str, _FunctionFacts]) -> Set[str]:
    """Methods whose every in-class call site holds a lock.

    The ``_drain`` pattern: a private helper documented "caller holds
    the lock" is only ever invoked from locked regions, so its body
    inherits the locked context.  Fixpoint over the class call map.
    """
    inherited: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, f in facts.items():
            if name in inherited or name in _INIT_METHODS:
                continue
            sites = [
                (caller, locked)
                for caller, cf in facts.items()
                for callee, locked in cf.self_calls
                if callee == name
            ]
            if not sites:
                continue
            if all(
                locked or caller in inherited for caller, locked in sites
            ):
                inherited.add(name)
                changed = True
    return inherited


@register
class GuardedAttributeRule(Rule):
    """RDL009: attributes written under a lock need it everywhere."""

    code = "RDL009"
    name = "guarded-attribute-unlocked"
    rationale = """
    A class that writes an attribute inside ``with self._lock:`` has
    declared that attribute shared mutable state — the lock is its only
    consistency guarantee.  Any other method reading or writing the
    same attribute without the lock can observe (or publish) a torn
    intermediate: the engine's matrix mid-swap, a batcher's pending
    list mid-drain.  Constructors are exempt (no concurrent alias can
    exist yet), and a private helper whose every in-class call site
    holds the lock inherits the locked context, so "caller holds the
    lock" helpers need no suppression.  Anything else needs the lock or
    a justified noqa naming the discipline that makes it safe.
    """

    def applies_to(self, path: str) -> bool:
        return _in_package(path, *CONCURRENT_PACKAGES)

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(node, path)

    def _check_class(
        self, cls: ast.ClassDef, path: str
    ) -> Iterator[Finding]:
        facts = _method_facts(cls)
        inherited = _lock_inherited(facts)
        guarded: Set[Tuple[str, ...]] = set()
        for name, f in facts.items():
            if name in _INIT_METHODS:
                continue
            locked_method = name in inherited
            for chain, write, locked, _ in f.accesses:
                if write and (locked or locked_method):
                    guarded.add(chain)
        if not guarded:
            return
        for name, f in facts.items():
            if name in _INIT_METHODS or name in inherited:
                continue
            for chain, write, locked, node in f.accesses:
                if chain in guarded and not locked:
                    attr = ".".join(chain)
                    kind = "written" if write else "read"
                    yield self.finding(
                        path,
                        node,
                        f"{cls.name}.{attr} is lock-guarded (written "
                        f"under a lock elsewhere in the class) but "
                        f"{kind} here without it",
                    )


class _ClosureEscape:
    """Mutation analysis of one closure escaping into an executor."""

    def __init__(self, fn: ast.AST, mutable_outer: Set[str]) -> None:
        self.fn = fn
        self.mutable_outer = mutable_outer
        args = fn.args
        params: Set[str] = {
            a.arg
            for a in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
            )
        }
        if args.vararg:
            params.add(args.vararg.arg)
        if args.kwarg:
            params.add(args.kwarg.arg)
        self.params = params
        self.assigned = self._assigned()
        self.tainted = self._taint()
        self.locked_nodes = self._locked_nodes()

    def _body(self) -> List[ast.stmt]:
        if isinstance(self.fn, ast.Lambda):
            return [ast.Expr(value=self.fn.body)]
        return list(self.fn.body)

    def _body_walk(self) -> Iterator[ast.AST]:
        for stmt in self._body():
            yield from ast.walk(stmt)

    def _assigned(self) -> Set[str]:
        out: Set[str] = set()
        for node in self._body_walk():
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Store
            ):
                out.add(node.id)
            elif isinstance(node, (ast.For, ast.comprehension)):
                for n in ast.walk(node.target):
                    if isinstance(n, ast.Name):
                        out.add(n.id)
        return out

    @staticmethod
    def _target_names(target: ast.AST) -> Iterator[ast.Name]:
        """Names *bound* by an assignment target.

        Subscript/attribute targets bind nothing: ``out[cursor] = i``
        derives neither ``out`` nor ``cursor`` from the value, so
        walking into them would wrongly taint the index name.
        """
        if isinstance(target, ast.Name):
            yield target
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from _ClosureEscape._target_names(elt)
        elif isinstance(target, ast.Starred):
            yield from _ClosureEscape._target_names(target.value)

    def _taint(self) -> Set[str]:
        tainted = set(self.params)
        changed = True
        while changed:
            changed = False
            for node in self._body_walk():
                if not isinstance(node, ast.Assign):
                    continue
                names = {
                    n.id
                    for n in ast.walk(node.value)
                    if isinstance(n, ast.Name)
                }
                if not (names & tainted):
                    continue
                for target in node.targets:
                    for n in self._target_names(target):
                        if n.id not in tainted:
                            tainted.add(n.id)
                            changed = True
        return tainted

    def _locked_nodes(self) -> Set[int]:
        """ids of nodes inside a ``with <lock>:`` within the closure."""
        out: Set[int] = set()
        for node in self._body_walk():
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            if any(
                _lock_name(item.context_expr) is not None
                for item in node.items
            ):
                for sub in node.body:
                    out.update(id(n) for n in ast.walk(sub))
        return out

    def _captured_mutable(self, name: str) -> bool:
        return (
            name not in self.params
            and name not in self.assigned
            and name in self.mutable_outer
        )

    def violations(self) -> Iterator[Tuple[ast.AST, str]]:
        for node in self._body_walk():
            if id(node) in self.locked_nodes:
                continue  # mutation under a lock inside the closure
            if isinstance(node, (ast.Nonlocal, ast.Global)):
                kind = (
                    "nonlocal"
                    if isinstance(node, ast.Nonlocal)
                    else "global"
                )
                yield node, (
                    f"{kind} write to {', '.join(node.names)} escapes "
                    f"into executor threads without a lock"
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(node, ast.AugAssign)
                        and isinstance(target, ast.Name)
                        and self._captured_mutable(target.id)
                    ):
                        yield node, (
                            f"augmented assignment to captured mutable "
                            f"{target.id!r} accumulates shared state "
                            f"without a lock"
                        )
                    elif isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        base = target.value.id
                        if not self._captured_mutable(base):
                            continue
                        index_names = {
                            n.id
                            for n in ast.walk(target.slice)
                            if isinstance(n, ast.Name)
                        }
                        if not (index_names & self.tainted):
                            yield node, (
                                f"write to captured mutable {base!r} at "
                                f"an index not derived from the work "
                                f"item; executor threads must write "
                                f"disjoint slices or hold a lock"
                            )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.attr in _MUTATORS
                and self._captured_mutable(node.func.value.id)
            ):
                yield node, (
                    f"mutating call .{node.func.attr}() on captured "
                    f"mutable {node.func.value.id!r} races executor "
                    f"threads without a lock"
                )


@register
class ExecutorClosureEscapeRule(Rule):
    """RDL010: mutable captures must not escape into executor closures."""

    code = "RDL010"
    name = "executor-closure-escape"
    rationale = """
    RDL003 checks closures handed to receivers *named* like a pool;
    an executor bound to any other name — ``ex = ThreadPoolExecutor()``,
    ``workers = WorkerPool(4)`` — escapes that net while running the
    same GIL-releasing NumPy code on concurrent threads.  This rule
    tracks executor identity by construction (``ThreadPoolExecutor`` /
    ``WorkerPool`` / ``shared_pool()`` assignments) and inspects every
    closure submitted via ``map``/``submit``/``run``: a captured
    mutable container (list/dict/set/deque or a NumPy buffer) mutated
    at an index not derived from the closure's own work item — and not
    under a lock — is shared state racing across worker threads.  Lock-
    guarded mutations and disjoint-slice writes are the two sanctioned
    disciplines; anything else needs a justified noqa.
    """

    _POOL_HINT = re.compile(r"pool|executor", re.IGNORECASE)

    def applies_to(self, path: str) -> bool:
        return _in_package(
            path, *CONCURRENT_PACKAGES, "svm", "formats", "dnn", "features"
        )

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        defs: Dict[str, ast.AST] = {}
        executor_names: Set[str] = set()
        mutable_names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defs[node.name] = node
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                if self._is_executor_ctor(node.value):
                    executor_names.add(target.id)
                elif self._is_mutable_value(node.value):
                    mutable_names.add(target.id)
        for node in ast.walk(tree):
            call = self._submission(node, executor_names)
            if call is None:
                continue
            for closure in self._closures(call, defs):
                label = (
                    "<lambda>"
                    if isinstance(closure, ast.Lambda)
                    else closure.name
                )
                escape = _ClosureEscape(closure, mutable_names)
                for bad, description in escape.violations():
                    yield self.finding(
                        path,
                        bad,
                        f"closure {label!r} escapes into an executor: "
                        f"{description}",
                    )

    # -- what counts as a submission ------------------------------------
    def _submission(
        self, node: ast.AST, executor_names: Set[str]
    ) -> Optional[ast.Call]:
        if not isinstance(node, ast.Call) or not node.args:
            return None
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        recv = func.value
        hinted = False
        tracked = False
        if isinstance(recv, ast.Name):
            hinted = bool(self._POOL_HINT.search(recv.id))
            tracked = recv.id in executor_names
        elif isinstance(recv, ast.Attribute):
            hinted = bool(self._POOL_HINT.search(recv.attr))
        if func.attr in ("map", "submit"):
            # Hinted receivers are RDL003's beat; only the names it
            # cannot see (constructor-tracked, unhinted) are ours.
            if tracked and not hinted:
                return node
            return None
        if func.attr == "run" and (hinted or tracked):
            return node
        return None

    def _closures(
        self, call: ast.Call, defs: Dict[str, ast.AST]
    ) -> Iterator[ast.AST]:
        if not isinstance(call.func, ast.Attribute):
            return
        if call.func.attr == "run":
            arg = call.args[0]
            items = arg.elts if isinstance(arg, (ast.List, ast.Tuple)) else []
            for item in items:
                resolved = self._resolve(item, defs)
                if resolved is not None:
                    yield resolved
            return
        resolved = self._resolve(call.args[0], defs)
        if resolved is not None:
            yield resolved

    @staticmethod
    def _resolve(
        arg: ast.AST, defs: Dict[str, ast.AST]
    ) -> Optional[ast.AST]:
        if isinstance(arg, ast.Lambda):
            return arg
        if isinstance(arg, ast.Name):
            return defs.get(arg.id)
        return None

    @staticmethod
    def _is_executor_ctor(value: ast.AST) -> bool:
        if not isinstance(value, ast.Call):
            return False
        f = value.func
        name = (
            f.id
            if isinstance(f, ast.Name)
            else f.attr
            if isinstance(f, ast.Attribute)
            else ""
        )
        return name in _EXECUTOR_CTORS or name in _EXECUTOR_FACTORIES

    @staticmethod
    def _is_mutable_value(value: ast.AST) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            f = value.func
            if isinstance(f, ast.Name) and f.id in _MUTABLE_CTORS:
                return True
            if (
                isinstance(f, ast.Attribute)
                and isinstance(f.value, ast.Name)
                and f.value.id in ("np", "numpy")
                and f.attr in _MUTABLE_NP_CTORS
            ):
                return True
        return False


@register
class LockOrderRule(Rule):
    """RDL011: one nesting order per lock pair; never self-nest."""

    code = "RDL011"
    name = "inconsistent-lock-order"
    rationale = """
    Two threads acquiring the same two locks in opposite orders is the
    canonical deadlock: each holds the lock the other wants, forever.
    The only scalable discipline is a fixed acquisition order per lock
    pair, checked here across every method of a class (and across
    module functions).  Nesting a lock inside itself is flagged
    unconditionally — ``threading.Lock`` is not reentrant, so the
    second acquire blocks the thread that already holds it.
    """

    def applies_to(self, path: str) -> bool:
        return _in_package(path, *CONCURRENT_PACKAGES)

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        groups: List[Tuple[str, List[Tuple[str, str, ast.AST]]]] = []
        module_pairs: List[Tuple[str, str, ast.AST]] = []
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                pairs: List[Tuple[str, str, ast.AST]] = []
                for f in _method_facts(node).values():
                    pairs.extend(f.lock_pairs)
                groups.append((node.name, pairs))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args.posonlyargs + node.args.args
                self_name = args[0].arg if args else None
                module_pairs.extend(
                    _FunctionFacts(node, self_name).lock_pairs
                )
        groups.append(("<module>", module_pairs))
        for scope, pairs in groups:
            seen: Dict[Tuple[str, str], ast.AST] = {}
            for outer, inner, node in pairs:
                if outer == inner:
                    yield self.finding(
                        path,
                        node,
                        f"{scope}: {inner} acquired while already held; "
                        f"threading.Lock is not reentrant, this "
                        f"deadlocks unconditionally",
                    )
                    continue
                seen.setdefault((outer, inner), node)
            for (outer, inner), node in seen.items():
                if (inner, outer) in seen and outer < inner:
                    other = seen[(inner, outer)]
                    yield self.finding(
                        path,
                        node,
                        f"{scope}: locks {outer} -> {inner} nested here "
                        f"but {inner} -> {outer} at line "
                        f"{getattr(other, 'lineno', '?')}; opposite "
                        f"orders deadlock under contention",
                    )


@register
class DoubleCheckedInitRule(Rule):
    """RDL012: no check-then-act lazy init outside a lock."""

    code = "RDL012"
    name = "unlocked-lazy-init"
    rationale = """
    ``if self._executor is None: self._executor = ThreadPoolExecutor()``
    is a time-of-check/time-of-use race: two threads both observe
    ``None`` and both construct, so one executor (with its worker
    threads) leaks unjoinably — the ``WorkerPool._ensure`` bug this
    rule generalises.  The same applies to module-level singletons
    behind ``global``.  Lazy initialisation of shared state must happen
    inside a lock (check again under it), or be eager.  Locals are
    exempt (thread-confined); so are constructors.
    """

    def applies_to(self, path: str) -> bool:
        return _in_package(path, *CONCURRENT_PACKAGES)

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                facts = _method_facts(node)
                inherited = _lock_inherited(facts)
                for name, f in facts.items():
                    if name in _INIT_METHODS or name in inherited:
                        continue
                    yield from self._flag(f, path, f"{node.name}.{name}")
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args.posonlyargs + node.args.args
                self_name = args[0].arg if args else None
                yield from self._flag(
                    _FunctionFacts(node, self_name), path, node.name
                )

    def _flag(
        self, facts: _FunctionFacts, path: str, where: str
    ) -> Iterator[Finding]:
        for desc, locked, node in facts.lazy_inits:
            if locked:
                continue
            yield self.finding(
                path,
                node,
                f"{where}: check-then-act lazy init of {desc} without "
                f"a lock (TOCTOU); two threads can both observe the "
                f"unset state and both initialise",
            )
