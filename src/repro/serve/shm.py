"""Zero-copy matrix transport over ``multiprocessing.shared_memory``.

The fleet tier (:mod:`repro.serve.fleet`) shards serving across worker
*processes*; what must never happen on that path is pickling a
support-vector matrix per request — or even per worker.  This module
publishes a :class:`~repro.serve.engine.ServedModel`'s heavy arrays
**once** into named shared-memory segments and hands workers a small
picklable :class:`ModelHandle` (segment names + dtypes + shapes, a few
hundred bytes regardless of nnz).  A worker reconstructs the matrix as
NumPy *views* over the mapped segments: no copy, no validation sort, no
per-request traffic beyond the O(batch) query vectors and answers.

Why views are safe
------------------
Every stored format in this repo is immutable after construction
(mutation always rebuilds through ``from_coo``), so many processes can
read one mapping concurrently.  Attached views are additionally marked
read-only (``writeable = False``) so a buggy kernel cannot scribble on
a segment another worker is sweeping.

Lifecycle discipline (the part that keeps ``/dev/shm`` clean)
-------------------------------------------------------------
*Ownership is asymmetric.*  The process that **publishes** owns the
segments: :class:`SegmentGroup` unlinks them on ``close()``, and every
live group is also registered with :mod:`atexit` so an owner that
forgets (or crashes out of Python normally) still unlinks.  Workers
that **attach** only ever ``close()`` their mapping, never unlink.

The stdlib ``resource_tracker`` needs one extra rule.  Registrations
land in a per-tracker-process set, and *forked* workers (and
same-process attachments) talk to the owner's tracker — there the
owner's unlink is the one balanced unregister, so attachers must stay
silent.  A *spawned* worker owns a private tracker which would
helpfully unlink the owner's segments when the worker exits; such
attachers pass ``unregister=True`` so their tracker forgets the name
right after mapping it (the stdlib's well-known double-unlink race,
resolved toward the owner).  A worker killed with ``SIGKILL``
therefore leaks nothing either way: its mappings die with the process
and the owner's unlink removes the names (``tests/serve/test_shm.py``
kills a worker and scans ``/dev/shm`` to prove it).
"""

from __future__ import annotations

import atexit
import secrets
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.formats.base import MatrixFormat
from repro.formats.convert import format_class
from repro.formats.coo import COOMatrix
from repro.formats.reorder import PermutedMatrix
from repro.serve.engine import PairSlice, ServedModel
from repro.svm.kernels import Kernel, make_kernel
from repro.svm.persist import _kernel_config

#: Every segment this module creates carries this prefix, so the leak
#: tests (and an operator staring at /dev/shm) can attribute them.
SHM_PREFIX = "repro_shm_"


def _new_segment_name() -> str:
    # Short random suffix: names must be unique across processes and
    # survive pid reuse (an atexit unlink from a previous run must not
    # collide with a fresh publish).
    return f"{SHM_PREFIX}{secrets.token_hex(6)}"


@dataclass(frozen=True)
class ArraySpec:
    """Picklable description of one published array."""

    segment: str
    dtype: str
    shape: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        n = int(np.dtype(self.dtype).itemsize)
        for d in self.shape:
            n *= int(d)
        return n


@dataclass(frozen=True)
class MatrixHandle:
    """Picklable description of one published matrix.

    ``arrays`` maps the format's constructor-attribute names to segment
    specs; ``meta`` carries the non-array constructor arguments (SELL's
    chunk, BCSR's block shape); ``inner`` is the stored core of a
    permutation wrapper, packed recursively.
    """

    fmt: str
    shape: Tuple[int, int]
    arrays: Dict[str, ArraySpec]
    meta: Dict[str, Any] = field(default_factory=dict)
    inner: Optional["MatrixHandle"] = None


@dataclass(frozen=True)
class ModelHandle:
    """Everything a worker needs to reconstruct a ServedModel.

    The matrix, coefficients and cached row norms travel as shared
    memory; the pair table, kernel configuration and class labels are
    tiny and ride the pickle.
    """

    matrix: MatrixHandle
    coef: ArraySpec
    sv_norms: ArraySpec
    pairs: Tuple[PairSlice, ...]
    kernel: Dict[str, Any]
    classes: Optional[Tuple[float, ...]]

    def control_plane_bytes(self) -> int:
        """Pickled size of this handle — O(1) in nnz by construction."""
        import pickle

        return len(pickle.dumps(self))


# -- owner side -----------------------------------------------------------

_LIVE_GROUPS: List["SegmentGroup"] = []
_ATEXIT_REGISTERED = False


def _atexit_unlink_all() -> None:  # pragma: no cover - exit hook
    for group in list(_LIVE_GROUPS):
        group.close()


class SegmentGroup:
    """Owner-side bundle of shared-memory segments.

    ``close()`` unlinks every segment exactly once and is safe to call
    repeatedly (shutdown paths, ``atexit`` and tests all hit it).  The
    group registers itself for interpreter-exit cleanup at creation so
    an owner that never calls ``close`` still leaves ``/dev/shm``
    empty.
    """

    def __init__(self) -> None:
        global _ATEXIT_REGISTERED
        self._segments: List[shared_memory.SharedMemory] = []
        self._closed = False
        _LIVE_GROUPS.append(self)
        if not _ATEXIT_REGISTERED:
            atexit.register(_atexit_unlink_all)
            _ATEXIT_REGISTERED = True

    def publish(self, arr: np.ndarray) -> ArraySpec:
        """Copy one array into a fresh segment; returns its spec."""
        arr = np.ascontiguousarray(arr)
        # SharedMemory rejects size=0; publish a 1-byte segment and let
        # the spec's shape reconstruct the empty view.
        shm = shared_memory.SharedMemory(
            create=True, size=max(arr.nbytes, 1), name=_new_segment_name()
        )
        if arr.nbytes:
            dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
            dst[...] = arr
        self._segments.append(shm)
        return ArraySpec(shm.name, str(arr.dtype), tuple(arr.shape))

    @property
    def segment_names(self) -> List[str]:
        return [s.name for s in self._segments]

    @property
    def total_bytes(self) -> int:
        return sum(s.size for s in self._segments)

    def close(self) -> None:
        """Unmap and unlink every owned segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for shm in self._segments:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # already gone (double owner close)
                pass
        if self in _LIVE_GROUPS:
            _LIVE_GROUPS.remove(self)

    def __enter__(self) -> "SegmentGroup":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- attacher side --------------------------------------------------------


class Attachment:
    """Worker-side bundle of mapped segments (close-only, never unlink).

    ``unregister=True`` is for spawned workers whose private resource
    tracker would otherwise unlink the owner's segments at worker
    exit; forked workers and same-process attachments share the
    owner's tracker and must leave its bookkeeping alone (see the
    module docstring).
    """

    def __init__(self, *, unregister: bool = False) -> None:
        self._segments: List[shared_memory.SharedMemory] = []
        self._unregister = unregister
        self._closed = False

    def attach(self, spec: ArraySpec) -> np.ndarray:
        """Map one spec as a read-only view (no copy)."""
        shm = shared_memory.SharedMemory(name=spec.segment)
        if self._unregister:
            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker impl detail
                pass
        self._segments.append(shm)
        view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
        view.flags.writeable = False
        return view

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shm in self._segments:
            shm.close()


# -- matrix pack / attach -------------------------------------------------

# (array attribute names, meta builder) per format; attach calls the
# real constructor so structural invariants (and any derived slicing
# arrays, e.g. SELL's) are rebuilt over the mapped views without
# copying the payload arrays themselves.
_PackSpec = Tuple[Tuple[str, ...], Callable[[MatrixFormat], Dict[str, Any]]]

_NO_META: Callable[[MatrixFormat], Dict[str, Any]] = lambda m: {}

_PACK_SPECS: Dict[str, _PackSpec] = {
    "CSR": (("values", "col_idx", "row_ptr"), _NO_META),
    "COO": (("rows", "cols", "values"), _NO_META),
    "ELL": (("data", "indices", "row_lengths"), _NO_META),
    "DIA": (("offsets", "data"), _NO_META),
    "DEN": (("array",), _NO_META),
    "CSC": (("values", "row_idx", "col_ptr"), _NO_META),
    "SELL": (
        ("data", "indices", "row_lengths"),
        lambda m: {"chunk": int(m.chunk)},
    ),
    "BCSR": (
        ("block_data", "block_col", "block_ptr"),
        lambda m: {"block_shape": tuple(m.block_shape)},
    ),
}


def pack_matrix(matrix: MatrixFormat, group: SegmentGroup) -> MatrixHandle:
    """Publish a matrix's backing arrays; returns the picklable handle."""
    if isinstance(matrix, PermutedMatrix):
        inner = pack_matrix(matrix.stored, group)
        return MatrixHandle(
            fmt=matrix.name,
            shape=matrix.shape,
            arrays={"perm": group.publish(matrix.perm)},
            inner=inner,
        )
    spec = _PACK_SPECS.get(matrix.name)
    if spec is None:
        raise ValueError(
            f"no shared-memory pack spec for format {matrix.name!r}"
        )
    attrs, meta_fn = spec
    return MatrixHandle(
        fmt=matrix.name,
        shape=matrix.shape,
        arrays={a: group.publish(getattr(matrix, a)) for a in attrs},
        meta=meta_fn(matrix),
    )


def attach_matrix(handle: MatrixHandle, att: Attachment) -> MatrixFormat:
    """Reconstruct a matrix as views over the published segments."""
    cls = format_class(handle.fmt)
    if handle.inner is not None:
        stored = attach_matrix(handle.inner, att)
        perm = att.attach(handle.arrays["perm"])
        return cls(stored, perm)
    views = {a: att.attach(s) for a, s in handle.arrays.items()}
    if handle.fmt == "COO":
        # COOMatrix's constructor canonicalises through validate_coo,
        # whose lexsort gather *copies*.  The published triples came
        # from a validated instance and are canonical already, so
        # assemble the object directly — the one format where the
        # constructor cannot be reused zero-copy.
        m = object.__new__(COOMatrix)
        m.rows = views["rows"]
        m.cols = views["cols"]
        m.values = views["values"]
        m.shape = (int(handle.shape[0]), int(handle.shape[1]))
        return m
    if handle.fmt == "DEN":
        return cls(views["array"])
    args = [views[a] for a in _PACK_SPECS[handle.fmt][0]]
    return cls(*args, handle.shape, **handle.meta)


# -- model pack / attach --------------------------------------------------


def pack_model(model: ServedModel, group: SegmentGroup) -> ModelHandle:
    """Publish a ServedModel's heavy arrays into ``group``."""
    return ModelHandle(
        matrix=pack_matrix(model.matrix, group),
        coef=group.publish(model.coef),
        sv_norms=group.publish(model.sv_norms),
        pairs=tuple(model.pairs),
        kernel=_kernel_config(model.kernel),
        classes=(
            tuple(float(c) for c in model.classes)
            if model.classes is not None
            else None
        ),
    )


def attach_model(handle: ModelHandle, att: Attachment) -> ServedModel:
    """Reconstruct a ServedModel over the mapped segments (no copy)."""
    kernel: Kernel = make_kernel(
        handle.kernel["name"], **handle.kernel["params"]
    )
    return ServedModel(
        attach_matrix(handle.matrix, att),
        att.attach(handle.coef),
        list(handle.pairs),
        kernel,
        classes=(
            np.asarray(handle.classes, dtype=float)
            if handle.classes is not None
            else None
        ),
        sv_norms=att.attach(handle.sv_norms),
    )


class ModelPublication:
    """One published model: the handle plus owned segments.

    The front door creates one per served model and closes it when the
    fleet shuts down; the handle is what crosses the process boundary.
    """

    def __init__(self, model: ServedModel) -> None:
        self.group = SegmentGroup()
        try:
            self.handle = pack_model(model, self.group)
        except Exception:
            self.group.close()
            raise

    @property
    def shared_bytes(self) -> int:
        return self.group.total_bytes

    def close(self) -> None:
        self.group.close()


def leaked_segments() -> List[str]:
    """Names under ``/dev/shm`` carrying our prefix (the leak check)."""
    import os

    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover - non-Linux
        return []
    return sorted(
        name for name in os.listdir(root) if name.startswith(SHM_PREFIX)
    )
