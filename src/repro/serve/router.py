"""Front-door routing: the shard table, least-loaded dispatch, hot spots.

The fleet's door owns three small pieces of state:

* :class:`ShardTable` — which shards hold a replica of which model,
  plus per-shard outstanding request counts.  This is the one
  genuinely shared-mutable structure (the rebalancer adds replicas
  while dispatches read placements), so every access goes through its
  lock — the discipline RDL009 and the ``REPRO_RACE=1`` sanitizer
  both check.
* :class:`Router` — the dispatch policy: least-loaded replica, ties
  to the lowest shard id, so routing is a pure deterministic function
  of the table state (replaying a workload replays the routing).
* :class:`HotSpotDetector` — a rolling window over recent dispatches;
  when one shard's share of the window exceeds ``threshold`` times
  the mean it names the hot shard, its dominant model, and the
  coldest shard — the rebalancer's cue to add a replica there.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.analysis.race import make_lock, track_shared


class ShardTable:
    """Model -> replica shards, plus per-shard outstanding counts."""

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards
        self._lock = make_lock("serve.shard_table")
        self._replicas: Dict[str, List[int]] = {}
        self._outstanding: List[int] = [0] * n_shards
        track_shared(self, ("_replicas", "_outstanding"))

    def place(self, model: str, shard: int) -> bool:
        """Record a replica of ``model`` on ``shard``; False if present."""
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"shard {shard} out of range")
        with self._lock:
            shards = self._replicas.setdefault(model, [])
            if shard in shards:
                return False
            shards.append(shard)
            shards.sort()
            return True

    def replicas(self, model: str) -> Tuple[int, ...]:
        with self._lock:
            return tuple(self._replicas.get(model, ()))

    def models(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._replicas))

    def models_on(self, shard: int) -> Tuple[str, ...]:
        with self._lock:
            return tuple(
                sorted(
                    m for m, shards in self._replicas.items()
                    if shard in shards
                )
            )

    def outstanding(self) -> Tuple[int, ...]:
        with self._lock:
            return tuple(self._outstanding)

    def acquire(self, model: str) -> int:
        """Pick the least-loaded replica shard and count the dispatch.

        Selection and increment happen under one lock acquisition so
        two concurrent dispatches cannot both pick the same "least
        loaded" shard on stale counts.  Ties break to the lowest shard
        id — the property that makes routing deterministic.
        """
        with self._lock:
            shards = self._replicas.get(model)
            if not shards:
                raise KeyError(f"model {model!r} has no replicas")
            best = min(shards, key=lambda s: (self._outstanding[s], s))
            self._outstanding[best] += 1
            return best

    def release(self, shard: int, n: int = 1) -> None:
        """Count ``n`` dispatched requests on ``shard`` as finished."""
        with self._lock:
            self._outstanding[shard] = max(
                0, self._outstanding[shard] - n
            )


@dataclass(frozen=True)
class HotSpot:
    """One detector firing: where load concentrated and where to go."""

    hot_shard: int
    cold_shard: int
    model: str
    imbalance: float


@dataclass(frozen=True)
class RebalanceEvent:
    """One replica added by the rebalancer (the audit-trail record)."""

    at: float
    seq: int
    model: str
    hot_shard: int
    cold_shard: int
    imbalance: float


class HotSpotDetector:
    """Rolling-window dispatch imbalance over the shard fleet.

    Every ``check_every`` observations the detector compares the
    busiest shard's window count against the mean over all shards;
    at ``threshold`` or above it reports the hot shard, the model
    dominating its window traffic, and the coldest shard (fewest
    window dispatches, ties low).  Purely counting — no clocks, no
    randomness — so detection replays exactly with the workload.
    """

    def __init__(
        self,
        n_shards: int,
        *,
        window: int = 256,
        check_every: int = 64,
        threshold: float = 1.5,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if window < n_shards:
            raise ValueError("window must cover at least one per shard")
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        if threshold <= 1.0:
            raise ValueError("threshold must exceed 1.0")
        self.n_shards = n_shards
        self.window = window
        self.check_every = check_every
        self.threshold = threshold
        self._lock = make_lock("serve.hotspot")
        self._recent: Deque[Tuple[str, int]] = deque(maxlen=window)
        self._since_check = 0
        track_shared(self, ("_recent", "_since_check"))

    def observe(self, model: str, shard: int) -> Optional[HotSpot]:
        """Record one dispatch; maybe report a hot spot."""
        with self._lock:
            self._recent.append((model, shard))
            self._since_check += 1
            if self._since_check < self.check_every:
                return None
            if self.n_shards < 2:
                # Nothing to rebalance toward.
                self._since_check = 0
                return None
            self._since_check = 0
            per_shard = Counter(s for _, s in self._recent)
            mean = len(self._recent) / self.n_shards
            hot = min(
                range(self.n_shards),
                key=lambda s: (-per_shard.get(s, 0), s),
            )
            imbalance = per_shard.get(hot, 0) / mean
            if imbalance < self.threshold:
                return None
            cold = min(
                range(self.n_shards),
                key=lambda s: (per_shard.get(s, 0), s),
            )
            if cold == hot:
                return None
            dominant = Counter(
                m for m, s in self._recent if s == hot
            )
            model_name = min(
                dominant, key=lambda m: (-dominant[m], m)
            )
            return HotSpot(
                hot_shard=hot,
                cold_shard=cold,
                model=model_name,
                imbalance=imbalance,
            )


class Router:
    """Dispatch policy over a :class:`ShardTable` plus hot-spot feed."""

    def __init__(
        self, table: ShardTable, detector: Optional[HotSpotDetector] = None
    ) -> None:
        self.table = table
        self.detector = detector

    def dispatch(self, model: str) -> Tuple[int, Optional[HotSpot]]:
        """Route one request: shard id plus any hot-spot report."""
        shard = self.table.acquire(model)
        hotspot = (
            self.detector.observe(model, shard)
            if self.detector is not None
            else None
        )
        return shard, hotspot

    def complete(self, shard: int, n: int = 1) -> None:
        self.table.release(shard, n)
