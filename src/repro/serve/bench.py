"""Serving benchmark: micro-batched vs unbatched throughput, plus the
runtime re-scheduling demo.

Two experiments, both on the synthetic generators:

1. **throughput** — wall-clock, interleaved-pairs measurement (the
   :func:`~repro.perf.bench_smsv._paired_ratio` discipline) of serving
   ``k`` queries through one blocked engine sweep
   (:meth:`~repro.serve.engine.InferenceEngine.predict`) against the
   same ``k`` queries through the single-vector path
   (:meth:`~repro.serve.engine.InferenceEngine.predict_one`), with the
   matrix in the format the cost model picks *for that batch width*.
   The headline is the median batched speedup at the widest ``k``; the
   acceptance criterion is >= 1.5x.

2. **re-schedule demo** — a deterministic virtual-time
   :func:`~repro.serve.loadgen.phase_shift` workload on a bimodal-row
   model whose cost ranking flips between effective batch widths 1 and
   8.  The demo asserts that at least one runtime format re-schedule
   fired and that every answer — across the mid-stream swap — is
   bitwise identical to the unbatched, format-pinned reference.

Run via ``repro bench serve [--smoke]``; results land in
``BENCH_serve.json``.
"""

from __future__ import annotations

import json
import platform
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cost_model import CostModel
from repro.data.synthetic import bimodal_rows_matrix, uniform_rows_matrix
from repro.features.extract import extract_profile
from repro.formats.csr import CSRMatrix
from repro.perf.bench_smsv import _paired_ratio
from repro.serve.engine import (
    EXACT_SERVE_FORMATS,
    InferenceEngine,
    PairSlice,
    ServedModel,
)
from repro.serve.loadgen import (
    Workload,
    phase_shift,
    query_sampler,
    replay_unbatched,
    simulate,
)
from repro.serve.rescheduler import FormatRescheduler
from repro.svm.kernels import make_kernel

#: Acceptance threshold: batched serving throughput vs unbatched.
HEADLINE_CRITERION = 1.5

#: (n_sv, n_features, row_nnz) — support-vector matrices shaped like
#: the trained models the SVM layer produces on the synthetic sets.
FULL_SHAPES: Tuple[Tuple[int, int, int], ...] = (
    (1200, 400, 24),
    (2000, 600, 40),
)
SMOKE_SHAPES: Tuple[Tuple[int, int, int], ...] = ((600, 300, 16),)

FULL_KS: Tuple[int, ...] = (2, 4, 8)
SMOKE_KS: Tuple[int, ...] = (8,)


def synthetic_model(
    n_sv: int,
    n_features: int,
    row_nnz: int,
    *,
    kernel: str = "gaussian",
    seed: int = 0,
) -> ServedModel:
    """A binary served model with a uniform-row synthetic SV matrix."""
    rows, cols, vals, shape = uniform_rows_matrix(
        n_sv, n_features, row_nnz, seed=seed
    )
    matrix = CSRMatrix.from_coo(rows, cols, vals, shape)
    rng = np.random.default_rng(seed + 1)
    coef = rng.standard_normal(n_sv)
    params = {"gamma": 0.5} if kernel == "gaussian" else {}
    return ServedModel(
        matrix,
        coef,
        [PairSlice(classes=(1.0, -1.0), lo=0, hi=n_sv, bias=0.1)],
        make_kernel(kernel, **params),
    )


#: The unreordered half of the exact serving family.  The reschedule
#: *demo* restricts itself to these four: with the full candidate set
#: the sorted layouts (RSELL) dominate the bimodal demo matrix at
#: every batch width, so no crossover exists to demonstrate.  The
#: SELL-family runtime flip has its own coverage (``repro bench
#: sell``'s SMO gate and ``tests/serve/test_sell_flip.py``).
CLASSIC_SERVE_FORMATS: Tuple[str, ...] = ("CSR", "COO", "ELL", "DIA")


def flip_model(*, seed: int = 0) -> ServedModel:
    """A served model whose cost ranking flips with batch width.

    Bimodal rows (mostly 10 nnz, a 10 % tail at 14) on a 600 x 400
    matrix: at effective ``batch_k=1`` the model ranks ELL first within
    the *unreordered* exact serving family
    (:data:`CLASSIC_SERVE_FORMATS`), at ``batch_k>=4`` COO's flat
    stream amortises ahead — the crossover the phase-shift workload
    walks the re-scheduler across.
    """
    rows, cols, vals, shape = bimodal_rows_matrix(
        600, 400, 10, 14, 0.1, seed=seed
    )
    matrix = CSRMatrix.from_coo(rows, cols, vals, shape)
    rng = np.random.default_rng(seed + 1)
    coef = rng.standard_normal(shape[0])
    return ServedModel(
        matrix,
        coef,
        [PairSlice(classes=(1.0, -1.0), lo=0, hi=shape[0], bias=0.05)],
        make_kernel("gaussian", gamma=0.5),
    )


def run_throughput(
    shapes: Sequence[Tuple[int, int, int]],
    ks: Sequence[int],
    *,
    samples: int,
) -> List[Dict]:
    """Batched-vs-unbatched serving ratios per shape and batch width."""
    cost_model = CostModel()
    records: List[Dict] = []
    for n_sv, n_features, row_nnz in shapes:
        model = synthetic_model(n_sv, n_features, row_nnz)
        profile = extract_profile(model.matrix)
        rng = np.random.default_rng(7)
        sampler = query_sampler(n_features, row_nnz)
        for k in ks:
            fmt = cost_model.rank(
                profile, EXACT_SERVE_FORMATS, batch_k=k
            )[0].fmt
            engine = InferenceEngine(model.clone())
            engine.convert_to(fmt)
            batch = [sampler(rng) for _ in range(k)]

            def single() -> None:
                for v in batch:
                    engine.predict_one(v)

            def batched() -> None:
                engine.predict(batch)

            ratio, t_single, t_batched = _paired_ratio(
                single, batched, samples=samples
            )
            records.append(
                {
                    "n_sv": n_sv,
                    "n_features": n_features,
                    "row_nnz": row_nnz,
                    "k": k,
                    "fmt": fmt,
                    "single_seconds": t_single,
                    "batched_seconds": t_batched,
                    "single_rps": k / t_single,
                    "batched_rps": k / t_batched,
                    "speedup": ratio,
                }
            )
    return records


def run_reschedule_demo(*, smoke: bool = False) -> Dict:
    """Virtual-time phase-shift serving with a mid-stream format swap.

    Deterministic: seeded workload, virtual clock, no wall time in any
    decision.  The bitwise checks compare every label against an
    unbatched engine pinned to the initial format, and every decision
    value of the post-swap engine against that same pinned engine.
    """
    model = flip_model(seed=0)
    resch = FormatRescheduler(
        window=32,
        check_every=8,
        min_gain=0.0,
        candidates=CLASSIC_SERVE_FORMATS,
    )
    fmt0 = resch.initial_format(model.matrix)
    engine = InferenceEngine(model)
    engine.convert_to(fmt0)

    sampler = query_sampler(model.n_features, 12)
    workload = phase_shift(
        sampler,
        singles=24 if smoke else 48,
        single_gap_ms=5.0,
        bursts=16 if smoke else 32,
        burst_size=8,
        burst_gap_ms=5.0,
        seed=3,
    )
    report = simulate(
        engine,
        workload,
        max_batch=8,
        max_wait_ms=2.0,
        rescheduler=resch,
    )

    pinned = InferenceEngine(model.clone())
    pinned.convert_to(fmt0)
    reference = replay_unbatched(pinned, workload)
    labels_ok = set(report.responses) == set(reference) and all(
        report.responses[i] == reference[i] for i in report.responses
    )
    decisions_ok = all(
        np.array_equal(
            engine.decision_one(req.vector),
            pinned.decision_one(req.vector),
        )
        for req in workload.arrivals
    )
    snap = report.metrics.snapshot()
    return {
        "workload": workload.name,
        "n_requests": len(workload),
        "initial_format": fmt0,
        "final_format": report.final_format,
        "events": [
            {
                "batch_seq": e.batch_seq,
                "effective_k": e.effective_k,
                "from": e.from_fmt,
                "to": e.to_fmt,
                "reason": e.reason,
            }
            for e in report.events
        ],
        "served": snap["served"],
        "batches": snap["batches"],
        "mean_batch": snap["mean_batch"],
        "batch_histogram": snap["batch_histogram"],
        "labels_bitwise_identical": labels_ok,
        "decisions_bitwise_identical": decisions_ok,
    }


def run_suite(*, smoke: bool = False, samples: Optional[int] = None) -> Dict:
    """Run both experiments and assemble the ``BENCH_serve.json`` payload.

    The headline is the median batched speedup at the widest batch
    width across the shape suite, with the matrix in the cost model's
    per-width choice — the configuration the serving stack actually
    runs.
    """
    shapes = SMOKE_SHAPES if smoke else FULL_SHAPES
    ks = SMOKE_KS if smoke else FULL_KS
    if samples is None:
        samples = 5 if smoke else 11
    throughput = run_throughput(shapes, ks, samples=samples)
    demo = run_reschedule_demo(smoke=smoke)
    k_max = max(ks)
    at_max = sorted(
        r["speedup"] for r in throughput if r["k"] == k_max
    )
    mid = len(at_max) // 2
    if len(at_max) % 2:
        headline = at_max[mid]
    else:
        headline = 0.5 * (at_max[mid - 1] + at_max[mid])
    return {
        "meta": {
            "suite": "serve",
            "smoke": smoke,
            "samples": samples,
            "shapes": [list(s) for s in shapes],
            "batch_ks": list(ks),
            "exact_formats": list(EXACT_SERVE_FORMATS),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "throughput": throughput,
        "reschedule_demo": demo,
        "headline": {
            "batched_speedup": headline,
            "criterion": HEADLINE_CRITERION,
            "pass": headline >= HEADLINE_CRITERION,
            "reschedule_events": len(demo["events"]),
            "bitwise_identical": bool(
                demo["labels_bitwise_identical"]
                and demo["decisions_bitwise_identical"]
            ),
        },
    }


def write_report(payload: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def render_summary(payload: Dict) -> str:
    """Terminal summary: headline, per-config ratios, demo outcome."""
    lines = []
    head = payload["headline"]
    verdict = "PASS" if head["pass"] else "FAIL"
    lines.append(
        f"micro-batched serving speedup (median at widest k): "
        f"{head['batched_speedup']:.2f}x "
        f"(criterion {head['criterion']:.1f}x) [{verdict}]"
    )
    for r in payload["throughput"]:
        lines.append(
            f"  n_sv={r['n_sv']:<5} k={r['k']}: {r['speedup']:.2f}x in "
            f"{r['fmt']} ({r['single_rps']:.0f} -> "
            f"{r['batched_rps']:.0f} rps)"
        )
    demo = payload["reschedule_demo"]
    bits = (
        "bitwise identical"
        if head["bitwise_identical"]
        else "MISMATCH"
    )
    lines.append(
        f"re-schedule demo: {demo['initial_format']} -> "
        f"{demo['final_format']} in {len(demo['events'])} event(s) over "
        f"{demo['served']} served requests; predictions {bits}"
    )
    for e in demo["events"]:
        lines.append(
            f"  batch {e['batch_seq']}: {e['from']} -> {e['to']} "
            f"(effective k={e['effective_k']})"
        )
    return "\n".join(lines)
