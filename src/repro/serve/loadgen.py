"""Deterministic load generation and virtual-time serving simulation.

Everything runs on a **virtual clock**: arrival times are drawn from a
seeded RNG when the workload is built, the simulation advances time by
jumping between arrival timestamps and batcher flush deadlines, and
service cost (if modelled at all) is a fixed virtual constant.  No
wall-clock reading happens anywhere in the logic, so a given
``(workload, engine, knobs)`` triple replays bit-for-bit — the property
the serving determinism tests and the re-schedule demo rely on.

Two workload shapes:

* :func:`open_loop` — Poisson arrivals at a target rate; requests
  arrive whether or not the server keeps up (the shape that exposes
  queueing and shedding).
* :func:`closed_loop` — ``concurrency`` synthetic clients that each
  wait for their previous answer (modelled at a fixed virtual service
  time) plus a think time before issuing the next request; arrival
  times are precomputed deterministically from that model.
* :func:`phase_shift` — the re-scheduling demo: a phase of paced
  singles (effective batch width 1) followed by a phase of
  simultaneous bursts (width ``max_batch``), which moves the cost
  model's ``batch_k`` amortisation enough to flip the winning format
  mid-stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.formats.base import SparseVector
from repro.obs.trace import get_tracer
from repro.serve.admission import AdmissionController, Request, Verdict
from repro.serve.batcher import MicroBatcher
from repro.serve.engine import InferenceEngine
from repro.serve.metrics import ServeMetrics
from repro.serve.rescheduler import FormatRescheduler, RescheduleEvent

VectorSampler = Callable[[np.random.Generator], SparseVector]


def query_sampler(
    n_features: int, nnz: int, *, scale: float = 1.0
) -> VectorSampler:
    """A sampler drawing sparse query vectors with ``nnz`` non-zeros."""
    if not 0 < nnz <= n_features:
        raise ValueError("need 0 < nnz <= n_features")

    def sample(rng: np.random.Generator) -> SparseVector:
        idx = np.sort(
            rng.choice(n_features, size=nnz, replace=False)
        ).astype(np.int32)
        vals = rng.standard_normal(nnz) * scale
        return SparseVector(idx, vals, n_features)

    return sample


@dataclass(frozen=True)
class TimedRequest:
    """One workload arrival on the virtual clock.

    ``model`` and ``tenant`` are fleet-era annotations: the front door
    routes on ``model`` (``None`` means "the only model"), and
    ``tenant`` labels which synthetic client stream produced the
    arrival so hot-spot analyses can attribute load.  Single-engine
    code paths ignore both.
    """

    req_id: int
    t: float
    vector: SparseVector
    deadline: Optional[float] = None
    model: Optional[str] = None
    tenant: Optional[str] = None


@dataclass
class Workload:
    """A named, fully materialised arrival schedule (time-sorted)."""

    name: str
    arrivals: List[TimedRequest] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.arrivals)


def _deadline(t: float, deadline_ms: Optional[float]) -> Optional[float]:
    return None if deadline_ms is None else t + deadline_ms / 1e3


def open_loop(
    n: int,
    rate_rps: float,
    sampler: VectorSampler,
    *,
    seed: int = 0,
    deadline_ms: Optional[float] = None,
    name: str = "open-loop",
) -> Workload:
    """Poisson arrivals: exponential interarrival gaps at ``rate_rps``."""
    if rate_rps <= 0.0:
        raise ValueError("rate_rps must be positive")
    rng = np.random.default_rng(seed)
    t = 0.0
    arrivals = []
    for i in range(n):
        t += float(rng.exponential(1.0 / rate_rps))
        arrivals.append(
            TimedRequest(i, t, sampler(rng), _deadline(t, deadline_ms))
        )
    return Workload(name=name, arrivals=arrivals)


def closed_loop(
    n: int,
    concurrency: int,
    sampler: VectorSampler,
    *,
    service_ms: float = 1.0,
    think_ms: float = 0.0,
    seed: int = 0,
    deadline_ms: Optional[float] = None,
    name: str = "closed-loop",
) -> Workload:
    """``concurrency`` clients, each issuing after its previous answer.

    Completion is modelled at a fixed virtual ``service_ms`` so the
    whole schedule is precomputed and deterministic; the simulation
    then serves it like any other workload.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    if service_ms < 0.0 or think_ms < 0.0:
        raise ValueError("service_ms and think_ms must be >= 0")
    rng = np.random.default_rng(seed)
    next_issue = [0.0] * concurrency
    arrivals = []
    for i in range(n):
        client = int(np.argmin(next_issue))
        t = next_issue[client]
        arrivals.append(
            TimedRequest(i, t, sampler(rng), _deadline(t, deadline_ms))
        )
        next_issue[client] = t + (service_ms + think_ms) / 1e3
    arrivals.sort(key=lambda r: (r.t, r.req_id))
    return Workload(name=name, arrivals=arrivals)


def _modulated_open_loop(
    n: int,
    rate_fn: Callable[[float], float],
    sampler: VectorSampler,
    *,
    seed: int = 0,
    deadline_ms: Optional[float] = None,
    name: str = "modulated",
    model: Optional[str] = None,
    tenant: Optional[str] = None,
) -> Workload:
    """Open-loop arrivals whose rate varies over virtual time.

    Each gap is exponential at the rate *in force when it starts*
    (piecewise-stationary approximation of a non-homogeneous Poisson
    process) — exact enough for load shaping, and fully deterministic
    from the seed, which is what the fleet bench gates on.
    """
    rng = np.random.default_rng(seed)
    t = 0.0
    arrivals = []
    for i in range(n):
        rate = float(rate_fn(t))
        if rate <= 0.0:
            raise ValueError(f"rate_fn({t}) = {rate}; rates must stay > 0")
        t += float(rng.exponential(1.0 / rate))
        arrivals.append(
            TimedRequest(
                i, t, sampler(rng), _deadline(t, deadline_ms),
                model=model, tenant=tenant,
            )
        )
    return Workload(name=name, arrivals=arrivals)


def bursty(
    n: int,
    base_rps: float,
    sampler: VectorSampler,
    *,
    burst_factor: float = 8.0,
    period_s: float = 1.0,
    duty: float = 0.25,
    seed: int = 0,
    deadline_ms: Optional[float] = None,
    name: str = "bursty",
    model: Optional[str] = None,
    tenant: Optional[str] = None,
) -> Workload:
    """Square-wave rate modulation: quiet floor, periodic bursts.

    The first ``duty`` fraction of every ``period_s`` window runs at
    ``base_rps * burst_factor``, the rest at ``base_rps`` — the
    classic flash-crowd shape that concentrates arrivals and creates
    the hot shards the rebalancer must detect.
    """
    if not 0.0 < duty < 1.0:
        raise ValueError("duty must be in (0, 1)")
    if burst_factor < 1.0:
        raise ValueError("burst_factor must be >= 1")

    def rate(t: float) -> float:
        phase = (t % period_s) / period_s
        return base_rps * (burst_factor if phase < duty else 1.0)

    return _modulated_open_loop(
        n, rate, sampler, seed=seed, deadline_ms=deadline_ms,
        name=name, model=model, tenant=tenant,
    )


def diurnal(
    n: int,
    base_rps: float,
    sampler: VectorSampler,
    *,
    amplitude: float = 0.8,
    period_s: float = 4.0,
    phase: float = 0.0,
    seed: int = 0,
    deadline_ms: Optional[float] = None,
    name: str = "diurnal",
    model: Optional[str] = None,
    tenant: Optional[str] = None,
) -> Workload:
    """Sinusoidal rate modulation (a compressed day-night cycle).

    ``phase`` offsets the cycle so different tenants peak at different
    virtual hours — staggered peaks are what shift the hot spot from
    one shard to another mid-run.
    """
    if not 0.0 <= amplitude < 1.0:
        raise ValueError("amplitude must be in [0, 1)")

    def rate(t: float) -> float:
        return base_rps * (
            1.0 + amplitude * np.sin(2.0 * np.pi * (t / period_s + phase))
        )

    return _modulated_open_loop(
        n, rate, sampler, seed=seed, deadline_ms=deadline_ms,
        name=name, model=model, tenant=tenant,
    )


@dataclass(frozen=True)
class TenantSpec:
    """One synthetic client population in a multi-tenant workload.

    ``pattern`` picks the arrival shape (``steady`` | ``bursty`` |
    ``diurnal``); ``model`` names which served model this tenant
    queries, so a mix of specs exercises routing and per-model hot
    spots.  ``n`` and ``rate_rps`` size the stream; the remaining
    knobs feed the underlying pattern generator.
    """

    name: str
    model: str
    n: int
    rate_rps: float
    pattern: str = "steady"
    burst_factor: float = 8.0
    amplitude: float = 0.8
    period_s: float = 1.0
    duty: float = 0.25
    phase: float = 0.0
    deadline_ms: Optional[float] = None


def multi_tenant(
    tenants: List[TenantSpec],
    sampler: VectorSampler,
    *,
    seed: int = 0,
    name: str = "multi-tenant",
) -> Workload:
    """Merge per-tenant arrival streams into one routed workload.

    Every tenant gets an independent substream seeded from ``seed``
    and its position (so adding a tenant never perturbs the others),
    the streams are merged in timestamp order with ties broken by
    tenant position, and request ids are reassigned to the merged
    order — ids are unique across the fleet, not per tenant.
    """
    if not tenants:
        raise ValueError("need at least one tenant")
    streams: List[List[TimedRequest]] = []
    for idx, spec in enumerate(tenants):
        sub_seed = seed * 1000 + idx
        common = dict(
            seed=sub_seed, deadline_ms=spec.deadline_ms,
            name=spec.name, model=spec.model, tenant=spec.name,
        )
        if spec.pattern == "steady":
            wl = _modulated_open_loop(
                spec.n, lambda t: spec.rate_rps, sampler, **common
            )
        elif spec.pattern == "bursty":
            wl = bursty(
                spec.n, spec.rate_rps, sampler,
                burst_factor=spec.burst_factor, period_s=spec.period_s,
                duty=spec.duty, **common,
            )
        elif spec.pattern == "diurnal":
            wl = diurnal(
                spec.n, spec.rate_rps, sampler,
                amplitude=spec.amplitude, period_s=spec.period_s,
                phase=spec.phase, **common,
            )
        else:
            raise ValueError(
                f"unknown arrival pattern {spec.pattern!r}; expected "
                f"steady, bursty or diurnal"
            )
        streams.append(wl.arrivals)
    merged: List[Tuple[float, int, int, TimedRequest]] = []
    for idx, stream in enumerate(streams):
        for req in stream:
            merged.append((req.t, idx, req.req_id, req))
    merged.sort(key=lambda item: item[:3])
    arrivals = [
        TimedRequest(
            rid, req.t, req.vector, req.deadline,
            model=req.model, tenant=req.tenant,
        )
        for rid, (_, _, _, req) in enumerate(merged)
    ]
    return Workload(name=name, arrivals=arrivals)


def phase_shift(
    sampler: VectorSampler,
    *,
    singles: int = 64,
    single_gap_ms: float = 5.0,
    bursts: int = 24,
    burst_size: int = 8,
    burst_gap_ms: float = 5.0,
    seed: int = 0,
    deadline_ms: Optional[float] = None,
    name: str = "phase-shift",
) -> Workload:
    """Paced singles, then simultaneous bursts — the batch-width drift.

    Phase one's gaps exceed any sane ``max_wait_ms``, so every batch
    serves one request (effective ``k`` = 1).  Phase two drops
    ``burst_size`` requests on identical timestamps, so the batcher
    coalesces whole bursts (effective ``k`` = ``burst_size``) and the
    re-scheduler sees the amortisation regime change.
    """
    rng = np.random.default_rng(seed)
    arrivals = []
    rid = 0
    t = 0.0
    for _ in range(singles):
        arrivals.append(
            TimedRequest(rid, t, sampler(rng), _deadline(t, deadline_ms))
        )
        rid += 1
        t += single_gap_ms / 1e3
    for _ in range(bursts):
        for _ in range(burst_size):
            arrivals.append(
                TimedRequest(rid, t, sampler(rng), _deadline(t, deadline_ms))
            )
            rid += 1
        t += burst_gap_ms / 1e3
    return Workload(name=name, arrivals=arrivals)


@dataclass
class ServeReport:
    """Everything one simulated serving session produced."""

    workload: str
    responses: Dict[int, float]
    metrics: ServeMetrics
    events: List[RescheduleEvent]
    final_format: str
    format_history: List[Tuple[int, str]] = field(default_factory=list)


def simulate(
    engine: InferenceEngine,
    workload: Workload,
    *,
    max_batch: int = 8,
    max_wait_ms: float = 2.0,
    admission: Optional[AdmissionController] = None,
    rescheduler: Optional[FormatRescheduler] = None,
    metrics: Optional[ServeMetrics] = None,
    service_ms: float = 0.0,
) -> ServeReport:
    """Serve a workload on the virtual clock; returns the full report.

    The event loop interleaves arrivals with batcher flush deadlines in
    timestamp order: before admitting an arrival at ``t``, any pending
    batch whose ``max_wait_ms`` deadline falls at or before ``t`` is
    flushed and served at that deadline.  Expired requests are dropped
    at serve time; degraded requests bypass the batcher through the
    single-vector path.  With ``service_ms=0`` (default) the latency
    histograms measure pure coalescing wait.
    """
    if metrics is None:
        metrics = ServeMetrics(counter=engine.counter)
    batcher = MicroBatcher(max_batch=max_batch, max_wait_ms=max_wait_ms)
    responses: Dict[int, float] = {}
    events: List[RescheduleEvent] = []
    history: List[Tuple[int, str]] = []
    service = service_ms / 1e3
    tracer = get_tracer()

    def serve_batch(batch: List[Request], at: float) -> None:
        with tracer.span("serve.batch") as sp:
            live = [r for r in batch if not r.expired(at)]
            if tracer.enabled:
                sp.set("size", len(batch))
                sp.set("live", len(live))
                sp.set("at", at)
            dropped = len(batch) - len(live)
            if dropped:
                metrics.record_expired(dropped)
            if admission is not None:
                admission.release(len(batch))
            if not live:
                return
            labels = engine.predict([r.vector for r in live])
            finished = at + service
            metrics.record_batch(
                len(live), at, finished,
                queued_at=[r.arrived_at for r in live],
            )
            for r, label in zip(live, labels):
                responses[r.req_id] = float(label)
            if rescheduler is not None:
                evt = rescheduler.after_batch(
                    len(live), engine.model.matrix
                )
                if evt is not None:
                    engine.convert_to(evt.to_fmt)
                    metrics.record_reschedule()
                    events.append(evt)
                    history.append((evt.batch_seq, evt.to_fmt))

    def drain_until(t: Optional[float]) -> None:
        """Serve every batch whose flush deadline is <= t (all if None)."""
        while True:
            fa = batcher.next_flush_at()
            if fa is None or (t is not None and fa > t):
                return
            batch = batcher.poll(fa)
            if batch:
                with tracer.span("serve.flush") as sp:
                    if tracer.enabled:
                        sp.set("deadline", fa)
                        sp.set("size", len(batch))
                    serve_batch(batch, fa)

    with tracer.span("serve.simulate") as sim_sp:
        if tracer.enabled:
            sim_sp.set("workload", workload.name)
            sim_sp.set("n", len(workload))
        for req in workload.arrivals:
            drain_until(req.t)
            with tracer.span("serve.admit") as sp:
                verdict = (
                    admission.admit()
                    if admission is not None
                    else Verdict.ACCEPTED
                )
                if tracer.enabled:
                    sp.set("req_id", req.req_id)
                    sp.set("verdict", verdict.name)
            if verdict is Verdict.REJECTED:
                metrics.record_rejected()
                continue
            r = Request(req.req_id, req.vector, req.t, req.deadline)
            if verdict is Verdict.DEGRADED:
                # Shed path: answer immediately, single-vector kernel,
                # no coalescing wait added to a queue that is already
                # deep.
                if r.expired(req.t):
                    metrics.record_expired()
                else:
                    responses[r.req_id] = engine.predict_one(r.vector)
                    metrics.record_single(req.t, req.t + service)
                    metrics.record_degraded()
                admission.release()
                continue
            full = batcher.submit(r, req.t)
            if full:
                serve_batch(full, req.t)
        drain_until(None)
        tail = batcher.flush()
        if tail:
            serve_batch(tail, tail[-1].arrived_at + batcher.max_wait)

    return ServeReport(
        workload=workload.name,
        responses=responses,
        metrics=metrics,
        events=events,
        final_format=engine.format,
        format_history=history,
    )


def replay_unbatched(
    engine: InferenceEngine, workload: Workload
) -> Dict[int, float]:
    """Reference answers: every request through the single-vector path.

    Used by the determinism tests and the re-schedule demo to assert
    micro-batched (and mid-stream re-scheduled) serving is bitwise
    identical to unbatched serving.
    """
    return {
        req.req_id: engine.predict_one(req.vector)
        for req in workload.arrivals
    }
