"""Serving metrics: latency histograms, throughput, batch-size mix.

Everything here is deterministic given the numbers recorded into it —
the serving stack injects (virtual or monotonic) timestamps; this
module never reads a clock itself, which is what keeps the loadgen
simulations and the determinism property tests exactly replayable.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.metrics import (
    SUMMARY_PERCENTILES,
    Histogram,
    MetricsRegistry,
    opcounter_view,
)
from repro.perf.counters import OpCounter

#: Percentiles every latency summary reports (the shared histogram
#: primitive's summary percentiles).
PERCENTILES = SUMMARY_PERCENTILES


@dataclass
class LatencySummary:
    """Percentile view over a set of recorded latencies (seconds)."""

    count: int
    p50: float
    p95: float
    p99: float
    mean: float
    max: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "p50_ms": self.p50 * 1e3,
            "p95_ms": self.p95 * 1e3,
            "p99_ms": self.p99 * 1e3,
            "mean_ms": self.mean * 1e3,
            "max_ms": self.max * 1e3,
        }


def summarise_latencies(samples: List[float]) -> LatencySummary:
    """Percentile summary of a latency sample list.

    Delegates to the :class:`~repro.obs.metrics.Histogram` primitive —
    the repo's one quantile implementation — which uses the ``lower``
    interpolation so reported percentiles are actual observed samples
    (exactly reproducible across numpy versions) and is NaN-free on
    the empty and one-sample windows by construction.
    """
    hist = Histogram("latency_seconds")
    hist.observe_many(samples)
    s = hist.summary()
    return LatencySummary(
        count=int(s["count"]),
        p50=s["p50"],
        p95=s["p95"],
        p99=s["p99"],
        mean=s["mean"],
        max=s["max"],
    )


@dataclass
class ServeMetrics:
    """Rolling counters and samples for one serving session.

    ``record_batch`` is the single write point for served work; the
    admission controller reports rejected / expired / degraded requests
    through their own hooks.  ``snapshot()`` freezes everything into a
    plain dict (JSON-ready, used by the bench payload and the CLI).
    """

    counter: OpCounter = field(default_factory=OpCounter)
    latencies: List[float] = field(default_factory=list)
    batch_sizes: Counter = field(default_factory=Counter)
    served: int = 0
    batches: int = 0
    rejected: int = 0
    expired: int = 0
    degraded: int = 0
    reschedules: int = 0
    first_t: Optional[float] = None
    last_t: Optional[float] = None

    # -- write side ------------------------------------------------------
    def record_batch(
        self, size: int, started_at: float, finished_at: float,
        queued_at: Optional[List[float]] = None,
    ) -> None:
        """One served SpMM batch of ``size`` requests.

        ``queued_at`` (one entry per request, same clock as the other
        timestamps) yields per-request latencies *including* the
        coalescing wait; without it the batch service time is recorded
        once per request.
        """
        if size < 1:
            raise ValueError("batch size must be >= 1")
        self.batches += 1
        self.served += size
        self.batch_sizes[int(size)] += 1
        if queued_at is not None:
            self.latencies.extend(finished_at - q for q in queued_at)
        else:
            self.latencies.extend([finished_at - started_at] * size)
        if self.first_t is None or started_at < self.first_t:
            self.first_t = started_at
        if self.last_t is None or finished_at > self.last_t:
            self.last_t = finished_at

    def record_single(self, arrived_at: float, finished_at: float) -> None:
        """One request served outside the batcher (degraded path).

        Counts toward served totals and latency but not the batch
        histogram — the effective-``k`` statistics describe only what
        the SpMM path achieved.
        """
        self.served += 1
        self.latencies.append(finished_at - arrived_at)
        if self.first_t is None or arrived_at < self.first_t:
            self.first_t = arrived_at
        if self.last_t is None or finished_at > self.last_t:
            self.last_t = finished_at

    def record_rejected(self, n: int = 1) -> None:
        self.rejected += n

    def record_expired(self, n: int = 1) -> None:
        self.expired += n

    def record_degraded(self, n: int = 1) -> None:
        """Requests served through the single-vector shed path."""
        self.degraded += n

    def record_reschedule(self) -> None:
        self.reschedules += 1

    # -- cross-process transport and merge -------------------------------
    def state(self) -> Dict:
        """Plain picklable state (no locks, no live objects).

        The fleet's workers ship this across the process boundary; the
        front door rebuilds with :meth:`from_state` and folds shards
        together with :meth:`merge`.
        """
        return {
            "ops": self.counter.as_dict(),
            "latencies": list(self.latencies),
            "batch_sizes": {int(k): int(v) for k, v in self.batch_sizes.items()},
            "served": self.served,
            "batches": self.batches,
            "rejected": self.rejected,
            "expired": self.expired,
            "degraded": self.degraded,
            "reschedules": self.reschedules,
            "first_t": self.first_t,
            "last_t": self.last_t,
        }

    @classmethod
    def from_state(cls, state: Dict) -> "ServeMetrics":
        """Rebuild a session from :meth:`state` output."""
        m = cls()
        for name, value in state["ops"].items():
            setattr(m.counter, name, value)
        m.latencies = list(state["latencies"])
        m.batch_sizes = Counter(
            {int(k): int(v) for k, v in state["batch_sizes"].items()}
        )
        for name in (
            "served", "batches", "rejected", "expired", "degraded",
            "reschedules", "first_t", "last_t",
        ):
            setattr(m, name, state[name])
        return m

    def merge(self, other: "ServeMetrics") -> None:
        """Fold another session's numbers in.

        Latencies merge as the *union of samples*, so the fleet-wide
        p50/p95/p99 computed afterwards are exactly the percentiles a
        single process observing every request would report (the
        ``lower``-method percentile is a selected sample and order-
        insensitive).  Counts sum; the active window is the envelope
        ``[min first_t, max last_t]``.  Sums of floats (mean latency,
        throughput) are association-dependent, so those are *nearly*
        — not bitwise — equal across merge orders; the regression test
        pins percentiles exactly and means to tolerance.
        """
        self.counter.merge(other.counter)
        self.latencies.extend(other.latencies)
        self.batch_sizes.update(other.batch_sizes)
        self.served += other.served
        self.batches += other.batches
        self.rejected += other.rejected
        self.expired += other.expired
        self.degraded += other.degraded
        self.reschedules += other.reschedules
        if other.first_t is not None and (
            self.first_t is None or other.first_t < self.first_t
        ):
            self.first_t = other.first_t
        if other.last_t is not None and (
            self.last_t is None or other.last_t > self.last_t
        ):
            self.last_t = other.last_t

    # -- read side -------------------------------------------------------
    @property
    def elapsed(self) -> float:
        if self.first_t is None or self.last_t is None:
            return 0.0
        return max(self.last_t - self.first_t, 0.0)

    @property
    def throughput(self) -> float:
        """Served requests per second of active serving time."""
        el = self.elapsed
        return self.served / el if el > 0.0 else 0.0

    @property
    def mean_batch(self) -> float:
        if not self.batches:
            return 0.0
        return self.served / self.batches

    def batch_histogram(self) -> Dict[int, int]:
        return dict(sorted(self.batch_sizes.items()))

    def registry_view(
        self, registry: MetricsRegistry, prefix: str = "repro_serve"
    ) -> None:
        """Expose this session as live views in a metrics registry.

        Session totals become callback gauges (collection reads the
        live value — the registry is a view over this store, not a
        copy), the latency samples populate a shared histogram, and
        the session's :class:`~repro.perf.counters.OpCounter` fields
        are registered through :func:`~repro.obs.metrics.
        opcounter_view`.  Intended to be called once per session;
        re-registering just refreshes the callbacks.
        """
        for name in (
            "served", "batches", "rejected", "expired", "degraded",
            "reschedules",
        ):
            registry.gauge(
                f"{prefix}.{name}",
                help=f"ServeMetrics field {name}",
                fn=(lambda n=name: getattr(self, n)),
            )
        registry.gauge(
            f"{prefix}.throughput_rps",
            help="served requests per second of active serving time",
            fn=lambda: self.throughput,
        )
        registry.gauge(
            f"{prefix}.mean_batch",
            help="mean served batch width",
            fn=lambda: self.mean_batch,
        )
        hist = registry.histogram(
            f"{prefix}.latency_seconds",
            help="per-request serving latency (coalescing wait included)",
        )
        hist.samples = self.latencies  # live view: same list object
        opcounter_view(registry, self.counter, prefix=f"{prefix}.ops")

    def snapshot(self) -> Dict:
        lat = summarise_latencies(self.latencies)
        return {
            "served": self.served,
            "batches": self.batches,
            "rejected": self.rejected,
            "expired": self.expired,
            "degraded": self.degraded,
            "reschedules": self.reschedules,
            "mean_batch": self.mean_batch,
            "batch_histogram": {
                str(k): v for k, v in self.batch_histogram().items()
            },
            "elapsed_s": self.elapsed,
            "throughput_rps": self.throughput,
            "latency": lat.as_dict(),
            "ops": {
                "flops": self.counter.flops,
                "bytes_total": self.counter.bytes_total,
                "spmm_calls": self.counter.spmm_calls,
                "spmm_columns": self.counter.spmm_columns,
            },
        }
