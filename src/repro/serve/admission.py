"""Admission control: bounded queue, backpressure, graceful shedding.

The serving pipeline is ``admission -> micro-batcher -> engine``.  This
stage decides, per arriving request, one of three verdicts:

``ACCEPTED``
    Normal path: the request joins the micro-batcher and rides the next
    SpMM sweep.
``DEGRADED``
    The queue is above the shed threshold.  The request is still
    answered — through the engine's single-vector path, bypassing the
    batcher — so it adds no coalescing latency to the queue it found
    congested.  Answers are bitwise identical either way (the blocked
    kernels' per-column contract), so degradation trades throughput for
    latency without changing results.
``REJECTED``
    The queue is full; the caller gets backpressure instead of an
    unbounded buffer.

Deadlines are *checked at serve time*, not admission time: a request
admitted with headroom can still expire while coalescing, and the
engine drops it then (``EXPIRED`` outcome in the metrics).

All time values are caller-provided timestamps on an arbitrary
monotonic clock — this module never reads a clock, so simulations under
:mod:`repro.serve.loadgen`'s virtual clock are exactly reproducible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.analysis.race import make_lock, track_shared
from repro.formats.base import SparseVector


class Verdict(enum.Enum):
    ACCEPTED = "accepted"
    DEGRADED = "degraded"
    REJECTED = "rejected"


@dataclass(frozen=True)
class Request:
    """One prediction request: a query vector plus bookkeeping.

    ``deadline`` is an absolute timestamp (same clock as arrivals) or
    ``None`` for no deadline; ``arrived_at`` feeds the latency
    histograms.
    """

    req_id: int
    vector: SparseVector
    arrived_at: float
    deadline: Optional[float] = None

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now > self.deadline


class AdmissionController:
    """Bounded in-flight window with a shed threshold.

    Parameters
    ----------
    capacity:
        Maximum requests in flight (queued in the batcher, not yet
        served).  Beyond it requests are ``REJECTED``.
    shed_at:
        Occupancy fraction in ``(0, 1]`` above which newly admitted
        requests are ``DEGRADED`` to the single-vector path.  ``1.0``
        disables shedding (only hard rejection remains).

    ``admit`` reserves a slot; the serving loop must ``release`` once
    per admitted (non-rejected) request after it is answered or
    dropped.  The counter is lock-protected so concurrent request
    threads can share one controller.
    """

    def __init__(self, capacity: int = 64, shed_at: float = 0.75) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not 0.0 < shed_at <= 1.0:
            raise ValueError("shed_at must be in (0, 1]")
        self.capacity = capacity
        self.shed_at = shed_at
        self._in_flight = 0
        self._lock = make_lock("serve.admission")
        track_shared(self, ("_in_flight",))

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    @property
    def occupancy(self) -> float:
        with self._lock:
            return self._in_flight / self.capacity

    def admit(self) -> Verdict:
        """Reserve a slot; the verdict says which path the request takes."""
        with self._lock:
            if self._in_flight >= self.capacity:
                return Verdict.REJECTED
            self._in_flight += 1
            if self._in_flight / self.capacity > self.shed_at:
                return Verdict.DEGRADED
            return Verdict.ACCEPTED

    def release(self, n: int = 1) -> None:
        """Return ``n`` slots after requests finish (or expire)."""
        if n < 0:
            raise ValueError("n must be >= 0")
        with self._lock:
            if n > self._in_flight:
                raise RuntimeError(
                    f"release({n}) exceeds {self._in_flight} in flight"
                )
            self._in_flight -= n
