"""Runtime layout re-scheduling driven by the observed batch mix.

The paper schedules a layout *before* a training run from the dataset
profile.  At serving time one more input appears that the profile
cannot see: the **effective batch width** the micro-batcher actually
achieves, which moves the cost model's amortisation term (``batch_k``)
and with it the winning format.  :class:`FormatRescheduler` closes the
loop — it keeps a rolling histogram of served batch sizes, periodically
re-invokes the :class:`~repro.core.scheduler.LayoutScheduler` at the
observed effective ``batch_k``, and tells the engine to convert when
the winner changed by enough to matter.

Candidates are restricted to
:data:`~repro.serve.engine.EXACT_SERVE_FORMATS` so a swap can never
perturb predictions (the bitwise-identical kernel family); the matrix
profile is format-invariant and cached once.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from repro.analysis.race import make_lock, track_shared
from repro.core.scheduler import LayoutScheduler
from repro.features.extract import extract_profile
from repro.formats.base import MatrixFormat
from repro.obs.audit import DecisionRecord, audit_log, current_dataset
from repro.obs.trace import get_tracer
from repro.serve.engine import EXACT_SERVE_FORMATS


@dataclass(frozen=True)
class RescheduleEvent:
    """Audit record of one runtime format change."""

    batch_seq: int
    effective_k: int
    from_fmt: str
    to_fmt: str
    reason: str


class BatchSizeHistogram:
    """Rolling window of served batch widths.

    ``effective_k`` is the *column-weighted* mean — ``sum(k^2) /
    sum(k)`` — because a request in a width-8 batch experiences width-8
    amortisation: weighting by batches would let a stream of stray
    singles mask a bulk-batched majority of the traffic.
    """

    def __init__(self, window: int = 64) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self._sizes: Deque[int] = deque(maxlen=window)

    def observe(self, k: int) -> None:
        if k < 1:
            raise ValueError("batch size must be >= 1")
        self._sizes.append(int(k))

    def __len__(self) -> int:
        return len(self._sizes)

    def effective_k(self) -> int:
        if not self._sizes:
            return 1
        total = sum(self._sizes)
        weighted = sum(k * k for k in self._sizes)
        return max(1, round(weighted / total))


class FormatRescheduler:
    """Policy: when and to what the engine's matrix is converted.

    Parameters
    ----------
    window:
        Batch-size observations kept in the rolling histogram.
    check_every:
        Re-decide cadence, in served batches.  Deciding is cheap (a
        cached cost-model rank) but there is no reason to run it per
        batch.
    min_gain:
        Hysteresis: convert only if the model predicts the new format
        is at least this fraction faster than staying put (e.g. ``0.05``
        = 5 %).  Keeps the engine from thrashing between two formats
        whose costs straddle the crossover.
    candidates:
        Formats the runtime decision may pick.  Defaults to the
        bitwise-exact serving family; callers who do not need bitwise
        stability across swaps may widen it.
    """

    def __init__(
        self,
        *,
        window: int = 64,
        check_every: int = 16,
        min_gain: float = 0.05,
        candidates: Tuple[str, ...] = EXACT_SERVE_FORMATS,
        scheduler: Optional[LayoutScheduler] = None,
    ) -> None:
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        if min_gain < 0.0:
            raise ValueError("min_gain must be >= 0")
        self.hist = BatchSizeHistogram(window)
        self.check_every = check_every
        self.min_gain = min_gain
        self.scheduler = scheduler or LayoutScheduler(
            "cost", candidates=candidates
        )
        self.events: List[RescheduleEvent] = []
        self._batches_seen = 0
        self._profile = None
        self._last_k: Optional[int] = None
        self._lock = make_lock("serve.rescheduler")
        track_shared(
            self, ("_batches_seen", "_profile", "_last_k", "events")
        )

    def initial_format(self, matrix: MatrixFormat) -> str:
        """The format to start serving in.

        Decided at the tuned expected batch width when the persisted
        tuning cache is warm for this machine and shape class (the
        width the machine's serving traffic was measured at), else at
        ``batch_k=1``.  A warm measured-best *format* entry short-
        circuits the analytic ranking entirely — provided it stays
        inside this rescheduler's candidate family, so warm-up can
        never step outside the bitwise-exact serving formats.
        """
        from repro.tune.cache import tuned_format, tuned_value

        with self._lock:
            self._profile = extract_profile(matrix)
            k0 = tuned_value(
                "batch_k", "batch_k", profile=self._profile, default=1
            )
            self.scheduler.batch_k = k0
            fmt = tuned_format(self._profile, batch_k=k0)
            if fmt is not None and fmt in (self.scheduler.candidates or ()):
                # Audit the warm-up pick like any other serve decision
                # so `repro obs report` can split regret by source.
                audit_log().record(
                    DecisionRecord(
                        source="serve",
                        dataset=current_dataset(),
                        strategy=self.scheduler.strategy,
                        batch_k=k0,
                        chosen=fmt,
                        reason=(
                            "warm-up: measured-best serving format "
                            "from the persisted tuning cache"
                        ),
                        cached=True,
                        features=self._profile.as_dict(),
                        predicted={},
                        measured={},
                        decision_source="tuned",
                    )
                )
                return fmt
            ranked = self.scheduler.cost_model.rank(
                self._profile, self.scheduler.candidates, batch_k=k0
            )
            return ranked[0].fmt

    # -- the runtime loop ------------------------------------------------
    def after_batch(
        self, batch_size: int, matrix: MatrixFormat
    ) -> Optional[RescheduleEvent]:
        """Observe one served batch; maybe decide a new format.

        Returns the event to apply (caller converts the engine and
        records the metric) or ``None``.  The histogram, profile and
        decision state live under an internal policy lock, so multiple
        serving threads can share one rescheduler.
        """
        with self._lock:
            return self._after_batch_locked(batch_size, matrix)

    def _after_batch_locked(
        self, batch_size: int, matrix: MatrixFormat
    ) -> Optional[RescheduleEvent]:
        self.hist.observe(batch_size)
        self._batches_seen += 1
        if self._batches_seen % self.check_every != 0:
            return None
        eff = self.hist.effective_k()
        if eff == self._last_k:
            return None  # batch mix unchanged; ranking cannot move
        self._last_k = eff
        tracer = get_tracer()
        with tracer.span("serve.reschedule") as sp:
            if self._profile is None:
                self._profile = extract_profile(matrix)
            self.scheduler.batch_k = eff
            ranked = self.scheduler.cost_model.rank(
                self._profile, self.scheduler.candidates, batch_k=eff
            )
            winner = ranked[0].fmt
            if tracer.enabled:
                sp.set("effective_k", eff)
                sp.set("from", matrix.name)
                sp.set("winner", winner)
            if winner == matrix.name:
                return None
            current_cost = next(
                (c.cost for c in ranked if c.fmt == matrix.name), None
            )
            if current_cost is not None and current_cost < ranked[
                0
            ].cost * (1.0 + self.min_gain):
                return None  # inside the hysteresis band; no swap
            event = RescheduleEvent(
                batch_seq=self._batches_seen,
                effective_k=eff,
                from_fmt=matrix.name,
                to_fmt=winner,
                reason=(
                    f"effective batch_k={eff}: model cost "
                    f"{ranked[0].cost:.3g} ({winner}) vs "
                    f"{current_cost:.3g} ({matrix.name})"
                    if current_cost is not None
                    else f"effective batch_k={eff}: {winner} ranked first"
                ),
            )
            self.events.append(event)
            # Every runtime flip lands in the process audit log with
            # the same regret inputs as a training-time decision —
            # `repro obs report` shows them under source="serve".
            audit_log().record(
                DecisionRecord(
                    source="serve",
                    dataset=current_dataset(),
                    strategy=self.scheduler.strategy,
                    batch_k=eff,
                    chosen=winner,
                    reason=event.reason,
                    cached=False,
                    features=self._profile.as_dict(),
                    predicted={c.fmt: c.cost for c in ranked},
                    measured={},
                )
            )
            return event
