"""The inference engine: a served model behind a swappable layout.

:class:`ServedModel` flattens a fitted SVM into serving shape — every
support vector of every pairwise model stacked into **one** sparse
matrix, coefficients in one array, and per-pair ``(lo, hi, bias)``
slices into it.  One blocked kernel sweep (``smsv_multi`` via
:meth:`~repro.svm.kernels.Kernel.rows`) then answers a whole micro-
batch for *all* pairwise classifiers at once.

:class:`InferenceEngine` holds the model with its matrix in a
scheduler-chosen format and swaps that format in place when the
re-scheduler says the observed batch-size distribution moved the cost
ranking (the paper's runtime scheduling, applied at serving time).

Bitwise contract
----------------
Batched and single-vector answers are bit-for-bit identical *within
any one format*:

* the blocked kernels guarantee each SpMM column equals the
  single-vector kernel row (PR 2 contract);
* both paths contract coefficients with the same routine on a
  contiguous buffer: ``np.dot(coef[lo:hi], col[lo:hi]) - bias``.

Across a format swap the guarantee is conditional.  Every format in
:data:`EXACT_SERVE_FORMATS` stores the same canonical float64 values
and accumulates each output element over a row's non-zeros in
ascending column order, but the *association* of those adds differs
(CSR segments via ``np.add.reduceat``, COO via ``np.bincount``, ELL
via ``einsum``, DIA per diagonal).  When a kernel-row sum touches at
most two non-zero products — the regime of the sparse query streams
this subsystem targets — every association yields the same bits, so a
mid-stream re-schedule is exactly invisible; the bench's re-schedule
demo asserts that at runtime.  On dense row/query overlaps the formats
can drift by 1 ULP, which is why DEN and BCSR (BLAS-backed, freely
re-associating) are excluded from the candidate set outright and why
the general cross-format claim is agreement to ``atol=1e-12``, not
bit equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.race import make_lock, track_shared
from repro.formats.base import MatrixFormat, SparseVector
from repro.formats.convert import convert, format_class
from repro.obs.trace import get_tracer
from repro.perf.counters import OpCounter
from repro.svm.kernels import Kernel

#: The serving candidate family: formats whose SMSV/SpMM kernels keep
#: canonical float64 values and accumulate each row in ascending column
#: order.  Within the family a layout swap preserves predictions
#: bitwise on sparse row/query overlaps (≤2 non-zero products per sum)
#: and to 1 ULP otherwise; BLAS-backed formats (DEN, BCSR) re-associate
#: freely and are excluded.  SELL and the permutation-transparent
#: sorted layouts (RCSR, RSELL) qualify with a *stronger* guarantee:
#: their kernels reduce exactly CSR's product array in CSR's order (the
#: wrapper only scatters finished row sums), so a swap between CSR,
#: SELL, RCSR and RSELL is bitwise invisible on any overlap, not just
#: sparse ones.  See the module docstring.
EXACT_SERVE_FORMATS: Tuple[str, ...] = (
    "CSR",
    "COO",
    "ELL",
    "DIA",
    "SELL",
    "RCSR",
    "RSELL",
)


@dataclass(frozen=True)
class PairSlice:
    """One binary classifier's slice of the stacked SV arena."""

    classes: Tuple[float, float]
    lo: int
    hi: int
    bias: float


class ServedModel:
    """A fitted SVM flattened for serving.

    Parameters
    ----------
    matrix:
        All support vectors stacked row-wise, any sparse format.
    coef:
        Signed dual coefficients, one per stacked row.
    pairs:
        Slice descriptors; one entry for a binary model, ``k(k-1)/2``
        for one-vs-one multiclass.
    kernel:
        The (shared) kernel all pairs were trained with.
    classes:
        Sorted class labels for multiclass voting; ``None`` for a
        binary model (labels are ±1 from the single decision value).
    sv_norms:
        Precomputed squared row norms.  The fleet's shared-memory
        transport passes the published norms here so attaching a model
        in a worker neither copies nor recomputes them; when omitted
        they are computed from the matrix as before.
    """

    def __init__(
        self,
        matrix: MatrixFormat,
        coef: np.ndarray,
        pairs: Sequence[PairSlice],
        kernel: Kernel,
        classes: Optional[np.ndarray] = None,
        sv_norms: Optional[np.ndarray] = None,
    ) -> None:
        if not pairs:
            raise ValueError("a served model needs at least one pair slice")
        coef = np.ascontiguousarray(coef, dtype=np.float64)
        if coef.shape != (matrix.shape[0],):
            raise ValueError(
                f"coef shape {coef.shape} does not match "
                f"{matrix.shape[0]} stacked support vectors"
            )
        for p in pairs:
            if not 0 <= p.lo <= p.hi <= matrix.shape[0]:
                raise ValueError(f"pair slice [{p.lo}, {p.hi}) out of range")
        self.matrix = matrix
        self.coef = coef
        self.pairs = list(pairs)
        self.kernel = kernel
        self.classes = (
            np.asarray(classes, dtype=float) if classes is not None else None
        )
        if self.classes is not None:
            self._class_index: Dict[float, int] = {
                c: i for i, c in enumerate(self.classes.tolist())
            }
        else:
            self._class_index = {}
        # Row norms come from the canonical COO expansion, so this
        # array survives format conversions bitwise — compute once
        # (or accept the published copy from a fleet handle).
        if sv_norms is not None:
            if sv_norms.shape != (matrix.shape[0],):
                raise ValueError(
                    f"sv_norms shape {sv_norms.shape} does not match "
                    f"{matrix.shape[0]} stacked support vectors"
                )
            self.sv_norms = sv_norms
        else:
            self.sv_norms = matrix.row_norms_sq()

    def clone(self) -> "ServedModel":
        """A new ServedModel sharing the heavy arrays.

        Stored matrices are immutable here (conversion always builds a
        new object), so clones can share the current matrix, coef and
        norms; only the ``matrix`` *reference* is per-clone state — the
        piece an engine's runtime re-scheduling mutates.
        """
        out = object.__new__(ServedModel)
        out.matrix = self.matrix
        out.coef = self.coef
        out.pairs = self.pairs
        out.kernel = self.kernel
        out.classes = self.classes
        out._class_index = self._class_index
        out.sv_norms = self.sv_norms
        return out

    @property
    def n_support(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_features(self) -> int:
        return self.matrix.shape[1]

    @property
    def n_pairs(self) -> int:
        return len(self.pairs)

    # -- constructors ----------------------------------------------------
    @staticmethod
    def _stack(
        sv_lists: Sequence[Sequence[SparseVector]],
        n_features: int,
        fmt: str,
    ) -> MatrixFormat:
        svs = [sv for block in sv_lists for sv in block]
        if not svs:
            raise ValueError("model has no support vectors to serve")
        rows = np.concatenate(
            [np.full(sv.nnz, i, dtype=np.int64) for i, sv in enumerate(svs)]
        )
        cols = np.concatenate([np.asarray(sv.indices) for sv in svs])
        values = np.concatenate([np.asarray(sv.values) for sv in svs])
        return format_class(fmt).from_coo(
            rows, cols, values, (len(svs), n_features)
        )

    @classmethod
    def from_svc(cls, svc, fmt: str = "CSR") -> "ServedModel":
        """Flatten a fitted binary :class:`~repro.svm.svc.SVC`."""
        svc._check_fitted()
        n = int(svc._sv_vectors[0].length) if svc._sv_vectors else 0
        matrix = cls._stack([svc._sv_vectors], n, fmt)
        return cls(
            matrix,
            np.asarray(svc._sv_coef),
            [
                PairSlice(
                    classes=(1.0, -1.0),
                    lo=0,
                    hi=len(svc._sv_vectors),
                    bias=float(svc.result_.b),
                )
            ],
            svc.kernel,
            classes=None,
        )

    @classmethod
    def from_multiclass(cls, model, fmt: str = "CSR") -> "ServedModel":
        """Flatten a fitted :class:`~repro.svm.svc.MulticlassSVC`."""
        if not model.models_:
            raise RuntimeError(
                "MulticlassSVC is not fitted; call fit() first"
            )
        n = 0
        for pm in model.models_:
            if pm.svc._sv_vectors:
                n = int(pm.svc._sv_vectors[0].length)
                break
        matrix = cls._stack(
            [pm.svc._sv_vectors for pm in model.models_], n, fmt
        )
        coef = np.concatenate(
            [np.asarray(pm.svc._sv_coef) for pm in model.models_]
        )
        pairs = []
        lo = 0
        for pm in model.models_:
            hi = lo + len(pm.svc._sv_vectors)
            pairs.append(
                PairSlice(
                    classes=(float(pm.classes[0]), float(pm.classes[1])),
                    lo=lo,
                    hi=hi,
                    bias=float(pm.svc.result_.b),
                )
            )
            lo = hi
        return cls(matrix, coef, pairs, model.models_[0].svc.kernel,
                   classes=model.classes_)

    @classmethod
    def from_model(cls, model, fmt: str = "CSR") -> "ServedModel":
        """Flatten either model kind (registry loading path)."""
        from repro.svm.svc import SVC, MulticlassSVC

        if isinstance(model, SVC):
            return cls.from_svc(model, fmt)
        if isinstance(model, MulticlassSVC):
            return cls.from_multiclass(model, fmt)
        raise TypeError(
            f"cannot serve a {type(model).__name__}; expected SVC or "
            f"MulticlassSVC"
        )


class InferenceEngine:
    """Answers queries from a :class:`ServedModel`, one SpMM per batch.

    The matrix reference is swapped atomically under a lock by
    :meth:`convert_to`; each ``predict`` call reads the reference once,
    so a concurrent re-schedule never splits a batch across formats.
    Converted matrices are kept in a warm per-format cache — flipping
    back to a previously used layout is a dictionary lookup.
    """

    def __init__(
        self,
        model: ServedModel,
        *,
        counter: Optional[OpCounter] = None,
    ) -> None:
        self.model = model
        self.counter = counter if counter is not None else OpCounter()
        self._lock = make_lock("serve.engine")
        self._warm: Dict[str, MatrixFormat] = {
            model.matrix.name: model.matrix
        }
        # The matrix *reference* is the engine's one piece of shared
        # mutable state (REPRO_RACE watches it); the matrices behind it
        # are immutable, which is what makes publish-then-swap safe.
        track_shared(self, ("_warm",))
        track_shared(self.model, ("matrix",))

    # -- layout ----------------------------------------------------------
    @property
    def format(self) -> str:
        with self._lock:
            return self.model.matrix.name

    def convert_to(self, fmt: str) -> bool:
        """Swap the SV matrix's storage format in place.

        Returns ``True`` if a swap happened.  The converted matrix is
        cached so later swaps back are free ("warm format cache").

        Publish-then-swap: ``convert`` always *builds a new matrix*
        (stored formats are immutable after construction), so the only
        mutation is the reference assignment under ``_lock``.  A reader
        that grabbed the old reference via :meth:`_matrix` keeps a
        fully valid matrix for its whole sweep — a concurrent swap can
        never mutate a matrix a reader may hold, which is what keeps
        mid-stream re-scheduling bitwise invisible.
        """
        fmt = fmt.upper()
        tracer = get_tracer()
        with self._lock:
            if self.model.matrix.name == fmt:
                return False
            with tracer.span("serve.convert") as sp:
                warm = self._warm.get(fmt)
                if tracer.enabled:
                    sp.set("from", self.model.matrix.name)
                    sp.set("to", fmt)
                    sp.set("warm", warm is not None)
                if warm is None:
                    warm = convert(self.model.matrix, fmt)
                    self._warm[fmt] = warm
                self.model.matrix = warm
            return True

    def _matrix(self) -> MatrixFormat:
        with self._lock:
            return self.model.matrix

    # -- decision values -------------------------------------------------
    def _contract(self, col: np.ndarray) -> np.ndarray:
        """Per-pair ``coef . K - b`` from one contiguous kernel column.

        This exact routine runs for both the batched and the single-
        vector path — same slices, same contiguous buffer, same
        ``np.dot`` — which is what makes them bitwise comparable.
        """
        m = self.model
        out = np.empty(m.n_pairs, dtype=np.float64)
        for p, pair in enumerate(m.pairs):
            out[p] = (
                np.dot(m.coef[pair.lo : pair.hi], col[pair.lo : pair.hi])
                - pair.bias
            )
        return out

    def decision_function(
        self, vectors: Sequence[SparseVector]
    ) -> np.ndarray:
        """Decision values for a micro-batch: shape ``(k, n_pairs)``.

        One blocked kernel sweep (SpMM) computes all ``k`` kernel
        columns; each column is then contracted per pair.
        """
        q = list(vectors)
        if not q:
            return np.zeros((0, self.model.n_pairs), dtype=np.float64)
        matrix = self._matrix()
        m = self.model
        tracer = get_tracer()
        with tracer.span("serve.sweep") as sp:
            if tracer.enabled:
                sp.set("k", len(q))
                sp.set("fmt", matrix.name)
                sp.set("n_pairs", m.n_pairs)
            q_norms = np.array([v.norm_sq() for v in q], dtype=np.float64)
            K = m.kernel.rows(matrix, q, q_norms, m.sv_norms, self.counter)
            out = np.empty((len(q), m.n_pairs), dtype=np.float64)
            for j in range(len(q)):
                # Contiguous copy: np.dot on a strided column can take
                # a different BLAS path than on the contiguous single-
                # vector kernel row; the copy pins both paths to
                # identical inputs.
                out[j] = self._contract(np.ascontiguousarray(K[:, j]))
        return out

    def decision_one(self, v: SparseVector) -> np.ndarray:
        """Single-vector (unbatched / degraded) path: ``(n_pairs,)``."""
        matrix = self._matrix()
        m = self.model
        col = m.kernel.row(
            matrix, v, v.norm_sq(), m.sv_norms, self.counter
        )
        return self._contract(col)

    # -- labels ----------------------------------------------------------
    def _labels(self, dec: np.ndarray) -> np.ndarray:
        """Decision values ``(k, n_pairs)`` -> predicted labels ``(k,)``.

        Binary: the sign of the single decision value.  Multiclass:
        one-vs-one voting identical to
        :meth:`~repro.svm.svc.MulticlassSVC.predict` — ``d >= 0`` votes
        the first class of the pair, ``d < 0`` the second, argmax ties
        resolve to the lowest class label.
        """
        m = self.model
        if m.classes is None:
            return np.where(dec[:, 0] >= 0.0, 1.0, -1.0)
        votes = np.zeros((dec.shape[0], m.classes.shape[0]), dtype=np.int64)
        for p, pair in enumerate(m.pairs):
            ia = m._class_index[pair.classes[0]]
            ib = m._class_index[pair.classes[1]]
            votes[:, ia] += dec[:, p] >= 0.0
            votes[:, ib] += dec[:, p] < 0.0
        return m.classes[np.argmax(votes, axis=1)]

    def predict(self, vectors: Sequence[SparseVector]) -> np.ndarray:
        """Labels for a micro-batch (one SpMM sweep)."""
        return self._labels(self.decision_function(vectors))

    def predict_one(self, v: SparseVector) -> float:
        """Label for one query via the single-vector path."""
        return float(self._labels(self.decision_one(v)[None, :])[0])

    def predict_with_decisions(
        self, vectors: Sequence[SparseVector]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Labels *and* decision values from one SpMM sweep.

        Fleet workers return both to the front door (the bitwise
        equivalence contract is over decision values, not just
        labels), and paying a second sweep for them would double the
        hot-path cost.
        """
        dec = self.decision_function(vectors)
        return self._labels(dec), dec

    def predict_one_with_decision(
        self, v: SparseVector
    ) -> Tuple[float, np.ndarray]:
        """Degraded-path twin of :meth:`predict_with_decisions`."""
        dec = self.decision_one(v)
        return float(self._labels(dec[None, :])[0]), dec
