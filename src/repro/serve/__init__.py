"""repro.serve — online inference with runtime layout re-scheduling.

The serving pipeline: ``admission -> micro-batcher -> engine``, with a
:class:`~repro.serve.rescheduler.FormatRescheduler` watching the
observed batch-size mix and swapping the support-vector matrix's
storage format when the cost model's ``batch_k`` amortisation moves
the winner — the paper's runtime data layout scheduling applied at
serving time instead of training time.
"""

from repro.serve.admission import AdmissionController, Request, Verdict
from repro.serve.batcher import MicroBatcher
from repro.serve.engine import (
    EXACT_SERVE_FORMATS,
    InferenceEngine,
    PairSlice,
    ServedModel,
)
from repro.serve.loadgen import (
    ServeReport,
    TimedRequest,
    Workload,
    closed_loop,
    open_loop,
    phase_shift,
    query_sampler,
    replay_unbatched,
    simulate,
)
from repro.serve.metrics import LatencySummary, ServeMetrics, summarise_latencies
from repro.serve.registry import ModelRegistry
from repro.serve.rescheduler import (
    BatchSizeHistogram,
    FormatRescheduler,
    RescheduleEvent,
)

__all__ = [
    "AdmissionController",
    "BatchSizeHistogram",
    "EXACT_SERVE_FORMATS",
    "FormatRescheduler",
    "InferenceEngine",
    "LatencySummary",
    "MicroBatcher",
    "ModelRegistry",
    "PairSlice",
    "RescheduleEvent",
    "Request",
    "ServeMetrics",
    "ServeReport",
    "ServedModel",
    "TimedRequest",
    "Verdict",
    "Workload",
    "closed_loop",
    "open_loop",
    "phase_shift",
    "query_sampler",
    "replay_unbatched",
    "simulate",
    "summarise_latencies",
]
