"""repro.serve — online inference with runtime layout re-scheduling.

The serving pipeline: ``admission -> micro-batcher -> engine``, with a
:class:`~repro.serve.rescheduler.FormatRescheduler` watching the
observed batch-size mix and swapping the support-vector matrix's
storage format when the cost model's ``batch_k`` amortisation moves
the winner — the paper's runtime data layout scheduling applied at
serving time instead of training time.

The fleet tier (:mod:`repro.serve.fleet`) scales that pipeline across
worker processes: models are published once into shared memory
(:mod:`repro.serve.shm`), shards attach them as zero-copy views, a
front door routes and rebalances (:mod:`repro.serve.router`), and each
replica re-schedules its own layout under its own traffic mix.
"""

from repro.serve.admission import AdmissionController, Request, Verdict
from repro.serve.batcher import MicroBatcher
from repro.serve.engine import (
    EXACT_SERVE_FORMATS,
    InferenceEngine,
    PairSlice,
    ServedModel,
)
from repro.serve.fleet import (
    FleetReport,
    FleetSnapshot,
    ServiceModel,
    ServingFleet,
    fleet_from_registry,
    simulate_fleet,
)
from repro.serve.loadgen import (
    ServeReport,
    TenantSpec,
    TimedRequest,
    Workload,
    bursty,
    closed_loop,
    diurnal,
    multi_tenant,
    open_loop,
    phase_shift,
    query_sampler,
    replay_unbatched,
    simulate,
)
from repro.serve.metrics import LatencySummary, ServeMetrics, summarise_latencies
from repro.serve.registry import ModelRegistry
from repro.serve.rescheduler import (
    BatchSizeHistogram,
    FormatRescheduler,
    RescheduleEvent,
)
from repro.serve.router import (
    HotSpot,
    HotSpotDetector,
    RebalanceEvent,
    Router,
    ShardTable,
)
from repro.serve.shm import (
    Attachment,
    ModelHandle,
    ModelPublication,
    SegmentGroup,
    attach_model,
    pack_model,
)
from repro.serve.worker import (
    FleetWorkerError,
    LocalShard,
    ProcessShard,
    ShardServer,
)

__all__ = [
    "AdmissionController",
    "Attachment",
    "BatchSizeHistogram",
    "EXACT_SERVE_FORMATS",
    "FleetReport",
    "FleetSnapshot",
    "FleetWorkerError",
    "FormatRescheduler",
    "HotSpot",
    "HotSpotDetector",
    "InferenceEngine",
    "LatencySummary",
    "LocalShard",
    "MicroBatcher",
    "ModelHandle",
    "ModelPublication",
    "ModelRegistry",
    "PairSlice",
    "ProcessShard",
    "RebalanceEvent",
    "RescheduleEvent",
    "Request",
    "Router",
    "SegmentGroup",
    "ServeMetrics",
    "ServeReport",
    "ServedModel",
    "ServiceModel",
    "ServingFleet",
    "ShardServer",
    "ShardTable",
    "TenantSpec",
    "TimedRequest",
    "Verdict",
    "Workload",
    "attach_model",
    "bursty",
    "closed_loop",
    "diurnal",
    "fleet_from_registry",
    "multi_tenant",
    "open_loop",
    "pack_model",
    "phase_shift",
    "query_sampler",
    "replay_unbatched",
    "simulate",
    "simulate_fleet",
    "summarise_latencies",
]
