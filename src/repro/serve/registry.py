"""Model registry: named, versioned model storage for serving.

A thin layer over :mod:`repro.svm.persist`: each registered model lives
at ``<root>/<name>/v<NNNN>.npz`` (binary SVC or one-vs-one multiclass —
the persist header's ``kind`` field keeps loading agnostic).  Loading
for serving flattens the model into a
:class:`~repro.serve.engine.ServedModel` and memoises it per
``(name, version, fmt)``, so hot models skip both the disk read and
the stacking work — the registry-level counterpart of the engine's
warm per-format matrix cache.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.race import make_lock, track_shared
from repro.serve.engine import ServedModel
from repro.svm.persist import load_model, save_multiclass, save_svc

PathLike = Union[str, Path]

_VERSION_RE = re.compile(r"^v(\d{4})\.npz$")
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class ModelRegistry:
    """Filesystem-backed registry of named model versions."""

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._served_cache: Dict[Tuple[str, int, str], ServedModel] = {}
        self._lock = make_lock("serve.registry")
        track_shared(self, ("_served_cache",))

    # -- paths -----------------------------------------------------------
    @staticmethod
    def _check_name(name: str) -> str:
        if not _NAME_RE.match(name):
            raise ValueError(
                f"invalid model name {name!r}; use letters, digits, "
                f"'.', '_' or '-'"
            )
        return name

    def _model_dir(self, name: str) -> Path:
        return self.root / self._check_name(name)

    def _version_path(self, name: str, version: int) -> Path:
        return self._model_dir(name) / f"v{version:04d}.npz"

    # -- write side ------------------------------------------------------
    def register(self, name: str, model) -> int:
        """Persist ``model`` as the next version of ``name``.

        Accepts a fitted :class:`~repro.svm.svc.SVC` or
        :class:`~repro.svm.svc.MulticlassSVC`; returns the new version
        number (1-based, monotonically increasing).
        """
        from repro.svm.svc import SVC, MulticlassSVC

        d = self._model_dir(name)
        with self._lock:
            d.mkdir(parents=True, exist_ok=True)
            version = (self._latest_in(d) or 0) + 1
            path = self._version_path(name, version)
            if isinstance(model, SVC):
                save_svc(model, path)
            elif isinstance(model, MulticlassSVC):
                save_multiclass(model, path)
            else:
                raise TypeError(
                    f"cannot register a {type(model).__name__}; "
                    f"expected SVC or MulticlassSVC"
                )
        return version

    # -- read side -------------------------------------------------------
    @staticmethod
    def _versions_in(d: Path) -> List[int]:
        if not d.is_dir():
            return []
        out = []
        for p in d.iterdir():
            m = _VERSION_RE.match(p.name)
            if m:
                out.append(int(m.group(1)))
        return sorted(out)

    @classmethod
    def _latest_in(cls, d: Path) -> Optional[int]:
        versions = cls._versions_in(d)
        return versions[-1] if versions else None

    def models(self) -> List[str]:
        return sorted(
            p.name for p in self.root.iterdir()
            if p.is_dir() and self._versions_in(p)
        )

    def versions(self, name: str) -> List[int]:
        return self._versions_in(self._model_dir(name))

    def latest(self, name: str) -> int:
        v = self._latest_in(self._model_dir(name))
        if v is None:
            raise KeyError(f"no versions registered for model {name!r}")
        return v

    def load(self, name: str, version: Optional[int] = None):
        """Load the raw model object (SVC or MulticlassSVC)."""
        if version is None:
            version = self.latest(name)
        path = self._version_path(name, version)
        if not path.exists():
            raise KeyError(f"model {name!r} has no version {version}")
        return load_model(path)

    def serve(
        self,
        name: str,
        version: Optional[int] = None,
        *,
        fmt: str = "CSR",
    ) -> ServedModel:
        """A :class:`ServedModel` for ``name``, memoised while warm.

        The cache is keyed by ``(name, version, fmt)``.  Every call
        returns a :meth:`~repro.serve.engine.ServedModel.clone` of the
        warm entry — the clone shares the heavy arrays but owns its
        matrix *reference*, so concurrent engines re-scheduling the
        same model never see each other's format swaps.
        """
        if version is None:
            version = self.latest(name)
        key = (name, int(version), fmt.upper())
        with self._lock:
            cached = self._served_cache.get(key)
        if cached is not None:
            return cached.clone()
        served = ServedModel.from_model(self.load(name, version), fmt)
        with self._lock:
            self._served_cache[key] = served
        return served.clone()

    def serve_all(
        self,
        names: Optional[List[str]] = None,
        *,
        fmt: str = "CSR",
    ) -> Dict[str, ServedModel]:
        """Served models for several names at once (the fleet's input).

        ``names=None`` serves everything registered.  Each entry is a
        fresh clone (own matrix reference), so handing the dict to a
        :class:`~repro.serve.fleet.ServingFleet` — which publishes the
        heavy arrays into shared memory — never entangles the fleet
        with other users of the warm cache.
        """
        if names is None:
            names = self.models()
        return {name: self.serve(name, fmt=fmt) for name in names}

    def evict(self, name: Optional[str] = None) -> None:
        """Drop warm served models (all of them, or one name's)."""
        with self._lock:
            if name is None:
                self._served_cache.clear()
            else:
                for key in [
                    k for k in self._served_cache if k[0] == name
                ]:
                    del self._served_cache[key]
