"""Micro-batching: coalesce queued requests into one SpMM sweep.

The core trade the paper's ``batch_k`` knob models: a blocked kernel
sweep over ``k`` query vectors traverses the support-vector matrix's
index structure once instead of ``k`` times, so serving throughput
rises with batch width — at the cost of the wait spent coalescing.
:class:`MicroBatcher` bounds that wait two ways: a batch flushes as
soon as it holds ``max_batch`` requests, or when the *oldest* request
in it has waited ``max_wait_ms``.

The batcher is clock-agnostic: callers pass ``now`` into ``submit`` /
``poll``, so the same code runs under the load generator's virtual
clock (deterministic tests) and a monotonic clock (live serving).  It
is lock-protected for concurrent submitters; flushing hands back a
plain list of requests — executing the SpMM is the engine's job.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.race import make_lock, track_shared

from repro.serve.admission import Request


class MicroBatcher:
    """Size- and deadline-bounded request coalescing.

    Parameters
    ----------
    max_batch:
        Flush as soon as this many requests are pending.  This is the
        upper bound on the SpMM width ``k`` the engine sees.
    max_wait_ms:
        Flush once the oldest pending request has waited this long,
        whatever the batch size — the latency ceiling micro-batching
        adds.  ``0`` degenerates to immediate per-request flushing.
    """

    def __init__(self, max_batch: int = 8, max_wait_ms: float = 2.0) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0.0:
            raise ValueError("max_wait_ms must be >= 0")
        self.max_batch = max_batch
        self.max_wait = max_wait_ms / 1e3
        self._pending: List[Request] = []
        self._oldest_at: Optional[float] = None
        self._lock = make_lock("serve.batcher")
        track_shared(self, ("_pending", "_oldest_at"))

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)

    def submit(self, req: Request, now: float) -> Optional[List[Request]]:
        """Queue a request; returns a full batch if this one filled it."""
        with self._lock:
            if not self._pending:
                self._oldest_at = now
            self._pending.append(req)
            if len(self._pending) >= self.max_batch:
                return self._drain()
            return None

    def poll(self, now: float) -> Optional[List[Request]]:
        """Flush if the oldest pending request has hit ``max_wait_ms``.

        The deadline is ``oldest + max_wait`` — the *same expression*
        :meth:`next_flush_at` returns, not the algebraically equal
        ``now - oldest >= max_wait``: under floating point the two can
        disagree at the deadline itself, and an event loop stepping to
        ``next_flush_at()`` would then poll without flushing, forever.
        """
        with self._lock:
            if (
                self._pending
                and self._oldest_at is not None
                and now >= self._oldest_at + self.max_wait
            ):
                return self._drain()
            return None

    def flush(self) -> Optional[List[Request]]:
        """Unconditionally drain whatever is pending (shutdown path)."""
        with self._lock:
            if self._pending:
                return self._drain()
            return None

    def next_flush_at(self) -> Optional[float]:
        """Timestamp when ``poll`` would next flush; ``None`` if empty.

        The load generator's event loop uses this to interleave batch
        deadlines with arrivals in virtual-time order.
        """
        with self._lock:
            if self._oldest_at is None:
                return None
            return self._oldest_at + self.max_wait

    def _drain(self) -> List[Request]:
        # Caller holds the lock.
        batch = self._pending
        self._pending = []
        self._oldest_at = None
        return batch
