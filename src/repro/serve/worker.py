"""Fleet workers: the shard server loop and its two transports.

One code path serves both deployment shapes:

* :class:`ShardServer` — the worker-side request handler: holds one
  warm :class:`~repro.serve.engine.InferenceEngine` (plus its own
  :class:`~repro.serve.rescheduler.FormatRescheduler`) per attached
  model, records into a per-worker :class:`~repro.serve.metrics.
  ServeMetrics`, and answers plain-tuple messages.
* :class:`ProcessShard` — the real thing: a child process running
  :func:`fleet_worker_main` over a duplex pipe.  Every message and
  reply is pickled through ``send_bytes``/``recv_bytes`` so the
  client can *count the bytes that cross the process boundary* —
  the measurement behind the zero-copy acceptance test (per-request
  traffic is O(batch), never O(nnz), because matrices travel once
  via :mod:`repro.serve.shm` handles).
* :class:`LocalShard` — the same server called in-process, still
  through the pickle round-trip so byte accounting and message
  semantics are identical.  Used by tests and single-process runs.

The wire protocol is deliberately dumb — tuples with a verb first:

=================  ===================================================
``attach``          ``(key, ModelHandle, fmt0 | None, rcfg | None)``
``predict``         ``(key, req_ids, vectors, started, finished,
                    queued[, ctx])``
``predict_one``     ``(key, req_id, vector, arrived, finished[, ctx])``
``snapshot``        worker metrics state + per-model formats
``trace_on``        enable the worker's tracer + flight recorder
``trace_collect``   ship the span ring, drop count and audit records
                    back (plus a clock reading for offset estimation)
``flight_dump``     write the worker's flight-recorder ring to disk
``shutdown``        goodbye (worker closes attachments and exits)
=================  ===================================================

``ctx`` is an optional :class:`~repro.obs.trace.TraceContext` — the
front door's open request span — that the worker stamps onto its own
spans so :func:`~repro.obs.collect.merge_fleet_trace` can re-parent
them across the process boundary.  Its absence (older callers, or
tracing off) costs nothing.

Timestamps ride in from the front door (virtual or monotonic — the
door owns the clock), so worker metrics merge into an exact fleet
view regardless of which clock the simulation ran on.
"""

from __future__ import annotations

import os
import pickle
import traceback
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.race import make_lock, track_shared
from repro.obs.audit import audit_log
from repro.obs.flight import flight_recorder, install_signal_dump
from repro.obs.trace import (
    CTX_PARENT_LANE,
    CTX_PARENT_SPAN,
    CTX_TRACE_ID,
    TraceContext,
    get_tracer,
)
from repro.perf.counters import OpCounter
from repro.serve.engine import InferenceEngine
from repro.serve.metrics import ServeMetrics
from repro.serve.rescheduler import FormatRescheduler
from repro.serve.shm import Attachment, ModelHandle, attach_model

#: Message verbs on the request hot path; everything else is control
#: plane (attach / snapshot / shutdown) and may be arbitrarily large
#: exactly once.
HOT_VERBS = ("predict", "predict_one")


class FleetWorkerError(RuntimeError):
    """A worker-side exception, re-raised at the front door."""


class ShardServer:
    """Worker-side state: engines, reschedulers, metrics, attachments.

    ``remote=True`` marks a server running in its *own* process (via
    :func:`fleet_worker_main`): it owns that process's global tracer
    and audit log, so ``trace_on`` flips them and ``trace_collect``
    ships them home.  A local (in-door-process) server shares the
    door's globals — the door reads them directly, and collecting
    from the shard would double-count, so local collect is empty.
    """

    def __init__(
        self,
        worker_id: int,
        *,
        unregister: bool = False,
        remote: bool = False,
    ) -> None:
        self.worker_id = worker_id
        self.remote = remote
        # The process tracer, shared with the engine and rescheduler
        # instrumentation, so every layer's spans land in one ring
        # with one id space and correct contextvar nesting.
        self.tracer = get_tracer()
        self.metrics = ServeMetrics(counter=OpCounter())
        self.engines: Dict[str, InferenceEngine] = {}
        self.reschedulers: Dict[str, Optional[FormatRescheduler]] = {}
        self._attachments: List[Attachment] = []
        self._unregister = unregister
        self._closed = False

    # -- message handling ------------------------------------------------
    def handle(self, msg: Tuple[Any, ...]) -> Tuple[Any, ...]:
        verb = msg[0]
        if verb == "predict":
            return self._predict(*msg[1:])
        if verb == "predict_one":
            return self._predict_one(*msg[1:])
        if verb == "attach":
            return self._attach(*msg[1:])
        if verb == "snapshot":
            return self._snapshot()
        if verb == "trace_on":
            return self._trace_on()
        if verb == "trace_collect":
            return self._trace_collect()
        if verb == "flight_dump":
            return self._flight_dump(*msg[1:])
        if verb == "shutdown":
            return ("ok", "shutdown", self.worker_id)
        raise ValueError(f"unknown fleet message verb {verb!r}")

    def _attach(
        self,
        key: str,
        handle: ModelHandle,
        fmt0: Optional[str],
        rcfg: Optional[Dict[str, Any]],
    ) -> Tuple[Any, ...]:
        if key in self.engines:
            raise ValueError(
                f"worker {self.worker_id} already serves {key!r}"
            )
        att = Attachment(unregister=self._unregister)
        model = attach_model(handle, att)
        self._attachments.append(att)
        # All engines on one worker report into the worker's counter,
        # so one snapshot message captures the whole worker.
        engine = InferenceEngine(model, counter=self.metrics.counter)
        resched = (
            FormatRescheduler(**rcfg) if rcfg is not None else None
        )
        start_fmt = fmt0
        if start_fmt is None and resched is not None:
            start_fmt = resched.initial_format(model.matrix)
        if start_fmt is not None:
            engine.convert_to(start_fmt)
        self.engines[key] = engine
        self.reschedulers[key] = resched
        return ("ok", "attach", key, engine.format)

    def _predict(
        self,
        key: str,
        req_ids: List[int],
        vectors: List[Any],
        started_at: float,
        finished_at: float,
        queued_at: List[float],
        ctx: Optional[TraceContext] = None,
    ) -> Tuple[Any, ...]:
        tracer = self.tracer
        with tracer.span("fleet.worker.predict") as sp:
            if tracer.enabled:
                sp.set("worker", self.worker_id)
                sp.set("model", key)
                sp.set("k", len(vectors))
                if ctx is not None:
                    sp.set(CTX_TRACE_ID, ctx.trace_id)
                    sp.set(CTX_PARENT_SPAN, ctx.span_id)
                    sp.set(CTX_PARENT_LANE, ctx.lane)
            engine = self.engines[key]
            labels, dec = engine.predict_with_decisions(vectors)
            self.metrics.record_batch(
                len(vectors), started_at, finished_at,
                queued_at=list(queued_at),
            )
            event = None
            resched = self.reschedulers.get(key)
            if resched is not None:
                event = resched.after_batch(
                    len(vectors), engine.model.matrix
                )
                if event is not None:
                    engine.convert_to(event.to_fmt)
                    self.metrics.record_reschedule()
            return (
                "ok", "predict", key, list(req_ids), labels, dec,
                engine.format, event,
            )

    def _predict_one(
        self,
        key: str,
        req_id: int,
        vector: Any,
        arrived_at: float,
        finished_at: float,
        ctx: Optional[TraceContext] = None,
    ) -> Tuple[Any, ...]:
        tracer = self.tracer
        with tracer.span("fleet.worker.predict_one") as sp:
            if tracer.enabled:
                sp.set("worker", self.worker_id)
                sp.set("model", key)
                if ctx is not None:
                    sp.set(CTX_TRACE_ID, ctx.trace_id)
                    sp.set(CTX_PARENT_SPAN, ctx.span_id)
                    sp.set(CTX_PARENT_LANE, ctx.lane)
            engine = self.engines[key]
            label, dec = engine.predict_one_with_decision(vector)
            self.metrics.record_single(arrived_at, finished_at)
            self.metrics.record_degraded()
            return (
                "ok", "predict_one", key, req_id, label, dec,
                engine.format,
            )

    def _snapshot(self) -> Tuple[Any, ...]:
        formats = {
            key: engine.format for key, engine in self.engines.items()
        }
        return (
            "ok", "snapshot", self.worker_id, self.metrics.state(),
            formats,
        )

    # -- observability control plane -------------------------------------
    def _trace_on(self) -> Tuple[Any, ...]:
        if self.remote:
            # A remote worker owns its process's tracer and flight
            # recorder; a local shard shares the door's, which the
            # door flips itself.
            self.tracer.enable()
            flight_recorder().enable()
        return ("ok", "trace_on", self.worker_id, self.tracer.enabled)

    def _trace_collect(self) -> Tuple[Any, ...]:
        spans: List[Dict[str, Any]] = []
        audit: List[Dict[str, Any]] = []
        dropped = 0
        if self.remote:
            spans = [s.as_dict() for s in self.tracer.spans()]
            audit = [r.as_dict() for r in audit_log().records()]
            dropped = self.tracer.dropped
        return (
            "ok", "trace_collect", self.worker_id, os.getpid(),
            self.tracer.now(), spans, dropped, audit,
        )

    def _flight_dump(
        self, reason: str = "request", path: Optional[str] = None
    ) -> Tuple[Any, ...]:
        out = flight_recorder().dump(path, reason=reason)
        return ("ok", "flight_dump", self.worker_id, str(out))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for att in self._attachments:
            att.close()


def fleet_worker_main(
    conn, worker_id: int, unregister: bool = False
) -> None:
    """Child-process entry: serve messages until shutdown or EOF.

    Any per-message exception is shipped back as an ``("err", ...)``
    reply instead of killing the worker; EOF on the pipe (the parent
    died or closed us) exits cleanly, closing shm attachments.  An
    exception that *does* escape the loop (a broken reply pipe, a
    corrupted message) dumps the worker's flight recorder before the
    process dies, so the post-mortem has the recent history.
    """
    server = ShardServer(worker_id, unregister=unregister, remote=True)
    install_signal_dump()  # SIGUSR1 -> flight dump, best effort
    fr = flight_recorder()
    try:
        while True:
            try:
                raw = conn.recv_bytes()
            except (EOFError, OSError):
                break
            msg = pickle.loads(raw)
            try:
                reply = server.handle(msg)
            except Exception as exc:
                if fr.enabled:
                    fr.record(
                        "worker_error",
                        worker=worker_id,
                        verb=str(msg[0]),
                        error=f"{type(exc).__name__}: {exc}",
                    )
                reply = (
                    "err",
                    f"{type(exc).__name__}: {exc}",
                    traceback.format_exc(),
                )
            conn.send_bytes(
                pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL)
            )
            if msg[0] == "shutdown":
                break
    except BaseException:  # pragma: no cover - crash path
        if fr.enabled:
            fr.record("worker_crash", worker=worker_id)
            fr.dump(reason="worker_crash")
        raise
    finally:
        server.close()
        conn.close()


class _TransportStats:
    """Byte/message accounting split into hot path vs control plane."""

    FIELDS = (
        "hot_messages", "hot_requests", "hot_bytes_sent",
        "hot_bytes_received", "control_messages", "control_bytes_sent",
        "control_bytes_received",
    )

    def __init__(self) -> None:
        for f in self.FIELDS:
            setattr(self, f, 0)

    def account(
        self, verb: str, n_requests: int, sent: int, received: int
    ) -> None:
        if verb in HOT_VERBS:
            self.hot_messages += 1
            self.hot_requests += n_requests
            self.hot_bytes_sent += sent
            self.hot_bytes_received += received
        else:
            self.control_messages += 1
            self.control_bytes_sent += sent
            self.control_bytes_received += received

    def as_dict(self) -> Dict[str, int]:
        return {f: getattr(self, f) for f in self.FIELDS}


def _count_requests(msg: Tuple[Any, ...]) -> int:
    if msg[0] == "predict":
        return len(msg[2])
    if msg[0] == "predict_one":
        return 1
    return 0


class ProcessShard:
    """Front-door handle to one worker process.

    The RPC is synchronous and the pipe is a shared resource, so each
    request/reply pair (and the byte accounting) happens under one
    lock — the lockset the ``REPRO_RACE`` sanitizer checks when
    multiple door threads share a shard.
    """

    kind = "process"

    def __init__(self, worker_id: int, ctx) -> None:
        self.worker_id = worker_id
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        # A spawned worker owns a private resource tracker that must
        # forget attached segments (see repro.serve.shm); a forked one
        # shares ours and must not touch its bookkeeping.
        unregister = ctx.get_start_method() == "spawn"
        self._conn = parent_conn
        self._stats = _TransportStats()
        self._lock = make_lock(f"serve.shard{worker_id}")
        track_shared(self, ("_stats",))
        self.process = ctx.Process(
            target=fleet_worker_main,
            args=(child_conn, worker_id, unregister),
            daemon=True,
            name=f"repro-fleet-worker-{worker_id}",
        )
        self.process.start()
        child_conn.close()

    def request(self, msg: Tuple[Any, ...]) -> Tuple[Any, ...]:
        payload = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
        n_requests = _count_requests(msg)
        with self._lock:
            self._conn.send_bytes(payload)
            raw = self._conn.recv_bytes()
            self._stats.account(msg[0], n_requests, len(payload), len(raw))
        reply = pickle.loads(raw)
        if reply[0] == "err":
            raise FleetWorkerError(
                f"worker {self.worker_id}: {reply[1]}\n{reply[2]}"
            )
        return reply

    def transport_stats(self) -> Dict[str, int]:
        with self._lock:
            return self._stats.as_dict()

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        """SIGKILL the worker (crash-hygiene tests only)."""
        self.process.kill()
        self.process.join(timeout=10.0)

    def close(self) -> None:
        if self.process.is_alive():
            try:
                self.request(("shutdown",))
            except (FleetWorkerError, EOFError, OSError, BrokenPipeError):
                pass
        self._conn.close()
        self.process.join(timeout=10.0)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.kill()
            self.process.join(timeout=10.0)


class LocalShard:
    """The same server, same wire format, no process.

    Messages still round-trip through pickle so the byte accounting
    (and anything unpicklable sneaking onto the hot path) behaves
    exactly as it would across a real process boundary.
    """

    kind = "local"

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.server = ShardServer(worker_id)
        self._stats = _TransportStats()
        self._lock = make_lock(f"serve.shard{worker_id}")
        track_shared(self, ("_stats",))

    def request(self, msg: Tuple[Any, ...]) -> Tuple[Any, ...]:
        payload = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
        n_requests = _count_requests(msg)
        with self._lock:
            try:
                reply = self.server.handle(pickle.loads(payload))
            except Exception as exc:
                raise FleetWorkerError(
                    f"worker {self.worker_id}: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            raw = pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL)
            self._stats.account(msg[0], n_requests, len(payload), len(raw))
        return pickle.loads(raw)

    def transport_stats(self) -> Dict[str, int]:
        with self._lock:
            return self._stats.as_dict()

    def alive(self) -> bool:
        return True

    def close(self) -> None:
        self.server.close()
