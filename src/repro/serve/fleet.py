"""The serving fleet: sharded multi-process serving with one front door.

:class:`ServingFleet` wires the whole tier together:

* every :class:`~repro.serve.engine.ServedModel` is **published once**
  into shared memory (:class:`~repro.serve.shm.ModelPublication`) and
  attached in workers as zero-copy views — per-request traffic is the
  query vectors and answers, O(batch) regardless of matrix size;
* ``n_workers`` shards run either as real processes
  (:class:`~repro.serve.worker.ProcessShard`) or in-process with the
  identical wire protocol (:class:`~repro.serve.worker.LocalShard`);
* initial placement balances models over shards by nnz weight
  (:func:`~repro.parallel.partition.greedy_bins`) and then replicates
  onto otherwise-idle shards, so a 4-worker fleet serving one model
  still uses 4 workers;
* each replica runs its *own*
  :class:`~repro.serve.rescheduler.FormatRescheduler` — two replicas
  of one model under different traffic mixes may legitimately settle
  on different layouts, and the bitwise serving contract
  (:data:`~repro.serve.engine.EXACT_SERVE_FORMATS`) keeps that
  invisible in the answers;
* the hot-spot detector's reports trigger replica adds on the coldest
  shard (:meth:`ServingFleet.maybe_rebalance`);
* :meth:`ServingFleet.snapshot` merges per-worker
  :class:`~repro.serve.metrics.ServeMetrics` states into one exact
  fleet view and can mount it into the :mod:`repro.obs` registry.

:func:`simulate_fleet` is the virtual-clock discrete-event loop over
that machinery — the fleet twin of :func:`repro.serve.loadgen.
simulate`, and what `repro bench fleet` gates on: arrivals, per-replica
micro-batch flushes and service completions interleave on one event
heap, service cost is a deterministic :class:`ServiceModel`, and no
wall clock is read anywhere, so throughput scaling and overload p99
are exact, CI-gateable numbers.
"""

from __future__ import annotations

import atexit
import heapq
import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.obs.collect import (
    WorkerTraceBuffer,
    MergedTrace,
    fold_worker_audits,
    merge_fleet_trace,
)
from repro.obs.flight import flight_recorder
from repro.obs.metrics import MetricsRegistry, opcounter_shard
from repro.obs.trace import DOOR_LANE, TraceContext, get_tracer, new_trace_id
from repro.parallel.partition import greedy_bins
from repro.perf.counters import OpCounter
from repro.serve.admission import AdmissionController, Request, Verdict
from repro.serve.batcher import MicroBatcher
from repro.serve.engine import ServedModel
from repro.serve.loadgen import Workload
from repro.serve.metrics import ServeMetrics
from repro.serve.rescheduler import RescheduleEvent
from repro.serve.router import (
    HotSpot,
    HotSpotDetector,
    RebalanceEvent,
    Router,
    ShardTable,
)
from repro.serve.shm import ModelPublication
from repro.serve.worker import LocalShard, ProcessShard


def default_start_method() -> str:
    """``fork`` where available (fast, shares the parent's tracker)."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


@dataclass(frozen=True)
class ServiceModel:
    """Deterministic virtual service costs (the DES clock's physics).

    One batch costs a fixed dispatch overhead plus a per-row term —
    the same affine shape the cost model uses for SpMM amortisation —
    and the degraded single-vector path pays ``single_ms`` flat.  All
    virtual milliseconds: nothing here reads a clock.
    """

    batch_ms: float = 0.8
    row_ms: float = 0.05
    single_ms: float = 0.6

    def batch(self, k: int) -> float:
        """Virtual seconds to serve a ``k``-wide batch."""
        return (self.batch_ms + self.row_ms * k) / 1e3

    def single(self) -> float:
        """Virtual seconds for one degraded single-vector answer."""
        return self.single_ms / 1e3


@dataclass
class FleetSnapshot:
    """One merged observation of the whole fleet."""

    metrics: ServeMetrics
    per_worker: Dict[int, Dict]
    formats: Dict[int, Dict[str, str]]
    transport: Dict[int, Dict[str, int]]


# Fleets registered for interpreter-exit cleanup: a forgotten close()
# must still shut workers down and unlink shm segments.
_LIVE_FLEETS: List["ServingFleet"] = []
_ATEXIT_REGISTERED = False


def _atexit_close_all() -> None:  # pragma: no cover - exit hook
    for fleet in list(_LIVE_FLEETS):
        fleet.close()


class ServingFleet:
    """N worker shards behind one door, zero-copy models, one view."""

    def __init__(
        self,
        models: Dict[str, ServedModel],
        n_workers: int,
        *,
        backend: str = "process",
        start_method: Optional[str] = None,
        initial_formats: Optional[Dict[str, str]] = None,
        rescheduler: Optional[Dict[str, Any]] = None,
        weights: Optional[Dict[str, float]] = None,
        detector: Optional[HotSpotDetector] = None,
    ) -> None:
        global _ATEXIT_REGISTERED
        if not models:
            raise ValueError("a fleet needs at least one model")
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if backend not in ("process", "local"):
            raise ValueError(
                f"unknown backend {backend!r}; expected process or local"
            )
        self.models = dict(models)
        self.n_workers = n_workers
        self.backend = backend
        self.default_model = sorted(self.models)[0]
        self.initial_formats = {
            k: v.upper() for k, v in (initial_formats or {}).items()
        }
        self.rescheduler_cfg = (
            dict(rescheduler) if rescheduler is not None else None
        )
        self.table = ShardTable(n_workers)
        if detector is None and n_workers > 1:
            detector = HotSpotDetector(n_workers)
        self.router = Router(self.table, detector if n_workers > 1 else None)
        self.rebalances: List[RebalanceEvent] = []
        self._closed = False
        self.publications: Dict[str, ModelPublication] = {}
        self.shards: List[Any] = []
        _LIVE_FLEETS.append(self)
        if not _ATEXIT_REGISTERED:
            atexit.register(_atexit_close_all)
            _ATEXIT_REGISTERED = True
        try:
            for key in sorted(self.models):
                self.publications[key] = ModelPublication(self.models[key])
            if backend == "process":
                ctx = multiprocessing.get_context(
                    start_method or default_start_method()
                )
                self.shards = [
                    ProcessShard(i, ctx) for i in range(n_workers)
                ]
            else:
                self.shards = [LocalShard(i) for i in range(n_workers)]
            self._place_initial(weights)
        except Exception:
            self.close()
            raise

    # -- placement -------------------------------------------------------
    def _place_initial(self, weights: Optional[Dict[str, float]]) -> None:
        """Balance models over shards, then replicate onto idle ones."""
        keys = sorted(self.models)
        w = [
            float(
                weights[k]
                if weights is not None
                else self.models[k].matrix.nnz
            )
            for k in keys
        ]
        assignment = greedy_bins(w, self.n_workers)
        for key, shard in zip(keys, assignment):
            self.attach_replica(key, shard)
        # A fleet with fewer models than shards would leave workers
        # idle forever; give each idle shard a replica, heaviest
        # models first, so single-model fleets scale with n_workers.
        idle = sorted(set(range(self.n_workers)) - set(assignment))
        by_weight = sorted(
            keys, key=lambda k: (-w[keys.index(k)], k)
        )
        for i, shard in enumerate(idle):
            self.attach_replica(by_weight[i % len(by_weight)], shard)

    def attach_replica(self, key: str, shard: int) -> str:
        """Attach one replica of ``key`` on ``shard``; returns its format."""
        if key not in self.publications:
            raise KeyError(f"unknown model {key!r}")
        reply = self.shards[shard].request(
            (
                "attach",
                key,
                self.publications[key].handle,
                self.initial_formats.get(key),
                self.rescheduler_cfg,
            )
        )
        self.table.place(key, shard)
        return reply[3]

    # -- serving RPCs ----------------------------------------------------
    def predict_batch(
        self,
        key: str,
        shard: int,
        req_ids: List[int],
        vectors: List[Any],
        started_at: float,
        finished_at: float,
        queued_at: List[float],
    ) -> Tuple[List[int], np.ndarray, np.ndarray, str, Optional[RescheduleEvent]]:
        tracer = get_tracer()
        ctx = None
        with tracer.span("fleet.request") as sp:
            if tracer.enabled:
                sp.set("model", key)
                sp.set("shard", shard)
                sp.set("k", len(req_ids))
                ctx = TraceContext(new_trace_id(), sp.span_id, DOOR_LANE)
            reply = self.shards[shard].request(
                (
                    "predict", key, list(req_ids), list(vectors),
                    started_at, finished_at, list(queued_at), ctx,
                )
            )
        _, _, _, ids, labels, dec, fmt, event = reply
        return ids, labels, dec, fmt, event

    def predict_single(
        self,
        key: str,
        shard: int,
        req_id: int,
        vector: Any,
        arrived_at: float,
        finished_at: float,
    ) -> Tuple[float, np.ndarray, str]:
        tracer = get_tracer()
        ctx = None
        with tracer.span("fleet.request_one") as sp:
            if tracer.enabled:
                sp.set("model", key)
                sp.set("shard", shard)
                ctx = TraceContext(new_trace_id(), sp.span_id, DOOR_LANE)
            reply = self.shards[shard].request(
                (
                    "predict_one", key, req_id, vector,
                    arrived_at, finished_at, ctx,
                )
            )
        _, _, _, _, label, dec, fmt = reply
        return label, dec, fmt

    # -- rebalancing -----------------------------------------------------
    def maybe_rebalance(
        self, hotspot: Optional[HotSpot], at: float
    ) -> Optional[RebalanceEvent]:
        """Act on a hot-spot report: replicate onto the cold shard.

        Policy: *add, never move*.  A replica on the cold shard lets
        least-loaded routing drain the imbalance without invalidating
        the hot replica's warm cache mid-traffic; replicas are views
        over the same shared segments, so the add costs one control-
        plane message, not a matrix copy.
        """
        if hotspot is None:
            return None
        if hotspot.cold_shard in self.table.replicas(hotspot.model):
            return None
        self.attach_replica(hotspot.model, hotspot.cold_shard)
        event = RebalanceEvent(
            at=at,
            seq=len(self.rebalances) + 1,
            model=hotspot.model,
            hot_shard=hotspot.hot_shard,
            cold_shard=hotspot.cold_shard,
            imbalance=hotspot.imbalance,
        )
        self.rebalances.append(event)
        # The detector's finding enters the same observability stream
        # as everything else: a timeline marker plus a flight-recorder
        # entry (both free when the respective collector is off).
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "fleet.hotspot",
                {
                    "model": hotspot.model,
                    "hot_shard": hotspot.hot_shard,
                    "cold_shard": hotspot.cold_shard,
                    "imbalance": hotspot.imbalance,
                },
            )
        fr = flight_recorder()
        if fr.enabled:
            fr.record(
                "rebalance",
                at=at,
                model=hotspot.model,
                hot_shard=hotspot.hot_shard,
                cold_shard=hotspot.cold_shard,
                imbalance=hotspot.imbalance,
            )
        return event

    # -- observation -----------------------------------------------------
    def snapshot(
        self,
        *,
        door: Optional[ServeMetrics] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> FleetSnapshot:
        """Merge every worker's metrics into one exact fleet view.

        Latency percentiles of the merged view are computed over the
        union of every worker's samples — identical to what one
        process observing all requests would report.  ``door`` folds
        in the front door's own counts (rejections happen before any
        worker sees the request).  With ``registry`` the merged view
        is mounted as ``repro_fleet.*`` gauges/histograms and each
        worker's OpCounter lands additively under
        ``repro_fleet.worker<i>.ops.*``.
        """
        merged = ServeMetrics()
        if door is not None:
            merged.merge(door)
        per_worker: Dict[int, Dict] = {}
        formats: Dict[int, Dict[str, str]] = {}
        transport: Dict[int, Dict[str, int]] = {}
        for shard in self.shards:
            reply = shard.request(("snapshot",))
            _, _, wid, state, fmts = reply
            per_worker[wid] = state
            formats[wid] = fmts
            transport[wid] = shard.transport_stats()
            merged.merge(ServeMetrics.from_state(state))
        if registry is not None:
            merged.registry_view(registry, prefix="repro_fleet")
            for wid, state in per_worker.items():
                counter = OpCounter()
                for name, value in state["ops"].items():
                    setattr(counter, name, value)
                registry.merge(
                    opcounter_shard(
                        counter, prefix=f"repro_fleet.worker{wid}.ops"
                    )
                )
            from repro.serve.shm import leaked_segments

            # Live callback: the scan runs at export time, so the
            # gauge reports leaks as of the scrape, not the snapshot.
            registry.gauge(
                "repro_fleet.leaked_shm_segments",
                "repro shm segments present on disk but unowned",
                fn=lambda: float(len(leaked_segments())),
            )
        return FleetSnapshot(
            metrics=merged,
            per_worker=per_worker,
            formats=formats,
            transport=transport,
        )

    # -- distributed tracing ---------------------------------------------
    def enable_worker_tracing(self) -> None:
        """Broadcast ``trace_on``: every worker starts recording spans.

        The door's own tracer is *not* touched — callers (the CLI's
        ``repro trace``, the bench harness) own that switch.  Local
        shards share the door's tracer and treat the verb as a no-op.
        """
        for shard in self.shards:
            shard.request(("trace_on",))

    def collect_traces(self) -> List[WorkerTraceBuffer]:
        """Pull every live worker's span ring and audit log home.

        A dead or wedged worker contributes nothing (partial fleet
        traces are better than none — the killed-worker test pins
        this).  The clock handshake brackets the worker's reading
        between two door readings; an offset smaller than the round
        trip is indistinguishable from pipe latency on a shared
        monotonic clock and is zeroed, while genuinely different
        clocks (virtual time in tests) survive.
        """
        from repro.serve.worker import FleetWorkerError

        tracer = get_tracer()
        buffers: List[WorkerTraceBuffer] = []
        for shard in self.shards:
            if not shard.alive():
                continue
            t0 = tracer.now()
            try:
                reply = shard.request(("trace_collect",))
            except (FleetWorkerError, EOFError, OSError, BrokenPipeError):
                continue
            t1 = tracer.now()
            _, _, wid, pid, worker_now, span_dicts, dropped, audit = reply
            offset = worker_now - 0.5 * (t0 + t1)
            if abs(offset) <= (t1 - t0):
                offset = 0.0
            from repro.obs.audit import DecisionRecord
            from repro.obs.trace import SpanRecord

            buffers.append(
                WorkerTraceBuffer(
                    worker_id=wid,
                    pid=pid,
                    spans=tuple(
                        SpanRecord.from_dict(d) for d in span_dicts
                    ),
                    dropped=dropped,
                    clock_offset=offset,
                    audit=tuple(
                        DecisionRecord.from_dict(d) for d in audit
                    ),
                )
            )
        return buffers

    def merged_trace(self, *, fold_audit: bool = True) -> MergedTrace:
        """One coherent timeline: door spans + every worker's ring.

        Collect *before* :meth:`close` — the rings die with the
        workers.  ``fold_audit`` lands worker-side rescheduler
        decisions in the door's audit log on the way through.
        """
        tracer = get_tracer()
        buffers = self.collect_traces()
        if fold_audit:
            fold_worker_audits(buffers)
        return merge_fleet_trace(
            tracer.spans(),
            buffers,
            door_pid=os.getpid(),
            door_dropped=tracer.dropped,
        )

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Shut workers down and unlink every shm segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for shard in self.shards:
            try:
                shard.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        for pub in self.publications.values():
            pub.close()
        if self in _LIVE_FLEETS:
            _LIVE_FLEETS.remove(self)

    def __enter__(self) -> "ServingFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def fleet_from_registry(
    registry, names: Optional[List[str]] = None, n_workers: int = 2,
    *, fmt: str = "CSR", **kwargs: Any,
) -> ServingFleet:
    """Spin a fleet straight from a :class:`~repro.serve.registry.
    ModelRegistry` — the deployment path's one-liner."""
    return ServingFleet(
        registry.serve_all(names, fmt=fmt), n_workers, **kwargs
    )


@dataclass
class FleetReport:
    """Everything one simulated fleet session produced."""

    workload: str
    responses: Dict[int, float]
    decisions: Dict[int, np.ndarray]
    metrics: ServeMetrics
    door: ServeMetrics
    events: List[Tuple[str, int, RescheduleEvent]]
    rebalances: List[RebalanceEvent]
    format_history: List[Tuple[float, str, int, str]]
    max_inflight: int
    snapshot: FleetSnapshot
    per_shard_served: Dict[int, int] = field(default_factory=dict)


# Event-heap priorities: completions release admission slots before
# flushes fire, and both before new arrivals are admitted at the same
# virtual instant.
_P_COMPLETE, _P_FLUSH, _P_ARRIVE = 0, 1, 2


def simulate_fleet(
    fleet: ServingFleet,
    workload: Workload,
    *,
    max_batch: int = 8,
    max_wait_ms: float = 2.0,
    admission: Optional[AdmissionController] = None,
    service: Optional[ServiceModel] = None,
    registry: Optional[MetricsRegistry] = None,
    slo: Optional[Any] = None,
) -> FleetReport:
    """Serve a workload through the fleet on the virtual clock.

    The discrete-event twin of :func:`repro.serve.loadgen.simulate`,
    generalised to many shards: each ``(model, shard)`` replica has
    its own :class:`~repro.serve.batcher.MicroBatcher`, each shard a
    single virtual core (``busy_until``), and the door runs admission,
    routing, hot-spot detection and rebalancing.  Worker predictions
    happen at dispatch (so per-shard answer order equals virtual serve
    order) while latency accounting uses the virtual start/finish
    times; admission slots release at virtual completion, which is
    what makes the overload experiment honest about in-flight bounds.

    ``slo`` is an optional :class:`~repro.obs.slo.SLOMonitor` fed the
    door's four streams on the virtual clock — request latency,
    deadline misses, admission rejections, per-shard dispatch backlog
    — with a final evaluation before the report returns.  Observation
    only: the monitor cannot change a single scheduling decision.
    """
    service = service if service is not None else ServiceModel()
    door = ServeMetrics()
    responses: Dict[int, float] = {}
    decisions: Dict[int, np.ndarray] = {}
    events: List[Tuple[str, int, RescheduleEvent]] = []
    format_history: List[Tuple[float, str, int, str]] = []
    rebalances: List[RebalanceEvent] = []
    per_shard_served: Dict[int, int] = {
        s: 0 for s in range(fleet.n_workers)
    }
    batchers: Dict[Tuple[str, int], MicroBatcher] = {}
    last_fmt: Dict[Tuple[str, int], str] = {}
    busy_until = [0.0] * fleet.n_workers
    heap: List[Tuple[float, int, int, str, Any]] = []
    seq = 0
    inflight = 0
    max_inflight = 0

    def push(t: float, prio: int, kind: str, payload: Any) -> None:
        nonlocal seq
        heapq.heappush(heap, (t, prio, seq, kind, payload))
        seq += 1

    def note_format(t: float, key: str, shard: int, fmt: str) -> None:
        if last_fmt.get((key, shard)) != fmt:
            last_fmt[(key, shard)] = fmt
            format_history.append((t, key, shard, fmt))

    def serve_batch(
        key: str, shard: int, batch: List[Request], at: float
    ) -> None:
        nonlocal inflight
        live = [r for r in batch if not r.expired(at)]
        dropped = len(batch) - len(live)
        if dropped:
            door.record_expired(dropped)
            if admission is not None:
                admission.release(dropped)
            fleet.router.complete(shard, dropped)
            inflight -= dropped
            if slo is not None:
                for _ in range(dropped):
                    slo.observe_deadline(at, True)
        if not live:
            return
        start = max(at, busy_until[shard])
        fin = start + service.batch(len(live))
        busy_until[shard] = fin
        if slo is not None:
            slo.observe_shard(at, shard, start - at)
            for r in live:
                slo.observe_latency(fin, fin - r.arrived_at)
                if r.deadline is not None:
                    slo.observe_deadline(fin, False)
        ids, labels, dec, fmt, event = fleet.predict_batch(
            key,
            shard,
            [r.req_id for r in live],
            [r.vector for r in live],
            start,
            fin,
            [r.arrived_at for r in live],
        )
        for j, rid in enumerate(ids):
            responses[rid] = float(labels[j])
            decisions[rid] = dec[j]
        per_shard_served[shard] += len(live)
        note_format(at, key, shard, fmt)
        if event is not None:
            events.append((key, shard, event))
            note_format(at, key, shard, event.to_fmt)
        push(fin, _P_COMPLETE, "complete", (shard, len(live)))

    for req in workload.arrivals:
        push(req.t, _P_ARRIVE, "arrive", req)

    while heap:
        t, prio, _, kind, payload = heapq.heappop(heap)
        if kind == "complete":
            shard, n = payload
            if admission is not None:
                admission.release(n)
            fleet.router.complete(shard, n)
            inflight -= n
            continue
        if kind == "flush":
            key, shard = payload
            batcher = batchers.get((key, shard))
            if batcher is None:
                continue
            batch = batcher.poll(t)
            if batch:
                serve_batch(key, shard, batch, t)
            continue
        # Arrival.
        req = payload
        key = req.model if req.model is not None else fleet.default_model
        verdict = (
            admission.admit() if admission is not None else Verdict.ACCEPTED
        )
        if slo is not None:
            slo.observe_admission(t, verdict is Verdict.REJECTED)
        if verdict is Verdict.REJECTED:
            door.record_rejected()
            continue
        inflight += 1
        max_inflight = max(max_inflight, inflight)
        r = Request(req.req_id, req.vector, req.t, req.deadline)
        if verdict is Verdict.DEGRADED:
            # Shed path: single-vector answer now, no coalescing wait
            # added to a queue that is already deep.
            if r.expired(t):
                door.record_expired()
                if admission is not None:
                    admission.release()
                inflight -= 1
                if slo is not None:
                    slo.observe_deadline(t, True)
                continue
            shard, hotspot = fleet.router.dispatch(key)
            fin = t + service.single()
            label, dec, fmt = fleet.predict_single(
                key, shard, r.req_id, r.vector, t, fin
            )
            if slo is not None:
                slo.observe_latency(fin, fin - r.arrived_at)
                if r.deadline is not None:
                    slo.observe_deadline(fin, False)
            responses[r.req_id] = float(label)
            decisions[r.req_id] = dec
            per_shard_served[shard] += 1
            note_format(t, key, shard, fmt)
            push(fin, _P_COMPLETE, "complete", (shard, 1))
            event = fleet.maybe_rebalance(hotspot, t)
            if event is not None:
                rebalances.append(event)
            continue
        shard, hotspot = fleet.router.dispatch(key)
        event = fleet.maybe_rebalance(hotspot, t)
        if event is not None:
            rebalances.append(event)
        batcher = batchers.get((key, shard))
        if batcher is None:
            batcher = MicroBatcher(
                max_batch=max_batch, max_wait_ms=max_wait_ms
            )
            batchers[(key, shard)] = batcher
        full = batcher.submit(r, t)
        if full:
            serve_batch(key, shard, full, t)
        else:
            flush_at = batcher.next_flush_at()
            if flush_at is not None:
                # Lazy flush scheduling: a stale event polls an empty
                # batcher and does nothing.
                push(flush_at, _P_FLUSH, "flush", (key, shard))

    if slo is not None:
        slo.evaluate()
    snapshot = fleet.snapshot(door=door, registry=registry)
    return FleetReport(
        workload=workload.name,
        responses=responses,
        decisions=decisions,
        metrics=snapshot.metrics,
        door=door,
        events=events,
        rebalances=rebalances,
        format_history=format_history,
        max_inflight=max_inflight,
        snapshot=snapshot,
        per_shard_served=per_shard_served,
    )
