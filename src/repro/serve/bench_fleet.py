"""Fleet benchmark: multi-worker scaling, zero-copy transport, overload.

Three experiments, all on the deterministic virtual clock — no wall
time is read anywhere, so every number (including the throughput
scaling headline) is exact and CI-gateable:

1. **scaling** — one multi-tenant workload (bursty + diurnal tenants)
   served through :func:`~repro.serve.fleet.simulate_fleet` at 1 and
   4 workers.  Virtual makespan shrinks with the worker count because
   each shard is one virtual core; the headline is the 4-worker /
   1-worker throughput ratio (criterion >= 2.5x) and every label and
   decision value must be bitwise identical to a single-engine
   unbatched replay — across both worker counts and a re-scheduling
   replica run where replicas flip formats mid-stream.

2. **zero-copy** — the same request mix against models whose
   support-vector matrices differ ~8x in nnz.  Matrices cross the
   process boundary once, as shm segment names; the hot path carries
   only query vectors and answers, so measured hot bytes per request
   must not grow with nnz (criterion: max/min ratio <= 1.5).

3. **overload** — an open-loop burst at ~2x the fleet's service
   capacity against a small admission door.  The door must reject the
   overflow, keep in-flight requests at or under capacity (no
   unbounded queue), and hold the p99 latency of *admitted* requests
   under a fixed bound.

Run via ``repro bench fleet [--smoke]``; results land in
``BENCH_fleet.json`` and the suite's exit code gates on all three
criteria.
"""

from __future__ import annotations

import json
import platform
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.serve.admission import AdmissionController
from repro.serve.bench import synthetic_model
from repro.serve.engine import InferenceEngine, ServedModel
from repro.serve.fleet import ServingFleet, simulate_fleet
from repro.serve.loadgen import (
    TenantSpec,
    Workload,
    multi_tenant,
    open_loop,
    query_sampler,
    replay_unbatched,
)

#: Acceptance threshold: 4-worker vs 1-worker virtual throughput.
HEADLINE_CRITERION = 2.5

#: Zero-copy acceptance: hot bytes/request may not spread more than
#: this across an ~8x nnz range.
ZERO_COPY_RATIO = 1.5

#: Overload acceptance: virtual p99 latency bound for admitted
#: requests while the door sheds ~half the offered load.
OVERLOAD_P99_MS = 25.0

#: The strict-bitwise serving family: kernels that reduce exactly
#: CSR's product array in CSR's order, so a mid-stream flip between
#: them is bitwise invisible on *any* row/query overlap (see
#: ``repro.serve.engine.EXACT_SERVE_FORMATS``'s docstring — COO, ELL
#: and DIA only guarantee this on sparse overlaps).  Replica
#: re-schedulers in the bitwise experiments draw from this family.
STRONG_BITWISE_FORMATS: Tuple[str, ...] = ("CSR", "SELL", "RCSR", "RSELL")

_N_FEATURES = 160


def fleet_models(*, smoke: bool = False) -> Dict[str, ServedModel]:
    """The two-tenant model pair every experiment serves."""
    scale = 1 if smoke else 2
    return {
        "alpha": synthetic_model(
            n_sv=220 * scale, n_features=_N_FEATURES, row_nnz=10, seed=11
        ),
        "beta": synthetic_model(
            n_sv=160 * scale, n_features=_N_FEATURES, row_nnz=14, seed=12
        ),
    }


def flip_fleet_models(*, smoke: bool = False) -> Dict[str, ServedModel]:
    """Heavy-tailed SV arenas: wide batches pull CSR into a sorted
    layout (the same crossover ``tests/serve/test_sell_flip.py`` pins),
    so the replica-divergence run reliably re-schedules mid-stream."""
    from repro.data.synthetic import powerlaw_rows_matrix
    from repro.formats.csr import CSRMatrix
    from repro.serve.engine import PairSlice
    from repro.svm.kernels import make_kernel

    scale = 1 if smoke else 2
    out: Dict[str, ServedModel] = {}
    for key, seed in (("alpha", 41), ("beta", 42)):
        rows, cols, vals, shape = powerlaw_rows_matrix(
            250 * scale, _N_FEATURES, alpha=1.5, min_nnz=4,
            max_nnz=80, seed=seed,
        )
        matrix = CSRMatrix.from_coo(rows, cols, vals, shape)
        rng = np.random.default_rng(seed + 1)
        out[key] = ServedModel(
            matrix,
            rng.standard_normal(shape[0]),
            [PairSlice(classes=(1.0, -1.0), lo=0, hi=shape[0], bias=0.1)],
            make_kernel("gaussian", gamma=0.2),
        )
    return out


def tenant_workload(*, smoke: bool = False, seed: int = 7) -> Workload:
    """Bursty + diurnal tenants, hot enough to saturate four shards.

    Aggregate arrival rate is far above one shard's service rate, so
    the 1-worker run is compute-bound and the 4-worker run stays
    compute-bound too — the regime where the scaling ratio reflects
    the shard count rather than the arrival process.
    """
    n = 400 if smoke else 1200
    sampler = query_sampler(_N_FEATURES, 8)
    return multi_tenant(
        [
            TenantSpec(
                "t-burst", "alpha", n=n, rate_rps=30_000.0,
                pattern="bursty", burst_factor=6.0, period_s=0.02,
            ),
            TenantSpec(
                "t-tide", "beta", n=2 * n // 3, rate_rps=18_000.0,
                pattern="diurnal", amplitude=0.7, period_s=0.05,
            ),
        ],
        sampler,
        seed=seed,
        name="fleet-multi-tenant",
    )


def _bitwise_vs_replay(
    models: Dict[str, ServedModel],
    workload: Workload,
    responses: Dict[int, float],
    decisions: Dict[int, np.ndarray],
) -> Tuple[bool, bool]:
    """Labels and decision values vs a single-engine unbatched replay."""
    labels_ok = True
    decisions_ok = True
    default_key = sorted(models)[0]
    for key, model in models.items():
        pinned = InferenceEngine(model.clone())
        sub = [
            r for r in workload.arrivals
            if (r.model or default_key) == key
        ]
        if not sub:
            continue
        reference = replay_unbatched(pinned, Workload("ref", sub))
        for req in sub:
            if req.req_id not in responses:
                continue
            if responses[req.req_id] != reference[req.req_id]:
                labels_ok = False
            if not np.array_equal(
                decisions[req.req_id], pinned.decision_one(req.vector)
            ):
                decisions_ok = False
    return labels_ok, decisions_ok


def run_scaling(
    *,
    smoke: bool = False,
    backend: str = "process",
    workers: Tuple[int, ...] = (1, 4),
) -> Dict:
    """Virtual throughput at each worker count, bitwise-checked."""
    models = fleet_models(smoke=smoke)
    workload = tenant_workload(smoke=smoke)
    runs: List[Dict] = []
    for n in workers:
        with ServingFleet(models, n, backend=backend) as fleet:
            report = simulate_fleet(fleet, workload)
        labels_ok, decisions_ok = _bitwise_vs_replay(
            models, workload, report.responses, report.decisions
        )
        runs.append(
            {
                "workers": n,
                "served": report.metrics.served,
                "virtual_makespan_s": report.metrics.elapsed,
                "throughput_rps": report.metrics.throughput,
                "mean_batch": report.metrics.mean_batch,
                "per_shard_served": {
                    str(s): c for s, c in report.per_shard_served.items()
                },
                "rebalances": len(report.rebalances),
                "labels_bitwise_identical": labels_ok,
                "decisions_bitwise_identical": decisions_ok,
            }
        )
    # Replica-divergence run: every replica re-schedules its own
    # layout under its own traffic slice; answers must not notice.
    # Heavy-tailed arenas + a CSR pin guarantee mid-stream flips, and
    # the strong-bitwise candidate family keeps them invisible.
    n_max = max(workers)
    flip_models = flip_fleet_models(smoke=smoke)
    with ServingFleet(
        flip_models,
        n_max,
        backend=backend,
        initial_formats={k: "CSR" for k in flip_models},
        rescheduler={
            "window": 16,
            "check_every": 4,
            "min_gain": 0.0,
            "candidates": STRONG_BITWISE_FORMATS,
        },
    ) as fleet:
        report = simulate_fleet(fleet, workload)
    labels_ok, decisions_ok = _bitwise_vs_replay(
        flip_models, workload, report.responses, report.decisions
    )
    resched = {
        "workers": n_max,
        "events": len(report.events),
        "format_history": [
            [t, key, shard, fmt]
            for t, key, shard, fmt in report.format_history
        ],
        "labels_bitwise_identical": labels_ok,
        "decisions_bitwise_identical": decisions_ok,
    }
    base = next(r for r in runs if r["workers"] == min(workers))
    top = next(r for r in runs if r["workers"] == n_max)
    speedup = (
        top["throughput_rps"] / base["throughput_rps"]
        if base["throughput_rps"] > 0
        else 0.0
    )
    bitwise = all(
        r["labels_bitwise_identical"] and r["decisions_bitwise_identical"]
        for r in runs
    ) and resched["labels_bitwise_identical"] and resched[
        "decisions_bitwise_identical"
    ]
    return {
        "runs": runs,
        "rescheduling_run": resched,
        "speedup": speedup,
        "bitwise_identical": bitwise,
    }


def run_zero_copy(
    *, smoke: bool = False, backend: str = "process"
) -> Dict:
    """Hot-path bytes/request across an ~8x nnz sweep.

    The model grows (rows and row nnz) while the request mix stays
    fixed; only the control plane (one attach per replica) may grow
    with the matrix.
    """
    n = 96 if smoke else 256
    sampler = query_sampler(_N_FEATURES, 8)
    points: List[Dict] = []
    for label, n_sv, row_nnz in (
        ("small", 150, 8),
        ("medium", 300, 16),
        ("large", 600, 32),
    ):
        model = synthetic_model(
            n_sv=n_sv, n_features=_N_FEATURES, row_nnz=row_nnz, seed=21
        )
        nnz = model.matrix.nnz
        workload = open_loop(
            n, 20_000.0, sampler, seed=5, name=f"zc-{label}"
        )
        with ServingFleet(
            {"m": model}, 2, backend=backend
        ) as fleet:
            report = simulate_fleet(fleet, workload)
            shared = sum(
                pub.shared_bytes for pub in fleet.publications.values()
            )
        hot_sent = hot_recv = hot_req = control = 0
        for stats in report.snapshot.transport.values():
            hot_sent += stats["hot_bytes_sent"]
            hot_recv += stats["hot_bytes_received"]
            hot_req += stats["hot_requests"]
            control += (
                stats["control_bytes_sent"]
                + stats["control_bytes_received"]
            )
        points.append(
            {
                "label": label,
                "nnz": int(nnz),
                "shared_bytes": int(shared),
                "served": report.metrics.served,
                "hot_requests": hot_req,
                "hot_bytes_per_request": (
                    (hot_sent + hot_recv) / hot_req if hot_req else 0.0
                ),
                "control_bytes": control,
            }
        )
    per_req = [p["hot_bytes_per_request"] for p in points]
    ratio = max(per_req) / min(per_req) if min(per_req) > 0 else float("inf")
    nnz_span = points[-1]["nnz"] / points[0]["nnz"]
    return {
        "points": points,
        "nnz_span": nnz_span,
        "bytes_ratio": ratio,
        "criterion": ZERO_COPY_RATIO,
        "pass": ratio <= ZERO_COPY_RATIO,
    }


def run_overload(
    *, smoke: bool = False, backend: str = "process"
) -> Dict:
    """2x-capacity burst against a small admission door.

    Offered load is roughly twice what two shards can serve in the
    arrival window, with a door capacity far below the backlog the
    excess would otherwise build.  Gates: the door rejects, in-flight
    never exceeds capacity, and admitted requests' p99 stays bounded.
    """
    n = 600 if smoke else 1500
    capacity = 32
    models = {
        "m": synthetic_model(
            n_sv=200, n_features=_N_FEATURES, row_nnz=10, seed=31
        )
    }
    sampler = query_sampler(_N_FEATURES, 8)
    # Two shards at full batches serve ~13.3k rps; offer ~2x that.
    workload = open_loop(
        n, 27_000.0, sampler, seed=9, name="fleet-overload"
    )
    door = AdmissionController(capacity=capacity, shed_at=1.0)
    with ServingFleet(models, 2, backend=backend) as fleet:
        report = simulate_fleet(fleet, workload, admission=door)
    snap = report.metrics.snapshot()
    lat = snap["latency"]
    rejected = report.metrics.rejected
    return {
        "offered": len(workload),
        "capacity": capacity,
        "served": report.metrics.served,
        "rejected": rejected,
        "expired": report.metrics.expired,
        "max_inflight": report.max_inflight,
        "admitted_p99_ms": lat["p99_ms"],
        "p99_criterion_ms": OVERLOAD_P99_MS,
        "pass": (
            rejected > 0
            and report.max_inflight <= capacity
            and lat["p99_ms"] <= OVERLOAD_P99_MS
        ),
    }


def run_suite(
    *,
    smoke: bool = False,
    backend: str = "process",
    samples: Optional[int] = None,
) -> Dict:
    """Run all three experiments; assemble ``BENCH_fleet.json``.

    ``samples`` is accepted for CLI uniformity but unused — every
    experiment is deterministic on the virtual clock, so one run *is*
    the distribution.
    """
    del samples
    scaling = run_scaling(smoke=smoke, backend=backend)
    zero_copy = run_zero_copy(smoke=smoke, backend=backend)
    overload = run_overload(smoke=smoke, backend=backend)
    headline_pass = (
        scaling["speedup"] >= HEADLINE_CRITERION
        and scaling["bitwise_identical"]
        and zero_copy["pass"]
        and overload["pass"]
    )
    return {
        "meta": {
            "suite": "fleet",
            "smoke": smoke,
            "backend": backend,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "scaling": scaling,
        "zero_copy": zero_copy,
        "overload": overload,
        "headline": {
            "scaling_speedup": scaling["speedup"],
            "criterion": HEADLINE_CRITERION,
            "bitwise_identical": scaling["bitwise_identical"],
            "zero_copy_pass": zero_copy["pass"],
            "overload_pass": overload["pass"],
            "pass": headline_pass,
        },
    }


def write_report(payload: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def render_summary(payload: Dict) -> str:
    """Terminal summary: headline ratio, per-experiment outcomes."""
    lines = []
    head = payload["headline"]
    verdict = "PASS" if head["pass"] else "FAIL"
    lines.append(
        f"fleet scaling (virtual throughput, 4w / 1w): "
        f"{head['scaling_speedup']:.2f}x "
        f"(criterion {head['criterion']:.1f}x) [{verdict}]"
    )
    for r in payload["scaling"]["runs"]:
        lines.append(
            f"  workers={r['workers']}: {r['throughput_rps']:.0f} rps "
            f"over {r['virtual_makespan_s'] * 1e3:.1f} virtual ms, "
            f"mean batch {r['mean_batch']:.2f}, "
            f"{r['rebalances']} rebalance(s)"
        )
    resched = payload["scaling"]["rescheduling_run"]
    bits = (
        "bitwise identical"
        if head["bitwise_identical"]
        else "MISMATCH"
    )
    lines.append(
        f"  replica re-scheduling run: {resched['events']} format "
        f"flip(s); all answers {bits}"
    )
    zc = payload["zero_copy"]
    lines.append(
        f"zero-copy: hot bytes/request spread {zc['bytes_ratio']:.2f}x "
        f"over a {zc['nnz_span']:.1f}x nnz span "
        f"(criterion <= {zc['criterion']:.1f}x) "
        f"[{'PASS' if zc['pass'] else 'FAIL'}]"
    )
    for p in zc["points"]:
        lines.append(
            f"  {p['label']:<6} nnz={p['nnz']:<6} shm={p['shared_bytes']:>8} B "
            f"hot {p['hot_bytes_per_request']:.0f} B/req"
        )
    ov = payload["overload"]
    lines.append(
        f"overload: {ov['rejected']}/{ov['offered']} rejected at door, "
        f"max in-flight {ov['max_inflight']}/{ov['capacity']}, admitted "
        f"p99 {ov['admitted_p99_ms']:.2f} ms "
        f"(bound {ov['p99_criterion_ms']:.0f} ms) "
        f"[{'PASS' if ov['pass'] else 'FAIL'}]"
    )
    return "\n".join(lines)
