"""Regenerate Table VII (and the data behind Figs. 5-6).

Eight methods:

1-5.  The five platforms running the untuned Caffe defaults
      (B=100, eta=0.001, mu=0.90).
6.    DGX1 — DGX with tuned batch size (eta, mu still default).
7.    DGX2 — DGX with tuned batch size + learning rate.
8.    DGX3 — DGX with tuned batch size + learning rate + momentum.

Each row reports B, eta, mu, iterations, epochs, seconds, platform
price, speedup over the slowest method, and price-per-speedup — the
exact columns of Table VII.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.hardware.dnn_perf import DNNPerfModel
from repro.hardware.pricing import PricePoint, price_per_speedup_table
from repro.hardware.specs import DNN_MACHINES, MachineSpec
from repro.tuning.convergence import ConvergenceModel
from repro.tuning.search import (
    BATCH_SPACE,
    LR_SPACE,
    MOMENTUM_SPACE,
    Candidate,
    GridSearch,
    ModelObjective,
)

#: Caffe cifar10_full defaults (the untuned rows).
DEFAULTS = Candidate(batch_size=100, lr=0.001, momentum=0.90)


@dataclass(frozen=True)
class Table7Row:
    """One method row of Table VII."""

    method: str
    machine: str
    batch_size: int
    lr: float
    momentum: float
    iterations: int
    epochs: float
    seconds: float
    price_usd: float
    speedup: float = 1.0
    price_per_speedup: float = 0.0


def _row(
    method: str,
    machine: MachineSpec,
    cand: Candidate,
    model: ConvergenceModel,
) -> Table7Row:
    point = model.point(cand.batch_size, cand.lr, cand.momentum)
    if not point.converges:
        raise ValueError(f"{method}: candidate diverges")
    seconds = DNNPerfModel(machine).training_time(
        point.iterations, cand.batch_size
    )
    return Table7Row(
        method=method,
        machine=machine.name,
        batch_size=cand.batch_size,
        lr=cand.lr,
        momentum=cand.momentum,
        iterations=point.iterations,
        epochs=point.epochs,
        seconds=seconds,
        price_usd=machine.price_usd,
    )


def reproduce_table7(
    *, convergence: Optional[ConvergenceModel] = None
) -> List[Table7Row]:
    """Compute all eight rows; speedups are relative to the slowest.

    The DGX1/2/3 rows come from the *staged* grid search (the paper's
    own procedure), truncated after one / two / three stages.
    """
    model = convergence or ConvergenceModel()
    dgx = DNN_MACHINES["dgx"]
    objective = ModelObjective(dgx, convergence=model)
    rows: List[Table7Row] = []

    # Untuned rows on every platform.
    names = {
        "cpu8": "Intel Caffe on 8-core CPUs",
        "knl": "Intel Caffe on KNL",
        "haswell": "Intel Caffe on Haswell",
        "p100": "Nvidia Caffe on Tesla P100 GPU",
        "dgx": "Nvidia Caffe on DGX station",
    }
    for key, label in names.items():
        rows.append(_row(label, DNN_MACHINES[key], DEFAULTS, model))

    # Stage 1: tune B.
    search = GridSearch(objective)
    stage1 = [
        Candidate(b, DEFAULTS.lr, DEFAULTS.momentum) for b in BATCH_SPACE
    ]
    best_b = min(stage1, key=objective)
    rows.append(_row("Tune B on DGX station", dgx, best_b, model))

    # Stage 2: tune eta at the chosen B.
    stage2 = [
        Candidate(best_b.batch_size, lr, DEFAULTS.momentum) for lr in LR_SPACE
    ]
    best_lr = min(stage2, key=objective)
    rows.append(_row("Tune eta on DGX station", dgx, best_lr, model))

    # Stage 3: tune mu at the chosen (B, eta).
    stage3 = [
        Candidate(best_lr.batch_size, best_lr.lr, mu) for mu in MOMENTUM_SPACE
    ]
    best_mu = min(stage3, key=objective)
    rows.append(_row("Tune mu on DGX station", dgx, best_mu, model))

    # Speedups relative to the slowest method (paper: the 8-core CPU).
    slowest = max(r.seconds for r in rows)
    return [
        Table7Row(
            method=r.method,
            machine=r.machine,
            batch_size=r.batch_size,
            lr=r.lr,
            momentum=r.momentum,
            iterations=r.iterations,
            epochs=r.epochs,
            seconds=r.seconds,
            price_usd=r.price_usd,
            speedup=slowest / r.seconds,
            price_per_speedup=r.price_usd / (slowest / r.seconds),
        )
        for r in rows
    ]


def as_price_points(rows: List[Table7Row]) -> List[PricePoint]:
    """Convert to the Fig. 6 price-per-speedup benchmark rows."""
    times: Dict[str, float] = {r.method: r.seconds for r in rows}
    prices: Dict[str, float] = {r.method: r.price_usd for r in rows}
    return price_per_speedup_table(times, prices)


def format_rows(rows: List[Table7Row]) -> str:
    """Aligned text rendering of the table (benchmark output)."""
    header = (
        f"{'Method':32s} {'B':>5s} {'eta':>6s} {'mu':>5s} "
        f"{'Iters':>7s} {'Epochs':>7s} {'Time(s)':>9s} "
        f"{'Price($)':>9s} {'Speedup':>8s} {'$/Spd':>7s}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.method:32s} {r.batch_size:5d} {r.lr:6.3f} {r.momentum:5.2f} "
            f"{r.iterations:7d} {r.epochs:7.0f} {r.seconds:9.1f} "
            f"{r.price_usd:9,.0f} {r.speedup:7.1f}x {r.price_per_speedup:7,.0f}"
        )
    return "\n".join(lines)
