"""Grid search over the paper's tuning spaces.

Section IV's three spaces, verbatim:

- batch size: {64, 100, 128, 256, 512, 1024, 2048, 4096, 8192}
- learning rate: {0.001, 0.002, ..., 0.016}
- momentum: {0.90, 0.91, ..., 0.99}

The objective is pluggable: :class:`ModelObjective` evaluates the
convergence model x a hardware iteration-time model (microseconds per
candidate — how Table VII / Figs. 5-6 are regenerated), and
:class:`MeasuredObjective` actually trains a network per candidate on
the synthetic CIFAR-10 (seconds per candidate — the ground-truth mode
used by the examples and slow tests).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.hardware.dnn_perf import DNNPerfModel
from repro.hardware.specs import MachineSpec
from repro.tuning.convergence import ConvergenceModel, TuningPoint

#: The paper's tuning spaces (Section IV-C/D/E).
BATCH_SPACE: Tuple[int, ...] = (64, 100, 128, 256, 512, 1024, 2048, 4096, 8192)
LR_SPACE: Tuple[float, ...] = tuple(round(0.001 * k, 3) for k in range(1, 17))
MOMENTUM_SPACE: Tuple[float, ...] = tuple(
    round(0.90 + 0.01 * k, 2) for k in range(10)
)


@dataclass(frozen=True)
class Candidate:
    batch_size: int
    lr: float
    momentum: float


@dataclass
class SearchResult:
    """Best candidate plus the whole evaluated grid (for ablations)."""

    best: Candidate
    best_seconds: float
    best_point: Optional[TuningPoint]
    evaluated: List[Tuple[Candidate, float]] = field(default_factory=list)

    @property
    def n_evaluated(self) -> int:
        return len(self.evaluated)


class Objective(abc.ABC):
    """Maps a candidate to predicted/measured seconds-to-target.

    Returns ``math.inf`` for candidates that do not converge.
    """

    @abc.abstractmethod
    def __call__(self, c: Candidate) -> float:
        ...

    def point(self, c: Candidate) -> Optional[TuningPoint]:
        """Optional convergence detail for reporting."""
        return None


class ModelObjective(Objective):
    """Convergence model x machine iteration-time model."""

    def __init__(
        self,
        machine: MachineSpec,
        *,
        convergence: Optional[ConvergenceModel] = None,
    ) -> None:
        self.perf = DNNPerfModel(machine)
        self.convergence = convergence or ConvergenceModel()

    def __call__(self, c: Candidate) -> float:
        p = self.convergence.point(c.batch_size, c.lr, c.momentum)
        if not p.converges:
            return math.inf
        return self.perf.training_time(p.iterations, c.batch_size)

    def point(self, c: Candidate) -> Optional[TuningPoint]:
        return self.convergence.point(c.batch_size, c.lr, c.momentum)


class MeasuredObjective(Objective):
    """Ground truth: train a real network per candidate.

    Parameters
    ----------
    make_net:
        Factory producing a fresh (identically initialised) network.
    data:
        The dataset (:class:`repro.data.cifar.ImageDataset`).
    target_accuracy / max_epochs:
        Stopping rule per candidate; a candidate that never reaches the
        target within the cap scores ``inf``.
    """

    def __init__(
        self,
        make_net: Callable[[], object],
        data,
        *,
        target_accuracy: float = 0.8,
        max_epochs: int = 10,
        seed: int = 0,
    ) -> None:
        self.make_net = make_net
        self.data = data
        self.target_accuracy = target_accuracy
        self.max_epochs = max_epochs
        self.seed = seed

    def __call__(self, c: Candidate) -> float:
        from repro.dnn.trainer import Trainer  # local: avoid cycle

        net = self.make_net()
        trainer = Trainer(
            net,
            batch_size=c.batch_size,
            lr=c.lr,
            momentum=c.momentum,
            target_accuracy=self.target_accuracy,
            max_epochs=self.max_epochs,
            seed=self.seed,
        )
        run = trainer.fit(self.data)
        if not run.reached_target:
            return math.inf
        return float(run.seconds_to_target)


class GridSearch:
    """Exhaustive (or staged) search over the three spaces.

    ``staged=True`` reproduces the paper's procedure exactly: tune B
    first (at reference eta, mu), then eta at the chosen B, then mu at
    the chosen (B, eta) — three 1-D sweeps instead of the full product,
    which is both what Section IV describes and the reason Table VII
    has the DGX1 -> DGX2 -> DGX3 progression.
    """

    def __init__(
        self,
        objective: Objective,
        *,
        batch_space: Sequence[int] = BATCH_SPACE,
        lr_space: Sequence[float] = LR_SPACE,
        momentum_space: Sequence[float] = MOMENTUM_SPACE,
    ) -> None:
        if not batch_space or not lr_space or not momentum_space:
            raise ValueError("empty tuning space")
        self.objective = objective
        self.batch_space = tuple(batch_space)
        self.lr_space = tuple(lr_space)
        self.momentum_space = tuple(momentum_space)

    def _argmin(
        self, candidates: Sequence[Candidate]
    ) -> Tuple[Candidate, float, List[Tuple[Candidate, float]]]:
        evaluated = [(c, self.objective(c)) for c in candidates]
        best, best_s = min(evaluated, key=lambda cs: cs[1])
        return best, best_s, evaluated

    def staged(
        self, *, ref_lr: float = 0.001, ref_momentum: float = 0.90
    ) -> SearchResult:
        """The paper's three-stage procedure (B, then eta, then mu)."""
        all_evaluated: List[Tuple[Candidate, float]] = []

        stage1 = [
            Candidate(b, ref_lr, ref_momentum) for b in self.batch_space
        ]
        best_b, _, ev = self._argmin(stage1)
        all_evaluated += ev

        stage2 = [
            Candidate(best_b.batch_size, lr, ref_momentum)
            for lr in self.lr_space
        ]
        best_lr, _, ev = self._argmin(stage2)
        all_evaluated += ev

        stage3 = [
            Candidate(best_lr.batch_size, best_lr.lr, mu)
            for mu in self.momentum_space
        ]
        best, best_s, ev = self._argmin(stage3)
        all_evaluated += ev

        return SearchResult(
            best=best,
            best_seconds=best_s,
            best_point=self.objective.point(best),
            evaluated=all_evaluated,
        )

    def exhaustive(self) -> SearchResult:
        """Full Cartesian product (ablation: is staged search enough?)."""
        candidates = [
            Candidate(b, lr, mu)
            for b in self.batch_space
            for lr in self.lr_space
            for mu in self.momentum_space
        ]
        best, best_s, evaluated = self._argmin(candidates)
        return SearchResult(
            best=best,
            best_seconds=best_s,
            best_point=self.objective.point(best),
            evaluated=evaluated,
        )
