"""Epochs-to-target-accuracy model, calibrated to Table VII.

The paper measures four (B, eta, mu) -> epochs anchor points on the DGX
station (target: 0.8 CIFAR-10 test accuracy, 50,000 training samples):

=====  ======  =====  =======  ==========
B      eta     mu     epochs   iterations
=====  ======  =====  =======  ==========
100    0.001   0.90   120      60,000
512    0.001   0.90   307      30,000
512    0.003   0.90   123      12,000
512    0.003   0.95   72       7,000
=====  ======  =====  =======  ==========

The model factorises ``epochs(B, eta, mu) = E0 * batch(B) *
lr_penalty(eta / eta_opt(B)) * momentum(mu)`` with:

- ``eta_opt(B) = eta0 * (B / B0)^0.672`` — the optimal learning rate
  grows with batch size (the paper finds 0.003 optimal at B=512, i.e.
  3x at 5.12x the batch; close to the later-famous linear scaling
  rule);
- ``batch(B)``: a tiny residual exponent below ``B_crit`` (once eta is
  rescaled, moderate batches barely cost extra epochs) plus a strong
  sharp-minima penalty ``(B / B_crit)^0.6`` above ``B_crit = 512`` —
  the Keskar et al. effect the paper cites as the reason "using large
  batch may slow down the algorithm's convergence rate";
- ``lr_penalty(r) = 1 + c * (1 - r)^0.8`` below optimal (saturating:
  steep for moderate under-shoots, anchored to 2.496 at r = 1/3),
  ``r^1.2`` above optimal, and divergence beyond ``4x`` optimal;
- ``momentum(mu)``: log-parabola with its minimum near mu = 0.955 and
  steep growth toward mu -> 1 (short-term memory too long).

All four anchors reproduce exactly (tests pin them); everything else is
interpolation in the same functional family.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

#: CIFAR-10 training-set size (epochs x n_train / B = iterations).
CIFAR10_N_TRAIN: int = 50_000


@dataclass(frozen=True)
class TuningPoint:
    """One hyper-parameter setting and its modelled convergence."""

    batch_size: int
    lr: float
    momentum: float
    epochs: float
    iterations: int
    converges: bool = True


class ConvergenceModel:
    """Analytic epochs-to-target model (see module docstring).

    Parameters
    ----------
    base_epochs:
        E0: epochs at the reference point (B0, eta0, mu0).
    ref_batch / ref_lr / ref_momentum:
        The reference setting (Caffe's cifar10_full defaults: 100,
        0.001, 0.90).
    n_train:
        Training-set size used to convert epochs to iterations.
    """

    #: eta_opt exponent: ln(0.003/0.001) / ln(512/100).
    LR_SCALING_EXP: float = math.log(3.0) / math.log(5.12)
    #: residual batch exponent below B_crit: ln(123/120) / ln(5.12).
    BATCH_EXP_SMALL: float = math.log(123.0 / 120.0) / math.log(5.12)
    #: sharp-minima exponent above B_crit.
    BATCH_EXP_LARGE: float = 0.6
    BATCH_CRIT: int = 512
    #: under-shooting lr penalty h(r) = 1 + c (1-r)^0.8, anchored to
    #: h(1/3) = 307/123.
    LR_PENALTY_SHAPE: float = 0.8
    LR_PENALTY_COEF: float = (307.0 / 123.0 - 1.0) / (2.0 / 3.0) ** 0.8
    LR_PENALTY_HIGH: float = 1.2
    LR_DIVERGENCE_RATIO: float = 4.0
    #: momentum log-parabola: minimum position and curvature fitted to
    #: g(0.90) = 1 and g(0.95) = 72/123.
    MOMENTUM_OPT_X: float = 3.1  # x = ln(1 / (1 - mu)); mu* ~ 0.955
    MOMENTUM_CURVATURE: float = 0.857
    MOMENTUM_MIN: float = (72.0 / 123.0) / math.exp(
        0.857 * (math.log(1.0 / 0.05) - 3.1) ** 2
    )

    def __init__(
        self,
        *,
        base_epochs: float = 120.0,
        ref_batch: int = 100,
        ref_lr: float = 0.001,
        ref_momentum: float = 0.90,
        n_train: int = CIFAR10_N_TRAIN,
    ) -> None:
        if base_epochs <= 0 or ref_batch < 1 or ref_lr <= 0:
            raise ValueError("invalid reference point")
        self.base_epochs = base_epochs
        self.ref_batch = ref_batch
        self.ref_lr = ref_lr
        self.ref_momentum = ref_momentum
        self.n_train = n_train

    # -- factors ---------------------------------------------------------
    def lr_opt(self, batch_size: int) -> float:
        """Optimal learning rate at batch size B."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return self.ref_lr * (batch_size / self.ref_batch) ** self.LR_SCALING_EXP

    def batch_factor(self, batch_size: int) -> float:
        ratio = batch_size / self.ref_batch
        f = ratio**self.BATCH_EXP_SMALL
        if batch_size > self.BATCH_CRIT:
            f *= (batch_size / self.BATCH_CRIT) ** self.BATCH_EXP_LARGE
        return f

    def lr_penalty(self, lr: float, batch_size: int) -> Optional[float]:
        """Epoch multiplier for a (possibly off-optimal) learning rate;
        ``None`` means divergence."""
        if lr <= 0:
            raise ValueError("lr must be positive")
        r = lr / self.lr_opt(batch_size)
        if r > self.LR_DIVERGENCE_RATIO:
            return None
        if r < 1.0:
            return 1.0 + self.LR_PENALTY_COEF * (1.0 - r) ** self.LR_PENALTY_SHAPE
        return r**self.LR_PENALTY_HIGH

    def momentum_factor(self, momentum: float) -> Optional[float]:
        """Epoch multiplier for momentum mu; ``None`` for mu >= 1."""
        if momentum >= 1.0 or momentum < 0.0:
            return None
        if momentum == 0.0:
            # No momentum: markedly slower on this loss landscape;
            # extrapolate the parabola.
            momentum = 1e-9
        x = math.log(1.0 / (1.0 - momentum))
        g = self.MOMENTUM_MIN * math.exp(
            self.MOMENTUM_CURVATURE * (x - self.MOMENTUM_OPT_X) ** 2
        )
        # Normalise so the reference momentum has factor 1.
        x0 = math.log(1.0 / (1.0 - self.ref_momentum))
        g0 = self.MOMENTUM_MIN * math.exp(
            self.MOMENTUM_CURVATURE * (x0 - self.MOMENTUM_OPT_X) ** 2
        )
        return g / g0

    # -- main API ----------------------------------------------------------
    def epochs_to_target(
        self, batch_size: int, lr: float, momentum: float
    ) -> Optional[float]:
        """Modelled epochs to reach 0.8 accuracy; ``None`` = diverges."""
        lp = self.lr_penalty(lr, batch_size)
        mf = self.momentum_factor(momentum)
        if lp is None or mf is None:
            return None
        return self.base_epochs * self.batch_factor(batch_size) * lp * mf

    def point(
        self, batch_size: int, lr: float, momentum: float
    ) -> TuningPoint:
        """Full record, with epochs converted to iterations."""
        epochs = self.epochs_to_target(batch_size, lr, momentum)
        if epochs is None:
            return TuningPoint(
                batch_size=batch_size,
                lr=lr,
                momentum=momentum,
                epochs=math.inf,
                iterations=0,
                converges=False,
            )
        iterations = int(round(epochs * self.n_train / batch_size))
        return TuningPoint(
            batch_size=batch_size,
            lr=lr,
            momentum=momentum,
            epochs=epochs,
            iterations=iterations,
            converges=True,
        )
