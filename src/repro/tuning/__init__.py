"""DNN auto-tuning: batch size, learning rate, momentum (Section IV).

Two complementary layers:

- :mod:`repro.tuning.convergence` — an analytic model of *epochs to the
  0.8 accuracy target* as a function of (B, eta, mu), exactly
  calibrated to the four measured anchor rows of Table VII.  It encodes
  the three effects the paper tunes against: the large-batch sharp-
  minima penalty (Keskar et al.), the batch-dependent optimal learning
  rate, and the momentum sweet spot near 0.95.
- :mod:`repro.tuning.search` — grid search over the paper's tuning
  spaces, evaluating either the convergence model x a hardware
  iteration-time model (fast, used for Table VII / Figs. 5-6) or real
  measured training runs (:class:`MeasuredObjective`, used by the
  examples on the synthetic CIFAR-10).
- :mod:`repro.tuning.table7` — the pipeline that regenerates every row
  of Table VII: the five-platform baseline plus the DGX1 (tune B),
  DGX2 (tune B+eta) and DGX3 (tune B+eta+mu) incremental-tuning rows.
"""

from repro.tuning.convergence import (
    CIFAR10_N_TRAIN,
    ConvergenceModel,
    TuningPoint,
)
from repro.tuning.search import (
    BATCH_SPACE,
    LR_SPACE,
    MOMENTUM_SPACE,
    GridSearch,
    MeasuredObjective,
    ModelObjective,
    SearchResult,
)
from repro.tuning.table7 import Table7Row, reproduce_table7

__all__ = [
    "ConvergenceModel",
    "TuningPoint",
    "CIFAR10_N_TRAIN",
    "GridSearch",
    "SearchResult",
    "ModelObjective",
    "MeasuredObjective",
    "BATCH_SPACE",
    "LR_SPACE",
    "MOMENTUM_SPACE",
    "Table7Row",
    "reproduce_table7",
]
