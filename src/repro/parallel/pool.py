"""Thread-pool execution over row blocks.

A deliberately small wrapper around :class:`concurrent.futures.
ThreadPoolExecutor`: the format kernels hand it closures over disjoint
row blocks writing into disjoint output slices, which is data-race free
by construction (the same discipline the paper's OpenMP loops rely on).
"""

from __future__ import annotations

import atexit
import os
import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.analysis.race import make_lock, track_shared

T = TypeVar("T")
R = TypeVar("R")


def _worker_cap() -> int:
    """Upper bound on configured workers: generous, but finite.

    Oversubscribing threads is sometimes useful (IO overlap), so allow
    several times the core count — but an absurd request (``10**9``)
    would exhaust memory on thread stacks long before doing any work.
    """
    return max(64, 8 * (os.cpu_count() or 1))


def default_workers() -> int:
    """Worker count: ``REPRO_NUM_THREADS`` env, tuned, else CPU count.

    Precedence: the environment variable always wins (an operator's
    explicit override); next a warm machine-wide entry in the persisted
    tuning cache (``repro tune`` measured the pool width that actually
    runs fastest here — often below the core count for NumPy kernels
    that saturate memory bandwidth); finally the CPU count.

    Unparsable values warn and fall back to the CPU count; values
    outside ``[1, cap]`` warn and are clamped rather than silently
    ignored, so a typo in a job script is visible in the logs instead
    of quietly changing the parallelism.
    """
    fallback = max(1, os.cpu_count() or 1)
    env = os.environ.get("REPRO_NUM_THREADS")
    if env is None or not env.strip():
        from repro.tune.cache import tuned_value

        tuned = tuned_value("workers", "workers")
        if tuned is not None:
            return max(1, min(int(tuned), _worker_cap()))
        return fallback
    try:
        n = int(env.strip())
    except ValueError:
        warnings.warn(
            f"REPRO_NUM_THREADS={env!r} is not an integer; "
            f"using {fallback} workers",
            RuntimeWarning,
            stacklevel=2,
        )
        return fallback
    cap = _worker_cap()
    if n < 1:
        warnings.warn(
            f"REPRO_NUM_THREADS={n} is below 1; clamping to 1 worker",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1
    if n > cap:
        warnings.warn(
            f"REPRO_NUM_THREADS={n} exceeds the sanity cap {cap}; "
            f"clamping to {cap} workers",
            RuntimeWarning,
            stacklevel=2,
        )
        return cap
    return n


class WorkerPool:
    """Reusable thread pool with a serial fast path.

    ``n_workers=1`` bypasses the executor entirely — important because
    the autotuner probes tiny matrices where pool dispatch overhead would
    drown the signal it is trying to measure.
    """

    def __init__(self, n_workers: Optional[int] = None) -> None:
        self.n_workers = n_workers if n_workers is not None else default_workers()
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self._executor: Optional[ThreadPoolExecutor] = None
        self._lock = make_lock("parallel.pool")
        track_shared(self, ("_executor",))

    def _ensure(self) -> ThreadPoolExecutor:
        # Check-then-act under the lock: two threads racing first use
        # used to each construct a ThreadPoolExecutor, leaking one with
        # its worker threads (the RDL012 pattern).
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.n_workers
                )
            return self._executor

    @property
    def executor_active(self) -> bool:
        """Whether a ThreadPoolExecutor has actually been constructed.

        The serial fast path (``n_workers == 1`` or a single work item)
        never constructs one; the row-block kernels assert this so a
        one-block partition costs zero threading overhead.
        """
        with self._lock:
            return self._executor is not None

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        # Serial fast path: one worker or one item never spins up an
        # executor — the closure runs inline on the calling thread.
        if self.n_workers == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        executor = self._ensure()
        return list(executor.map(fn, items))

    def run(self, thunks: Sequence[Callable[[], R]]) -> List[R]:
        """Execute zero-argument closures, returning results in order."""
        return self.map(lambda thunk: thunk(), thunks)

    def shutdown(self) -> None:
        """Join and drop the executor; idempotent and thread-safe.

        Safe to call any number of times (including concurrently, or
        again after further use re-created the executor), so the atexit
        hook and explicit test teardowns can both call it.
        """
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()


_shared_pool: Optional[WorkerPool] = None
_shared_pool_lock = make_lock("parallel.shared_pool")


def shared_pool() -> WorkerPool:
    """Lazily constructed process-wide pool used by format kernels."""
    global _shared_pool
    with _shared_pool_lock:
        if _shared_pool is None:
            _shared_pool = WorkerPool()
        return _shared_pool


@atexit.register
def _shutdown_shared_pool() -> None:
    """Join the shared pool's threads at interpreter exit.

    Keeps traced / race-sanitized runs from leaking executor threads
    past the point where their shutdown can still be observed; a later
    ``shared_pool()`` call would lazily re-create the executor, so this
    is safe even if something schedules work after us.
    """
    with _shared_pool_lock:
        pool = _shared_pool
    if pool is not None:
        pool.shutdown()


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    n_workers: Optional[int] = None,
) -> List[R]:
    """Map ``fn`` over ``items`` with a (possibly shared) thread pool."""
    if n_workers is None:
        return shared_pool().map(fn, items)
    with WorkerPool(n_workers) as pool:
        return pool.map(fn, items)


def parallel_reduce(
    fn: Callable[[T], R],
    items: Sequence[T],
    combine: Callable[[R, R], R],
    *,
    n_workers: Optional[int] = None,
) -> R:
    """Map then left-fold; the Python analogue of an MPI ``Reduce``.

    Raises ``ValueError`` on empty input (no identity element is asked
    for, matching ``functools.reduce`` semantics).
    """
    results: Iterable[R] = parallel_map(fn, items, n_workers=n_workers)
    it = iter(results)
    try:
        acc = next(it)
    except StopIteration:
        raise ValueError("parallel_reduce of empty sequence") from None
    for r in it:
        acc = combine(acc, r)
    return acc
