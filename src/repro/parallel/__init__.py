"""Shared-memory parallel substrate.

The paper parallelises the SMO bottleneck (the two SMSVs and the f-vector
update, Eqs. (3)-(4)) with OpenMP across row blocks.  The Python-level
equivalent here is a chunked, row-partitioned thread pool: NumPy releases
the GIL inside large ufunc and BLAS calls, so threads over disjoint row
blocks genuinely overlap for the memory-bound kernels this library runs.

The module intentionally mirrors the ``mpi4py``-style split: a high-level
convenience API (:func:`parallel_map`) plus buffer-oriented primitives
(:func:`row_blocks`, :class:`WorkerPool`) for kernels that want to manage
their own output arrays.
"""

from repro.parallel.pool import WorkerPool, parallel_map, parallel_reduce
from repro.parallel.partition import balanced_chunks, row_blocks
from repro.parallel.kernels import (
    parallel_matmat,
    parallel_matvec,
    parallel_smsv,
    parallel_smsv_multi,
)

__all__ = [
    "WorkerPool",
    "parallel_map",
    "parallel_reduce",
    "row_blocks",
    "balanced_chunks",
    "parallel_matvec",
    "parallel_smsv",
    "parallel_matmat",
    "parallel_smsv_multi",
]
