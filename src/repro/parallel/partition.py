"""Work partitioning helpers.

Partitioning quality matters for the same reason ``vdim`` matters in the
paper: unbalanced chunks leave lanes (or threads) idle.  ``row_blocks``
does contiguous equal-count splits (right for DEN/ELL/DIA where work per
row is uniform); ``balanced_chunks`` does weighted splits (right for
CSR/COO where work per row is ``dim_i``); ``greedy_bins`` does
*non-contiguous* weighted assignment (right for placing whole models
onto fleet shards, where nothing forces neighbours together).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.formats.base import VALUE_DTYPE

#: Smallest row block worth a pool dispatch when nothing tuned it.
DEFAULT_MIN_ROWS_PER_BLOCK = 256


def default_min_rows_per_block() -> int:
    """Partition granularity: tuned machine-wide value, else 256.

    The crossover where pool dispatch overhead amortises is a property
    of the machine (thread wake latency vs per-row kernel cost), so
    ``repro tune`` stores it under the machine-wide bucket and every
    parallel kernel that is not given an explicit granularity resolves
    through here.
    """
    from repro.tune.cache import tuned_value

    tuned = tuned_value("row_blocks", "min_rows_per_block")
    if tuned is not None:
        return max(1, int(tuned))
    return DEFAULT_MIN_ROWS_PER_BLOCK


def row_blocks(n_rows: int, n_blocks: int) -> List[Tuple[int, int]]:
    """Split ``range(n_rows)`` into ``n_blocks`` contiguous blocks.

    Blocks differ in size by at most one row.  Returns ``(start, stop)``
    half-open pairs; empty blocks are omitted so callers can zip the
    result straight into a pool.

    >>> row_blocks(10, 3)
    [(0, 4), (4, 7), (7, 10)]
    """
    if n_rows < 0:
        raise ValueError("n_rows must be non-negative")
    if n_blocks < 1:
        raise ValueError("n_blocks must be >= 1")
    base, extra = divmod(n_rows, n_blocks)
    blocks: List[Tuple[int, int]] = []
    start = 0
    for b in range(n_blocks):
        size = base + (1 if b < extra else 0)
        if size == 0:
            continue
        blocks.append((start, start + size))
        start += size
    return blocks


def balanced_chunks(
    weights: Sequence[float] | np.ndarray, n_blocks: int
) -> List[Tuple[int, int]]:
    """Split indices into contiguous blocks of roughly equal total weight.

    A greedy prefix-sum partitioner: cheap (O(n)) and within a factor
    ~(1 + max_weight/ideal) of the optimum, which is all a thread pool
    needs.  Used to split CSR row ranges by ``dim_i`` so one dense row
    cannot serialise the whole SMSV.

    >>> balanced_chunks([1, 1, 1, 9], 2)
    [(0, 3), (3, 4)]
    """
    w = np.asarray(weights, dtype=VALUE_DTYPE)
    if w.ndim != 1:
        raise ValueError("weights must be one-dimensional")
    if n_blocks < 1:
        raise ValueError("n_blocks must be >= 1")
    n = w.shape[0]
    if n == 0:
        return []
    total = float(w.sum())
    if total <= 0.0:
        return row_blocks(n, n_blocks)
    ideal = total / n_blocks
    blocks: List[Tuple[int, int]] = []
    start = 0
    acc = 0.0
    for i in range(n):
        acc_new = acc + float(w[i])
        if len(blocks) < n_blocks - 1 and acc_new >= ideal:
            # Close either before or after item i, whichever lands the
            # block total nearer the ideal (a heavy item should start
            # its own block rather than bloat the current one).
            overshoot = acc_new - ideal
            undershoot = ideal - acc
            if overshoot > undershoot and i > start:
                blocks.append((start, i))
                start = i
                acc = float(w[i])
            else:
                blocks.append((start, i + 1))
                start = i + 1
                acc = 0.0
        else:
            acc = acc_new
    if start < n:
        blocks.append((start, n))
    return blocks


def greedy_bins(
    weights: Sequence[float] | np.ndarray, n_bins: int
) -> List[int]:
    """Assign each item to one of ``n_bins`` bins, balancing totals.

    Longest-processing-time greedy: items are placed heaviest-first
    into the currently lightest bin (ties to the lowest bin id, so the
    assignment is deterministic).  Unlike :func:`balanced_chunks` the
    assignment is not contiguous — this is the placement primitive for
    mapping served models onto fleet shards by expected load, where
    the classic 4/3-approximation bound is plenty.

    Returns one bin id per item, in the items' original order.

    >>> greedy_bins([5, 4, 3, 3, 3], 2)
    [0, 1, 1, 0, 1]
    """
    w = np.asarray(weights, dtype=VALUE_DTYPE)
    if w.ndim != 1:
        raise ValueError("weights must be one-dimensional")
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    order = sorted(range(w.shape[0]), key=lambda i: (-float(w[i]), i))
    totals = [0.0] * n_bins
    assignment = [0] * w.shape[0]
    for i in order:
        b = min(range(n_bins), key=lambda j: (totals[j], j))
        assignment[i] = b
        totals[b] += float(w[i])
    return assignment
