"""Parallel matvec / SMSV over row blocks.

The paper parallelises the SMO bottleneck with OpenMP across rows.
These helpers do the shared-memory Python equivalent: partition the
output rows, run each block's kernel on a pool thread (NumPy's ufuncs
and BLAS release the GIL for large blocks), write into disjoint output
slices.

Partitioning is nnz-balanced, not row-count-balanced: every format
with per-row work variation (CSR by ``dim_i``, SELL by its padded
slice width) partitions with :func:`~repro.parallel.partition.
balanced_chunks` over its per-row work weights, so one dense row —
or one wide slice — cannot serialise the whole product on a single
hot block.  That is the same load-balancing concern behind the
paper's ``vdim`` parameter.  Uniform-work formats (DEN, ELL) reduce
to equal-count blocks, which *is* their nnz-balanced partition.  The
planned per-block work is reported to an :class:`~repro.perf.
counters.OpCounter` (``parallel_blocks`` / ``parallel_work_total`` /
``parallel_work_max``) so tests and benches can assert balance.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.analysis.race import check_disjoint_blocks, get_race_sanitizer
from repro.formats.base import VALUE_DTYPE, MatrixFormat, SparseVector
from repro.formats.csr import CSRMatrix
from repro.formats.dense import DenseMatrix
from repro.formats.ell import ELLMatrix
from repro.formats.sell import SELLMatrix
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.parallel.partition import (
    balanced_chunks,
    default_min_rows_per_block,
    row_blocks,
)
from repro.parallel.pool import WorkerPool, default_workers, shared_pool
from repro.perf.counters import OpCounter

#: Formats with a contiguous row-sliced kernel path.
_SLICEABLE = (DenseMatrix, CSRMatrix, ELLMatrix, SELLMatrix)


def _work_weights(matrix: MatrixFormat) -> Optional[np.ndarray]:
    """Per-row work weights, or None when rows cost uniformly.

    CSR streams ``dim_i`` elements per row; SELL streams its padded
    per-row slice width (padding is real work); DEN and ELL pad every
    row to the same width, so equal row counts are already balanced.
    """
    if isinstance(matrix, CSRMatrix):
        return np.asarray(matrix.row_lengths, dtype=np.int64)
    if isinstance(matrix, SELLMatrix):
        return np.diff(matrix.row_starts)
    return None


def _blocks_for(
    matrix: MatrixFormat,
    n_blocks: int,
    counter: Optional[OpCounter] = None,
):
    weights = _work_weights(matrix)
    if weights is not None:
        blocks = balanced_chunks(weights, n_blocks)
    else:
        blocks = row_blocks(matrix.shape[0], n_blocks)
    if counter is not None:
        m = matrix.shape[0]
        if weights is None:
            weights = np.ones(m, dtype=np.int64)
        starts = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(weights, out=starts[1:])
        counter.add_parallel_blocks(
            int(starts[e] - starts[s]) for s, e in blocks
        )
    return blocks


def _plan_blocks(
    matrix: MatrixFormat,
    pool: Optional[WorkerPool],
    min_rows_per_block: Optional[int],
) -> int:
    """Row-block count for the partition, without touching the pool.

    Uses the pool's width when one was handed in, otherwise the
    configured default — so the single-block (serial) case is decided
    *before* any executor exists and never constructs one.  A ``None``
    granularity resolves through the tuning cache
    (:func:`~repro.parallel.partition.default_min_rows_per_block`).
    """
    if min_rows_per_block is None:
        min_rows_per_block = default_min_rows_per_block()
    workers = pool.n_workers if pool is not None else default_workers()
    return min(workers, max(1, matrix.shape[0] // min_rows_per_block))


def _run_blocks(
    pool: WorkerPool, work, blocks, op: str, matrix: MatrixFormat
) -> None:
    """Dispatch the block kernels, observing per-block wall time.

    Disabled tracing takes the bare ``pool.map`` path — no wrapper
    callable, no shards, no clock reads.  Under tracing, one span
    brackets the whole parallel region (contextvars do not propagate
    onto pool threads, so per-block *spans* would detach from the
    tree) and each block times itself into a lock-free
    :class:`~repro.obs.metrics.MetricsShard`, merged into the process
    registry in one locked pass per block — the block kernels
    themselves stay lock-free.
    """
    if get_race_sanitizer().enabled:
        # The block closures write raw NumPy slices the attribute
        # descriptors cannot see; their race freedom rests entirely on
        # the partition being disjoint, so check exactly that.
        check_disjoint_blocks(blocks, matrix.shape[0])
    tracer = get_tracer()
    if not tracer.enabled:
        pool.map(work, blocks)
        return
    registry = get_registry()
    shards = [registry.shard() for _ in blocks]
    clock = time.perf_counter

    def timed(ib):
        i, block = ib
        t0 = clock()
        work(block)
        shard = shards[i]
        shard.histogram(
            "repro_parallel.block_seconds",
            help="wall time of one row-block kernel",
        ).observe(clock() - t0)
        shard.counter(
            "repro_parallel.blocks", help="row blocks dispatched"
        ).inc()

    with tracer.span(op) as sp:
        if tracer.enabled:
            sp.set("fmt", matrix.name)
            sp.set("n_blocks", len(blocks))
            sp.set("m", matrix.shape[0])
        pool.map(timed, list(enumerate(blocks)))
    for shard in shards:
        registry.merge(shard)


def parallel_matvec(
    matrix: MatrixFormat,
    x: np.ndarray,
    *,
    pool: Optional[WorkerPool] = None,
    min_rows_per_block: Optional[int] = None,
    counter: Optional[OpCounter] = None,
) -> np.ndarray:
    """``y = A @ x`` with row blocks on pool threads.

    Supported formats: DEN, CSR, ELL, SELL (the row-sliceable
    layouts).  Falls back to the serial kernel when the matrix is too
    small for blocking to pay (``min_rows_per_block``) or the format
    has no row-sliced path (COO/DIA partition by elements/diagonals,
    not rows; permuted wrappers scatter outputs, so their row blocks
    are not contiguous in the original index space).

    The result is numerically identical to the serial kernel: every
    block computes the same contiguous slice the serial kernel would.
    ``counter`` receives the planned per-block work of the partition
    (``parallel_*`` fields); on the serial fallback it is forwarded to
    the format kernel instead.
    """
    x = np.asarray(x, dtype=VALUE_DTYPE)
    if x.shape != (matrix.shape[1],):
        raise ValueError(
            f"matvec expects x of shape ({matrix.shape[1]},), got {x.shape}"
        )
    m = matrix.shape[0]
    n_blocks = _plan_blocks(matrix, pool, min_rows_per_block)
    if n_blocks <= 1 or not isinstance(matrix, _SLICEABLE):
        # Serial path: never touches (or lazily constructs) a pool.
        return matrix.matvec(x, counter)
    pool = pool if pool is not None else shared_pool()

    y = np.empty(m, dtype=VALUE_DTYPE)
    blocks = _blocks_for(matrix, n_blocks, counter)

    if isinstance(matrix, DenseMatrix):

        def work(block):
            s, e = block
            y[s:e] = matrix.array[s:e] @ x

    elif isinstance(matrix, ELLMatrix):
        data, indices = matrix.data, matrix.indices

        def work(block):
            s, e = block
            if data.shape[1]:
                y[s:e] = np.einsum(
                    "ij,ij->i", data[s:e], x[indices[s:e]]
                )
            else:
                y[s:e] = 0.0

    elif isinstance(matrix, SELLMatrix):
        data, indices = matrix.data, matrix.indices
        flat_starts = matrix.row_starts
        valid, cstarts = matrix._valid, matrix._csr_starts

        def work(block):
            s, e = block
            lo, hi = int(flat_starts[s]), int(flat_starts[e])
            y[s:e] = 0.0
            if hi > lo:
                # Padded multiply over the block's flat slots, then
                # compress — the serial kernel's exact op sequence.
                prod = (data[lo:hi] * x[indices[lo:hi]])[valid[lo:hi]]
                clo = int(cstarts[s])
                starts = cstarts[s:e] - clo
                nonempty = starts < (cstarts[s + 1 : e + 1] - clo)
                if np.any(nonempty):
                    seg = np.add.reduceat(prod, starts[nonempty])
                    out = np.zeros(e - s)
                    out[nonempty] = seg
                    y[s:e] = out

    else:  # CSR
        vals, cols, ptr = matrix.values, matrix.col_idx, matrix.row_ptr

        def work(block):
            s, e = block
            lo, hi = int(ptr[s]), int(ptr[e])
            y[s:e] = 0.0
            if hi > lo:
                prod = vals[lo:hi] * x[cols[lo:hi]]
                starts = ptr[s:e] - lo
                nonempty = starts < (ptr[s + 1 : e + 1] - lo)
                if np.any(nonempty):
                    seg = np.add.reduceat(prod, starts[nonempty])
                    out = np.zeros(e - s)
                    out[nonempty] = seg
                    y[s:e] = out

    _run_blocks(pool, work, blocks, "parallel.matvec", matrix)
    return y


def parallel_smsv(
    matrix: MatrixFormat,
    v: SparseVector,
    *,
    pool: Optional[WorkerPool] = None,
    min_rows_per_block: Optional[int] = None,
    counter: Optional[OpCounter] = None,
) -> np.ndarray:
    """Parallel sparse-matrix x sparse-vector (scatter + blocked matvec)."""
    return parallel_matvec(
        matrix,
        v.to_dense(),
        pool=pool,
        min_rows_per_block=min_rows_per_block,
        counter=counter,
    )


def parallel_matmat(
    matrix: MatrixFormat,
    V: np.ndarray,
    *,
    pool: Optional[WorkerPool] = None,
    min_rows_per_block: Optional[int] = None,
    counter: Optional[OpCounter] = None,
) -> np.ndarray:
    """Row-block parallel SpMM: ``Y = A @ V`` for a dense ``(N, k)`` block.

    Each pool thread runs the serial :meth:`~repro.formats.base.
    MatrixFormat.matmat` column recipe on its contiguous row block —
    so every output element is computed by the exact serial op sequence
    (bit-for-bit identical to ``matrix.matmat(V)``), and blocks write
    disjoint ``y[s:e]`` slices.  Formats without a row-sliced path
    (COO/DIA/CSC/BCSR, permuted wrappers) and single-block partitions
    fall back to the serial kernel without constructing a pool.
    ``counter`` receives the partition's per-block work, or is
    forwarded to the serial kernel on the fallback path.
    """
    V = np.asarray(V, dtype=VALUE_DTYPE)
    if V.ndim != 2 or V.shape[0] != matrix.shape[1]:
        raise ValueError(
            f"matmat expects V of shape ({matrix.shape[1]}, k), "
            f"got {V.shape}"
        )
    m, k = matrix.shape[0], V.shape[1]
    n_blocks = _plan_blocks(matrix, pool, min_rows_per_block)
    if n_blocks <= 1 or k == 0 or not isinstance(matrix, _SLICEABLE):
        return matrix.matmat(V, counter)
    pool = pool if pool is not None else shared_pool()

    y = np.empty((m, k), dtype=VALUE_DTYPE)
    blocks = _blocks_for(matrix, n_blocks, counter)

    if isinstance(matrix, DenseMatrix):
        VF = np.asfortranarray(V)

        def work(block):
            s, e = block
            sub = matrix.array[s:e]
            for c in range(k):
                y[s:e, c] = sub @ VF[:, c]

    elif isinstance(matrix, ELLMatrix):
        data, indices = matrix.data, matrix.indices
        VT = np.ascontiguousarray(V.T)

        def work(block):
            s, e = block
            if data.shape[1]:
                gathered = VT.take(indices[s:e], axis=1)
                for c in range(k):
                    y[s:e, c] = np.einsum(
                        "ij,ij->i", data[s:e], gathered[c]
                    )
            else:
                y[s:e] = 0.0

    elif isinstance(matrix, SELLMatrix):
        data, indices = matrix.data, matrix.indices
        flat_starts = matrix.row_starts
        valid, cstarts = matrix._valid, matrix._csr_starts

        def work(block):
            s, e = block
            lo, hi = int(flat_starts[s]), int(flat_starts[e])
            y[s:e] = 0.0
            if hi > lo:
                bvalid = valid[lo:hi]
                clo = int(cstarts[s])
                nnz_blk = int(cstarts[e]) - clo
                starts = cstarts[s:e] - clo
                nonempty = starts < (cstarts[s + 1 : e + 1] - clo)
                prod = np.empty((k, nnz_blk), dtype=VALUE_DTYPE)
                for c in range(k):
                    np.compress(
                        bvalid,
                        data[lo:hi] * V[:, c].take(indices[lo:hi]),
                        out=prod[c],
                    )
                if np.any(nonempty):
                    segs = np.add.reduceat(prod, starts[nonempty], axis=1)
                    out = np.zeros((e - s, k), dtype=VALUE_DTYPE)
                    out[nonempty] = segs.T
                    y[s:e] = out

    else:  # CSR
        vals, cols, ptr = matrix.values, matrix.col_idx, matrix.row_ptr

        def work(block):
            s, e = block
            lo, hi = int(ptr[s]), int(ptr[e])
            y[s:e] = 0.0
            if hi > lo:
                starts = ptr[s:e] - lo
                nonempty = starts < (ptr[s + 1 : e + 1] - lo)
                prod = np.empty((k, hi - lo), dtype=VALUE_DTYPE)
                for c in range(k):
                    np.multiply(
                        vals[lo:hi], V[:, c].take(cols[lo:hi]), out=prod[c]
                    )
                if np.any(nonempty):
                    segs = np.add.reduceat(prod, starts[nonempty], axis=1)
                    out = np.zeros((e - s, k), dtype=VALUE_DTYPE)
                    out[nonempty] = segs.T
                    y[s:e] = out

    _run_blocks(pool, work, blocks, "parallel.matmat", matrix)
    return y


def parallel_smsv_multi(
    matrix: MatrixFormat,
    vectors,
    *,
    pool: Optional[WorkerPool] = None,
    min_rows_per_block: Optional[int] = None,
    counter: Optional[OpCounter] = None,
) -> np.ndarray:
    """Parallel multi-vector SMSV (scatter the block + blocked SpMM)."""
    vectors = list(vectors)
    n = matrix.shape[1]
    V = np.zeros((n, len(vectors)), dtype=VALUE_DTYPE)
    for c, v in enumerate(vectors):
        if v.length != n:
            raise ValueError(
                f"smsv_multi expects vectors of length {n}, got {v.length}"
            )
        V[v.indices, c] = v.values
    return parallel_matmat(
        matrix,
        V,
        pool=pool,
        min_rows_per_block=min_rows_per_block,
        counter=counter,
    )
