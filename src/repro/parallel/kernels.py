"""Parallel matvec / SMSV over row blocks.

The paper parallelises the SMO bottleneck with OpenMP across rows.
These helpers do the shared-memory Python equivalent: partition the
output rows, run each block's kernel on a pool thread (NumPy's ufuncs
and BLAS release the GIL for large blocks), write into disjoint output
slices.

Partitioning is format-aware: uniform-work formats (DEN, ELL) use
equal-count blocks; CSR uses :func:`~repro.parallel.partition.
balanced_chunks` weighted by ``dim_i`` so one dense row cannot
serialise the whole product — the same load-balancing concern behind
the paper's ``vdim`` parameter.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.formats.base import VALUE_DTYPE, MatrixFormat, SparseVector
from repro.formats.csr import CSRMatrix
from repro.formats.dense import DenseMatrix
from repro.formats.ell import ELLMatrix
from repro.parallel.partition import balanced_chunks, row_blocks
from repro.parallel.pool import WorkerPool, default_workers, shared_pool


def _blocks_for(matrix: MatrixFormat, n_blocks: int):
    if isinstance(matrix, CSRMatrix):
        return balanced_chunks(matrix.row_lengths, n_blocks)
    return row_blocks(matrix.shape[0], n_blocks)


def _plan_blocks(
    matrix: MatrixFormat,
    pool: Optional[WorkerPool],
    min_rows_per_block: int,
) -> int:
    """Row-block count for the partition, without touching the pool.

    Uses the pool's width when one was handed in, otherwise the
    configured default — so the single-block (serial) case is decided
    *before* any executor exists and never constructs one.
    """
    workers = pool.n_workers if pool is not None else default_workers()
    return min(workers, max(1, matrix.shape[0] // min_rows_per_block))


def parallel_matvec(
    matrix: MatrixFormat,
    x: np.ndarray,
    *,
    pool: Optional[WorkerPool] = None,
    min_rows_per_block: int = 256,
) -> np.ndarray:
    """``y = A @ x`` with row blocks on pool threads.

    Supported formats: DEN, CSR, ELL (the row-sliceable layouts).
    Falls back to the serial kernel when the matrix is too small for
    blocking to pay (``min_rows_per_block``) or the format has no
    row-sliced path (COO/DIA partition by elements/diagonals, not
    rows).

    The result is numerically identical to the serial kernel: every
    block computes the same contiguous slice the serial kernel would.
    """
    x = np.asarray(x, dtype=VALUE_DTYPE)
    if x.shape != (matrix.shape[1],):
        raise ValueError(
            f"matvec expects x of shape ({matrix.shape[1]},), got {x.shape}"
        )
    m = matrix.shape[0]
    n_blocks = _plan_blocks(matrix, pool, min_rows_per_block)
    if n_blocks <= 1 or not isinstance(
        matrix, (DenseMatrix, CSRMatrix, ELLMatrix)
    ):
        # Serial path: never touches (or lazily constructs) a pool.
        return matrix.matvec(x)
    pool = pool if pool is not None else shared_pool()

    y = np.empty(m, dtype=VALUE_DTYPE)
    blocks = _blocks_for(matrix, n_blocks)

    if isinstance(matrix, DenseMatrix):

        def work(block):
            s, e = block
            y[s:e] = matrix.array[s:e] @ x

    elif isinstance(matrix, ELLMatrix):
        data, indices = matrix.data, matrix.indices

        def work(block):
            s, e = block
            if data.shape[1]:
                y[s:e] = np.einsum(
                    "ij,ij->i", data[s:e], x[indices[s:e]]
                )
            else:
                y[s:e] = 0.0

    else:  # CSR
        vals, cols, ptr = matrix.values, matrix.col_idx, matrix.row_ptr

        def work(block):
            s, e = block
            lo, hi = int(ptr[s]), int(ptr[e])
            y[s:e] = 0.0
            if hi > lo:
                prod = vals[lo:hi] * x[cols[lo:hi]]
                starts = ptr[s:e] - lo
                nonempty = starts < (ptr[s + 1 : e + 1] - lo)
                if np.any(nonempty):
                    seg = np.add.reduceat(prod, starts[nonempty])
                    out = np.zeros(e - s)
                    out[nonempty] = seg
                    y[s:e] = out

    pool.map(work, blocks)
    return y


def parallel_smsv(
    matrix: MatrixFormat,
    v: SparseVector,
    *,
    pool: Optional[WorkerPool] = None,
    min_rows_per_block: int = 256,
) -> np.ndarray:
    """Parallel sparse-matrix x sparse-vector (scatter + blocked matvec)."""
    return parallel_matvec(
        matrix, v.to_dense(), pool=pool, min_rows_per_block=min_rows_per_block
    )


def parallel_matmat(
    matrix: MatrixFormat,
    V: np.ndarray,
    *,
    pool: Optional[WorkerPool] = None,
    min_rows_per_block: int = 256,
) -> np.ndarray:
    """Row-block parallel SpMM: ``Y = A @ V`` for a dense ``(N, k)`` block.

    Each pool thread runs the serial :meth:`~repro.formats.base.
    MatrixFormat.matmat` column recipe on its contiguous row block —
    so every output element is computed by the exact serial op sequence
    (bit-for-bit identical to ``matrix.matmat(V)``), and blocks write
    disjoint ``y[s:e]`` slices.  Formats without a row-sliced path
    (COO/DIA/CSC/BCSR) and single-block partitions fall back to the
    serial kernel without constructing a pool.
    """
    V = np.asarray(V, dtype=VALUE_DTYPE)
    if V.ndim != 2 or V.shape[0] != matrix.shape[1]:
        raise ValueError(
            f"matmat expects V of shape ({matrix.shape[1]}, k), "
            f"got {V.shape}"
        )
    m, k = matrix.shape[0], V.shape[1]
    n_blocks = _plan_blocks(matrix, pool, min_rows_per_block)
    if (
        n_blocks <= 1
        or k == 0
        or not isinstance(matrix, (DenseMatrix, CSRMatrix, ELLMatrix))
    ):
        return matrix.matmat(V)
    pool = pool if pool is not None else shared_pool()

    y = np.empty((m, k), dtype=VALUE_DTYPE)
    blocks = _blocks_for(matrix, n_blocks)

    if isinstance(matrix, DenseMatrix):
        VF = np.asfortranarray(V)

        def work(block):
            s, e = block
            sub = matrix.array[s:e]
            for c in range(k):
                y[s:e, c] = sub @ VF[:, c]

    elif isinstance(matrix, ELLMatrix):
        data, indices = matrix.data, matrix.indices
        VT = np.ascontiguousarray(V.T)

        def work(block):
            s, e = block
            if data.shape[1]:
                gathered = VT.take(indices[s:e], axis=1)
                for c in range(k):
                    y[s:e, c] = np.einsum(
                        "ij,ij->i", data[s:e], gathered[c]
                    )
            else:
                y[s:e] = 0.0

    else:  # CSR
        vals, cols, ptr = matrix.values, matrix.col_idx, matrix.row_ptr

        def work(block):
            s, e = block
            lo, hi = int(ptr[s]), int(ptr[e])
            y[s:e] = 0.0
            if hi > lo:
                starts = ptr[s:e] - lo
                nonempty = starts < (ptr[s + 1 : e + 1] - lo)
                prod = np.empty((k, hi - lo), dtype=VALUE_DTYPE)
                for c in range(k):
                    np.multiply(
                        vals[lo:hi], V[:, c].take(cols[lo:hi]), out=prod[c]
                    )
                if np.any(nonempty):
                    segs = np.add.reduceat(prod, starts[nonempty], axis=1)
                    out = np.zeros((e - s, k), dtype=VALUE_DTYPE)
                    out[nonempty] = segs.T
                    y[s:e] = out

    pool.map(work, blocks)
    return y


def parallel_smsv_multi(
    matrix: MatrixFormat,
    vectors,
    *,
    pool: Optional[WorkerPool] = None,
    min_rows_per_block: int = 256,
) -> np.ndarray:
    """Parallel multi-vector SMSV (scatter the block + blocked SpMM)."""
    vectors = list(vectors)
    n = matrix.shape[1]
    V = np.zeros((n, len(vectors)), dtype=VALUE_DTYPE)
    for c, v in enumerate(vectors):
        if v.length != n:
            raise ValueError(
                f"smsv_multi expects vectors of length {n}, got {v.length}"
            )
        V[v.indices, c] = v.values
    return parallel_matmat(
        matrix, V, pool=pool, min_rows_per_block=min_rows_per_block
    )
