"""Parallel matvec / SMSV over row blocks.

The paper parallelises the SMO bottleneck with OpenMP across rows.
These helpers do the shared-memory Python equivalent: partition the
output rows, run each block's kernel on a pool thread (NumPy's ufuncs
and BLAS release the GIL for large blocks), write into disjoint output
slices.

Partitioning is format-aware: uniform-work formats (DEN, ELL) use
equal-count blocks; CSR uses :func:`~repro.parallel.partition.
balanced_chunks` weighted by ``dim_i`` so one dense row cannot
serialise the whole product — the same load-balancing concern behind
the paper's ``vdim`` parameter.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.formats.base import VALUE_DTYPE, MatrixFormat, SparseVector
from repro.formats.csr import CSRMatrix
from repro.formats.dense import DenseMatrix
from repro.formats.ell import ELLMatrix
from repro.parallel.partition import balanced_chunks, row_blocks
from repro.parallel.pool import WorkerPool, shared_pool


def _blocks_for(matrix: MatrixFormat, n_blocks: int):
    if isinstance(matrix, CSRMatrix):
        return balanced_chunks(matrix.row_lengths, n_blocks)
    return row_blocks(matrix.shape[0], n_blocks)


def parallel_matvec(
    matrix: MatrixFormat,
    x: np.ndarray,
    *,
    pool: Optional[WorkerPool] = None,
    min_rows_per_block: int = 256,
) -> np.ndarray:
    """``y = A @ x`` with row blocks on pool threads.

    Supported formats: DEN, CSR, ELL (the row-sliceable layouts).
    Falls back to the serial kernel when the matrix is too small for
    blocking to pay (``min_rows_per_block``) or the format has no
    row-sliced path (COO/DIA partition by elements/diagonals, not
    rows).

    The result is numerically identical to the serial kernel: every
    block computes the same contiguous slice the serial kernel would.
    """
    x = np.asarray(x, dtype=VALUE_DTYPE)
    if x.shape != (matrix.shape[1],):
        raise ValueError(
            f"matvec expects x of shape ({matrix.shape[1]},), got {x.shape}"
        )
    pool = pool if pool is not None else shared_pool()
    m = matrix.shape[0]
    n_blocks = min(pool.n_workers, max(1, m // min_rows_per_block))
    if n_blocks <= 1 or not isinstance(
        matrix, (DenseMatrix, CSRMatrix, ELLMatrix)
    ):
        return matrix.matvec(x)

    y = np.empty(m, dtype=VALUE_DTYPE)
    blocks = _blocks_for(matrix, n_blocks)

    if isinstance(matrix, DenseMatrix):

        def work(block):
            s, e = block
            y[s:e] = matrix.array[s:e] @ x

    elif isinstance(matrix, ELLMatrix):
        data, indices = matrix.data, matrix.indices

        def work(block):
            s, e = block
            if data.shape[1]:
                y[s:e] = np.einsum(
                    "ij,ij->i", data[s:e], x[indices[s:e]]
                )
            else:
                y[s:e] = 0.0

    else:  # CSR
        vals, cols, ptr = matrix.values, matrix.col_idx, matrix.row_ptr

        def work(block):
            s, e = block
            lo, hi = int(ptr[s]), int(ptr[e])
            y[s:e] = 0.0
            if hi > lo:
                prod = vals[lo:hi] * x[cols[lo:hi]]
                starts = ptr[s:e] - lo
                nonempty = starts < (ptr[s + 1 : e + 1] - lo)
                if np.any(nonempty):
                    seg = np.add.reduceat(prod, starts[nonempty])
                    out = np.zeros(e - s)
                    out[nonempty] = seg
                    y[s:e] = out

    pool.map(work, blocks)
    return y


def parallel_smsv(
    matrix: MatrixFormat,
    v: SparseVector,
    *,
    pool: Optional[WorkerPool] = None,
    min_rows_per_block: int = 256,
) -> np.ndarray:
    """Parallel sparse-matrix x sparse-vector (scatter + blocked matvec)."""
    return parallel_matvec(
        matrix, v.to_dense(), pool=pool, min_rows_per_block=min_rows_per_block
    )
