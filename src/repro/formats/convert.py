"""Conversions between formats, and scipy/NumPy interop.

All conversions route through canonical COO triples, so any pair of
formats round-trips exactly (a hypothesis-tested invariant).  Conversion
cost is O(nnz log nnz) for the sort plus the target format's build cost;
the scheduler accounts for it via
:meth:`repro.core.cost_model.CostModel.conversion_cost`.
"""

from __future__ import annotations

from typing import Dict, Type, Union

import numpy as np
import scipy.sparse as sp

from repro.formats.base import VALUE_DTYPE, MatrixFormat
from repro.obs.trace import get_tracer
from repro.formats.bcsr import BCSRMatrix
from repro.formats.coo import COOMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.dense import DenseMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.ell import ELLMatrix
from repro.formats.reorder import RCSRMatrix, RELLMatrix, RSELLMatrix
from repro.formats.sell import SELLMatrix

#: Registry keyed by format name.  The first five are the paper's basic
#: formats (the scheduler's default candidate set, ``FORMAT_NAMES``);
#: CSC and BCSR are the derived formats Section III-A mentions, opt-in
#: as extra candidates; SELL and the reordered layouts (RCSR / RELL /
#: RSELL = SELL-C-sigma) are PR 4's padding-variance cures.
FORMAT_CLASSES: Dict[str, Type[MatrixFormat]] = {
    "DEN": DenseMatrix,
    "CSR": CSRMatrix,
    "COO": COOMatrix,
    "ELL": ELLMatrix,
    "DIA": DIAMatrix,
    "CSC": CSCMatrix,
    "BCSR": BCSRMatrix,
    "SELL": SELLMatrix,
    "RCSR": RCSRMatrix,
    "RELL": RELLMatrix,
    "RSELL": RSELLMatrix,
}


def format_class(name: str) -> Type[MatrixFormat]:
    """Look up a format class by (case-insensitive) paper name."""
    key = name.upper()
    try:
        return FORMAT_CLASSES[key]
    except KeyError:
        raise ValueError(
            f"unknown format {name!r}; expected one of {sorted(FORMAT_CLASSES)}"
        ) from None


def convert(
    matrix: MatrixFormat, target: Union[str, Type[MatrixFormat]]
) -> MatrixFormat:
    """Convert ``matrix`` to another format (no-op if already there)."""
    cls = format_class(target) if isinstance(target, str) else target
    if isinstance(matrix, cls):
        return matrix
    tracer = get_tracer()
    with tracer.span("formats.convert") as sp:
        if tracer.enabled:
            sp.set("from", matrix.name)
            sp.set("to", cls.name)
            sp.set("nnz", int(matrix.nnz))
        rows, cols, values = matrix.to_coo()
        return cls.from_coo(rows, cols, values, matrix.shape)


def from_dense(
    array: np.ndarray, target: Union[str, Type[MatrixFormat]] = "DEN"
) -> MatrixFormat:
    """Build any format from a dense 2-D array."""
    array = np.asarray(array, dtype=VALUE_DTYPE)
    if array.ndim != 2:
        raise ValueError("expected a 2-D array")
    cls = format_class(target) if isinstance(target, str) else target
    if cls is DenseMatrix:
        return DenseMatrix(array)
    rows, cols = np.nonzero(array)
    return cls.from_coo(rows, cols, array[rows, cols], array.shape)


def from_scipy(
    matrix: sp.spmatrix | sp.sparray,
    target: Union[str, Type[MatrixFormat]] = "CSR",
) -> MatrixFormat:
    """Import a scipy.sparse matrix (any scipy format) into ours."""
    coo = sp.coo_matrix(matrix)
    coo.sum_duplicates()
    cls = format_class(target) if isinstance(target, str) else target
    return cls.from_coo(coo.row, coo.col, coo.data, coo.shape)


def to_scipy(matrix: MatrixFormat) -> sp.csr_matrix:
    """Export to a scipy CSR matrix (used by tests as the oracle)."""
    rows, cols, values = matrix.to_coo()
    return sp.csr_matrix((values, (rows, cols)), shape=matrix.shape)
