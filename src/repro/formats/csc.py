"""CSC — compressed sparse column.

The paper (Section III-A): "the CSC format is similar to the CSR
format. The only difference is that the columns are used instead of the
rows."  Included as a derived format: it shares CSR's O(nnz) storage
but transposed access — its matvec *scatters* into y per column instead
of reducing per row, which is why CSR is preferred for the SMO pattern
(row-major streaming) and CSC only wins for column-oriented access
(e.g. feature-wise statistics, column subsetting).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.formats.base import (
    INDEX_DTYPE,
    VALUE_DTYPE,
    MatrixFormat,
    SparseVector,
    validate_coo,
)
from repro.perf.counters import OpCounter


class CSCMatrix(MatrixFormat):
    """Compressed sparse column matrix.

    Attributes
    ----------
    values:
        Non-zero values in column-major order, length nnz.
    row_idx:
        Row index of each value, length nnz.
    col_ptr:
        Length N+1; column ``j`` occupies
        ``values[col_ptr[j]:col_ptr[j+1]]``.
    """

    name = "CSC"

    def __init__(
        self,
        values: np.ndarray,
        row_idx: np.ndarray,
        col_ptr: np.ndarray,
        shape: Tuple[int, int],
    ) -> None:
        self.values = np.asarray(values, dtype=VALUE_DTYPE)
        self.row_idx = np.asarray(row_idx, dtype=INDEX_DTYPE)
        self.col_ptr = np.asarray(col_ptr, dtype=np.int64)
        m, n = shape
        if self.col_ptr.shape != (n + 1,):
            raise ValueError("col_ptr must have length N+1")
        if self.col_ptr[0] != 0 or self.col_ptr[-1] != self.values.shape[0]:
            raise ValueError("col_ptr endpoints inconsistent with values")
        if np.any(np.diff(self.col_ptr) < 0):
            raise ValueError("col_ptr must be non-decreasing")
        if self.values.shape != self.row_idx.shape:
            raise ValueError("values and row_idx must have equal length")
        self.shape = (int(m), int(n))
        self._sanitize_check()

    # -- construction -------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        shape: Tuple[int, int],
    ) -> "CSCMatrix":
        rows, cols, values = validate_coo(rows, cols, values, shape)
        n = shape[1]
        # re-sort column-major
        order = np.lexsort((rows, cols))
        rows, cols, values = rows[order], cols[order], values[order]
        counts = np.bincount(cols, minlength=n)
        col_ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=col_ptr[1:])
        return cls(values, rows, col_ptr, shape)

    def to_coo(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        cols = np.repeat(
            np.arange(self.shape[1], dtype=INDEX_DTYPE),
            np.diff(self.col_ptr).astype(np.int64),
        )
        return validate_coo(
            self.row_idx.copy(), cols, self.values.copy(), self.shape
        )

    # -- structure ----------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.values.shape[0])

    def storage_elements(self) -> int:
        # data + indices (nnz each) + ptr (N + 1): CSR's formula with
        # N in place of M.
        return 2 * self.nnz + self.shape[1] + 1

    def _backing_arrays(self) -> Tuple[np.ndarray, ...]:
        return (self.values, self.row_idx, self.col_ptr)

    @property
    def col_lengths(self) -> np.ndarray:
        """Non-zeros per column (the transposed ``dim``)."""
        return np.diff(self.col_ptr)

    # -- kernels ------------------------------------------------------
    def matvec(
        self, x: np.ndarray, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        x = np.asarray(x, dtype=VALUE_DTYPE)
        if x.shape != (self.shape[1],):
            raise ValueError(
                f"matvec expects x of shape ({self.shape[1]},), got {x.shape}"
            )
        m = self.shape[0]
        if self.nnz:
            # Column-major: weight each stored element by its column's
            # x value (an expand via the ptr array), then scatter-add
            # into y by row — the access pattern that makes CSC slower
            # than CSR for row-oriented products.
            xw = np.repeat(x, np.diff(self.col_ptr).astype(np.int64))
            y = np.bincount(
                self.row_idx, weights=self.values * xw, minlength=m
            ).astype(VALUE_DTYPE, copy=False)
        else:
            y = np.zeros(m, dtype=VALUE_DTYPE)
        if counter is not None:
            counter.add_flops(2 * self.nnz)
            counter.add_read(
                self.values.nbytes
                + self.row_idx.nbytes
                + self.col_ptr.nbytes
                + self.nnz * x.itemsize
            )
            counter.add_write(y.nbytes)
        return y

    def smsv(
        self, v: SparseVector, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        """CSC exploits a sparse vector directly: only the columns in
        ``v``'s support are touched — O(sum of those column lengths)."""
        m = self.shape[0]
        y = np.zeros(m, dtype=VALUE_DTYPE)
        touched = 0
        for j, xj in zip(v.indices, v.values):  # repro: noqa RDL001 — trip count is v.nnz, the point of CSC's smsv
            lo, hi = int(self.col_ptr[j]), int(self.col_ptr[j + 1])
            if hi > lo:
                # Row indices are unique within a column, so the fancy
                # scatter-add cannot collide.
                y[self.row_idx[lo:hi]] += self.values[lo:hi] * xj
                touched += hi - lo
        if counter is not None:
            counter.add_flops(2 * touched)
            counter.add_read(touched * (8 + 4) + v.values.nbytes)
            counter.add_write(y.nbytes)
        return y

    def smsv_multi(
        self, vectors, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        """Per-vector support loops: CSC's smsv advantage is touching
        only the columns in each vector's support, which a shared dense
        block would forfeit.  Each column of the result is exactly one
        :meth:`smsv` call, so bit-for-bit identity is structural."""
        vectors = list(vectors)
        m, n = self.shape
        for v in vectors:  # repro: noqa RDL001 — trip count is batch_k; O(1) length validation per vector
            if v.length != n:
                raise ValueError(
                    f"smsv_multi expects vectors of length {n}, "
                    f"got {v.length}"
                )
        yT = np.zeros((len(vectors), m), dtype=VALUE_DTYPE)
        if counter is not None:
            counter.add_spmm(len(vectors))
        for c, v in enumerate(vectors):  # repro: noqa RDL001 — trip count is batch_k; each pass is one support-driven smsv
            yT[c] = self.smsv(v, counter)
        return yT.T

    def row(self, i: int) -> SparseVector:
        if not 0 <= i < self.shape[0]:
            raise IndexError("row index out of range")
        # Row extraction is CSC's weak spot: a full scan of row_idx.
        mask = self.row_idx == i
        cols = np.repeat(
            np.arange(self.shape[1], dtype=INDEX_DTYPE),
            np.diff(self.col_ptr).astype(np.int64),
        )[mask]
        return SparseVector(cols, self.values[mask], self.shape[1])

    def column(self, j: int) -> SparseVector:
        """Column extraction — CSC's strong spot (contiguous slice)."""
        if not 0 <= j < self.shape[1]:
            raise IndexError("column index out of range")
        lo, hi = int(self.col_ptr[j]), int(self.col_ptr[j + 1])
        return SparseVector(
            self.row_idx[lo:hi], self.values[lo:hi], self.shape[0]
        )
