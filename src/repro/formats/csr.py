"""CSR — compressed sparse row.

The format LIBSVM fixes for every dataset.  Stores ``(values, col_idx)``
of length nnz plus a row-pointer array of length M+1.  Work per SMSV is
O(nnz), but on fixed-width SIMD machines the *effective* work is

    sum_i ceil(dim_i / W) * W

because each row is vectorised independently — the source of the
``vdim`` sensitivity in Fig. 4.  The NumPy kernel below is O(nnz) and
lane-oblivious; the lane effect is modelled faithfully by
:mod:`repro.hardware.vectormachine`, which counts exactly the padded
per-row vector ops above (see DESIGN.md, substitution table).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.formats.base import (
    INDEX_DTYPE,
    VALUE_DTYPE,
    MatrixFormat,
    SparseVector,
    validate_coo,
)
from repro.perf.counters import OpCounter


class CSRMatrix(MatrixFormat):
    """Compressed sparse row matrix.

    Attributes
    ----------
    values:
        Non-zero values in row-major order, length nnz.
    col_idx:
        Column index of each value, length nnz.
    row_ptr:
        Length M+1; row ``i`` occupies ``values[row_ptr[i]:row_ptr[i+1]]``.
    """

    name = "CSR"

    def __init__(
        self,
        values: np.ndarray,
        col_idx: np.ndarray,
        row_ptr: np.ndarray,
        shape: Tuple[int, int],
    ) -> None:
        self.values = np.asarray(values, dtype=VALUE_DTYPE)
        self.col_idx = np.asarray(col_idx, dtype=INDEX_DTYPE)
        self.row_ptr = np.asarray(row_ptr, dtype=np.int64)
        m, n = shape
        if self.row_ptr.shape != (m + 1,):
            raise ValueError("row_ptr must have length M+1")
        if self.row_ptr[0] != 0 or self.row_ptr[-1] != self.values.shape[0]:
            raise ValueError("row_ptr endpoints inconsistent with values")
        if np.any(np.diff(self.row_ptr) < 0):
            raise ValueError("row_ptr must be non-decreasing")
        if self.values.shape != self.col_idx.shape:
            raise ValueError("values and col_idx must have equal length")
        self.shape = (int(m), int(n))
        self._sanitize_check()

    # -- construction -------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        shape: Tuple[int, int],
    ) -> "CSRMatrix":
        rows, cols, values = validate_coo(rows, cols, values, shape)
        m = shape[0]
        counts = np.bincount(rows, minlength=m)
        row_ptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(counts, out=row_ptr[1:])
        return cls(values, cols, row_ptr, shape)

    def to_coo(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        rows = np.repeat(
            np.arange(self.shape[0], dtype=INDEX_DTYPE),
            np.diff(self.row_ptr).astype(np.int64),
        )
        return rows, self.col_idx.copy(), self.values.copy()

    # -- structure ----------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.values.shape[0])

    def storage_elements(self) -> int:
        # data + indices (nnz each) + ptr (M + 1); Table II's "CSR max"
        # of 2MN + M is this expression at nnz = M*N.
        return 2 * self.nnz + self.shape[0] + 1

    def _backing_arrays(self) -> Tuple[np.ndarray, ...]:
        return (self.values, self.col_idx, self.row_ptr)

    @property
    def row_lengths(self) -> np.ndarray:
        """``dim_i`` for every row — the quantity behind mdim/adim/vdim."""
        return np.diff(self.row_ptr)

    # -- kernels ------------------------------------------------------
    def matvec(
        self, x: np.ndarray, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        x = np.asarray(x, dtype=VALUE_DTYPE)
        if x.shape != (self.shape[1],):
            raise ValueError(
                f"matvec expects x of shape ({self.shape[1]},), got {x.shape}"
            )
        m = self.shape[0]
        y = np.zeros(m, dtype=VALUE_DTYPE)
        if self.nnz:
            prod = self.values * x[self.col_idx]
            starts = self.row_ptr[:-1]
            nonempty = starts < self.row_ptr[1:]
            if np.any(nonempty):
                # reduceat over the starts of non-empty rows: consecutive
                # starts delimit exactly each row's segment (empty rows in
                # between contribute no products, so skipping their starts
                # is safe).
                segs = np.add.reduceat(prod, starts[nonempty])
                y[nonempty] = segs
        if counter is not None:
            counter.add_flops(2 * self.nnz)
            counter.add_read(
                self.values.nbytes
                + self.col_idx.nbytes
                + self.row_ptr.nbytes
                + self.nnz * x.itemsize  # gathered x elements
            )
            counter.add_write(y.nbytes)
        return y

    def smsv(
        self, v: SparseVector, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        # Scatter-then-matvec: the gather x[col_idx] touches only stored
        # columns, so the scatter is O(N) prep against O(nnz) work.
        return super().smsv(v, counter)

    def matmat(
        self, V: np.ndarray, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        # One traversal for all k columns: the per-column gather+multiply
        # lands in one contiguous (k, nnz) buffer, so a single reduceat
        # along axis=1 segments every column at once.  Per column this is
        # the same gather, multiply, and reduceat as matvec — bit-for-bit
        # identical — but the row_ptr walk, the nonempty mask, and the
        # output allocation are paid once, and the k reduceat passes run
        # inside one ufunc call instead of k dispatches.
        V = self._coerce_rhs_block(V)
        k = V.shape[1]
        m = self.shape[0]
        # (k, M) C-order accumulator returned as its (M, k) transposed
        # view: the segment sums land in contiguous rows (no transposed
        # copy) and downstream column extraction is contiguous.
        yT = np.zeros((k, m), dtype=VALUE_DTYPE)
        y = yT.T
        if self.nnz and k:
            starts = self.row_ptr[:-1]
            nonempty = starts < self.row_ptr[1:]
            prod = np.empty((k, self.nnz), dtype=VALUE_DTYPE)
            for c in range(k):  # repro: noqa RDL001 — trip count is batch_k; each pass is one vectorised gather+multiply
                np.multiply(
                    self.values, V[:, c].take(self.col_idx), out=prod[c]
                )
            if np.any(nonempty):
                segs = np.add.reduceat(prod, starts[nonempty], axis=1)
                yT[:, nonempty] = segs
        if counter is not None:
            counter.add_spmm(k)
            counter.add_flops(2 * self.nnz * k)
            counter.add_read(
                self.values.nbytes
                + self.col_idx.nbytes
                + self.row_ptr.nbytes  # matrix streams: once per sweep
                + self.nnz * V.itemsize * k  # gathered V elements
            )
            counter.add_write(y.nbytes)
        return y

    def row(self, i: int) -> SparseVector:
        if not 0 <= i < self.shape[0]:
            raise IndexError("row index out of range")
        lo, hi = int(self.row_ptr[i]), int(self.row_ptr[i + 1])
        return SparseVector(self.col_idx[lo:hi], self.values[lo:hi], self.shape[1])

    def row_norms_sq(self) -> np.ndarray:
        out = np.zeros(self.shape[0], dtype=VALUE_DTYPE)
        if self.nnz:
            sq = self.values * self.values
            starts = self.row_ptr[:-1]
            nonempty = starts < self.row_ptr[1:]
            if np.any(nonempty):
                out[nonempty] = np.add.reduceat(sq, starts[nonempty])
        return out
