"""DEN — dense row-major storage.

The format GPUSVM fixes for every dataset (paper Section I).  Stores all
``M * N`` elements; the matvec is a BLAS-2 call, which is why DEN wins on
the genuinely dense ML datasets (gisette, epsilon, dna in Table V) and
loses badly on sparse ones (sector: DEN is the *worst* format, Table VI).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.formats.base import (
    INDEX_DTYPE,
    VALUE_DTYPE,
    MatrixFormat,
    SparseVector,
    validate_coo,
)
from repro.perf.counters import OpCounter


class DenseMatrix(MatrixFormat):
    """Row-major (C-contiguous) dense matrix.

    Row-major is the cache-friendly orientation for the SMO access
    pattern: the SMSV streams whole rows, and row extraction
    (``X_high``) is a contiguous slice.
    """

    name = "DEN"

    def __init__(self, array: np.ndarray) -> None:
        array = np.ascontiguousarray(array, dtype=VALUE_DTYPE)
        if array.ndim != 2:
            raise ValueError("DenseMatrix requires a 2-D array")
        self.array = array
        self.shape = (int(array.shape[0]), int(array.shape[1]))
        self._sanitize_check()

    # -- construction -------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        shape: Tuple[int, int],
    ) -> "DenseMatrix":
        rows, cols, values = validate_coo(rows, cols, values, shape)
        out = np.zeros(shape, dtype=VALUE_DTYPE)
        out[rows, cols] = values
        return cls(out)

    def to_coo(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        rows, cols = np.nonzero(self.array)
        return (
            rows.astype(INDEX_DTYPE),
            cols.astype(INDEX_DTYPE),
            self.array[rows, cols].astype(VALUE_DTYPE),
        )

    # -- structure ----------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.array))

    def storage_elements(self) -> int:
        return self.shape[0] * self.shape[1]

    def _backing_arrays(self) -> Tuple[np.ndarray, ...]:
        return (self.array,)

    # -- kernels ------------------------------------------------------
    def matvec(
        self, x: np.ndarray, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        x = np.asarray(x, dtype=VALUE_DTYPE)
        if x.shape != (self.shape[1],):
            raise ValueError(
                f"matvec expects x of shape ({self.shape[1]},), got {x.shape}"
            )
        y = self.array @ x
        if counter is not None:
            m, n = self.shape
            counter.add_flops(2 * m * n)
            counter.add_read(self.array.nbytes + x.nbytes)
            counter.add_write(y.nbytes)
        return y

    def matmat(
        self, V: np.ndarray, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        # k GEMV calls over a column-contiguous copy of V, NOT one GEMM:
        # BLAS-3 blocks the reduction differently, which breaks the
        # bit-for-bit column contract with matvec.  DEN gains nothing
        # from traversal amortisation anyway (there is no index stream),
        # so the model assigns it a zero batch amortisation fraction.
        V = self._coerce_rhs_block(V)
        k = V.shape[1]
        m, n = self.shape
        VF = np.asfortranarray(V)
        # (k, M) C-order accumulator returned transposed: each GEMV
        # result lands in a contiguous row instead of a strided column.
        yT = np.empty((k, m), dtype=VALUE_DTYPE)
        y = yT.T
        for c in range(k):  # repro: noqa RDL001 — trip count is batch_k; per-column GEMV keeps bit-identity with matvec
            yT[c] = self.array @ VF[:, c]
        if counter is not None:
            counter.add_spmm(k)
            counter.add_flops(2 * m * n * k)
            counter.add_read(self.array.nbytes + V.nbytes)
            counter.add_write(y.nbytes)
        return y

    def row(self, i: int) -> SparseVector:
        if not 0 <= i < self.shape[0]:
            raise IndexError("row index out of range")
        # View (no copy) then sparsify; the SMO hot path keeps vectors
        # sparse so kernels can exploit them.
        return SparseVector.from_dense(self.array[i])

    def row_norms_sq(self) -> np.ndarray:
        return np.einsum("ij,ij->i", self.array, self.array)

    def to_dense(self) -> np.ndarray:
        return self.array.copy()
