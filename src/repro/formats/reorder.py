"""Row reordering with permutation-transparent kernels.

SELL-C-sigma and lockstep-SIMD CSR both benefit from rows of similar
length sitting next to each other, but SMO and the serving layer index
rows by their *original* dataset position.  :class:`PermutedMatrix`
reconciles the two: it stores an inner matrix whose rows are permuted
(sorted by descending length within sigma-windows) and translates at
the boundary of every operation — ``matvec``/``smsv``/``matmat``/
``smsv_multi`` take and return vectors in original index space, and
``row(i)`` returns original row ``i``.

The translation is exact, not approximate: a row permutation does not
touch the order of accumulation *within* any row, and columns are not
permuted so input vectors need no remapping.  The output scatter
``y[perm] = y_stored`` moves finished row sums, so every returned
value is bitwise the value the inner format would have produced for
that row — SMO iterations, support sets, bias, and serve decision
values are reproduced exactly (the acceptance gate of PR 4).

Concrete registered layouts:

``RCSR``
    sigma-sorted rows over a CSR core.  The NumPy kernel cost is
    unchanged, but on the modelled lockstep-SIMD machine sorting
    collapses the per-W-row-group ``max(dim_i)`` padding toward
    ``adim`` — this is the reordering the paper's ``vdim`` parameter
    is secretly about.  Also the vehicle for the end-to-end bitwise
    SMO check, since CSR per-row sums carry no padding at all.
``RSELL``
    sigma-sorted rows over a SELL-C core: the full SELL-C-sigma
    layout.  Sorting makes slices internally uniform, so the per-slice
    padded lanes approach ``nnz / W``.
``RELL``
    sigma-sorted rows over an ELL core.  ELL pads to the *global* max
    row length, which sorting cannot reduce — the cost model knows
    this and essentially never picks RELL; it exists to make the
    candidate space honest (reorder + {ELL, SELL} both priced).
"""

from __future__ import annotations

from typing import Optional, Tuple, Type

import numpy as np

from repro.formats.base import (
    INDEX_DTYPE,
    VALUE_DTYPE,
    MatrixFormat,
    SparseVector,
    validate_coo,
)
from repro.formats.csr import CSRMatrix
from repro.formats.ell import ELLMatrix
from repro.formats.sell import SELLMatrix
from repro.perf.counters import OpCounter


def sigma_window_permutation(
    row_lengths: np.ndarray, sigma: Optional[int] = None
) -> np.ndarray:
    """Stable descending-length sort within windows of ``sigma`` rows.

    Returns ``perm`` with ``perm[p]`` = original index of the row
    stored at position ``p``.  ``sigma=None`` (or ``sigma >= M``)
    sorts globally; ``sigma=1`` is the identity.  Ties keep original
    order (stable), so the permutation is deterministic.
    """
    lengths = np.asarray(row_lengths, dtype=np.int64)
    m = lengths.shape[0]
    if sigma is None:
        sigma = max(m, 1)
    sigma = int(sigma)
    if sigma < 1:
        raise ValueError("sigma must be >= 1")
    window = np.arange(m, dtype=np.int64) // sigma
    # lexsort: last key is primary.  Window first, then descending
    # length, then original position for stability.
    return np.lexsort((np.arange(m, dtype=np.int64), -lengths, window))


def invert_permutation(perm: np.ndarray) -> np.ndarray:
    inv = np.empty(perm.shape[0], dtype=np.int64)
    inv[perm] = np.arange(perm.shape[0], dtype=np.int64)
    return inv


def _resolve_sigma(
    sigma: Optional[int],
    default_sigma: Optional[int],
    lengths: np.ndarray,
    shape: Tuple[int, int],
) -> Optional[int]:
    """Sort-window resolution: explicit > class default > tuned > global.

    A warm tuning-cache entry can shrink the window from the global
    sort (its ``0`` value keeps the global sort).  Any window yields
    exact results — the permutation transparency above is
    sigma-independent — so tuning here trades padding for locality
    without touching values.
    """
    if sigma is not None:
        return sigma
    if default_sigma is not None:
        return default_sigma
    from repro.tune.cache import tuned_for_lengths

    tuned = tuned_for_lengths("sigma", "sigma", lengths, shape)
    if tuned:  # 0 (and cold keys) keep the global sort
        return int(tuned)
    return None


class PermutedMatrix(MatrixFormat):
    """Inner matrix with permuted rows, presented in original order.

    ``stored`` holds the row-permuted data (deliberately *not* named
    ``inner``: :func:`repro.analysis.sanitize.format_violations`
    unwraps an ``inner`` attribute to see through ``SanitizedMatrix``
    proxies, and the wrapper-level invariants here must not be
    bypassed).  ``perm[p]`` is the original index of stored row ``p``.
    """

    name = "PERM"

    #: Inner storage class; fixed per registered subclass.
    inner_cls: Type[MatrixFormat] = CSRMatrix
    #: Sort-window size used by ``from_coo``; None = global sort.
    default_sigma: Optional[int] = None

    def __init__(self, stored: MatrixFormat, perm: np.ndarray) -> None:
        self.stored = stored
        self.perm = np.asarray(perm, dtype=np.int64)
        m, n = stored.shape
        if self.perm.shape != (m,):
            raise ValueError("perm must have length M")
        if m and not np.array_equal(np.sort(self.perm), np.arange(m)):
            raise ValueError("perm is not a permutation of 0..M-1")
        self.inv_perm = invert_permutation(self.perm)
        self.shape = (int(m), int(n))
        self._sanitize_check()

    # -- construction -------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        shape: Tuple[int, int],
        *,
        sigma: Optional[int] = None,
    ) -> "PermutedMatrix":
        rows, cols, values = validate_coo(rows, cols, values, shape)
        m = shape[0]
        lengths = np.bincount(rows, minlength=m).astype(np.int64)
        sigma = _resolve_sigma(sigma, cls.default_sigma, lengths, shape)
        perm = sigma_window_permutation(lengths, sigma)
        inv = invert_permutation(perm)
        stored_rows = inv[rows] if rows.size else rows
        stored = cls.inner_cls.from_coo(
            stored_rows.astype(INDEX_DTYPE), cols, values, shape
        )
        return cls(stored, perm)

    def to_coo(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        rows, cols, values = self.stored.to_coo()
        orig_rows = (
            self.perm[rows.astype(np.int64)].astype(INDEX_DTYPE)
            if rows.size
            else rows
        )
        return validate_coo(orig_rows, cols, values, self.shape)

    # -- structure ----------------------------------------------------
    @property
    def nnz(self) -> int:
        return self.stored.nnz

    def storage_elements(self) -> int:
        # Inner storage plus the permutation vector itself.
        return self.stored.storage_elements() + self.shape[0]

    def _backing_arrays(self) -> Tuple[np.ndarray, ...]:
        return self.stored._backing_arrays() + (self.perm,)

    @property
    def row_lengths(self) -> np.ndarray:
        """``dim_i`` in *original* row order."""
        stored_lengths = getattr(self.stored, "row_lengths", None)
        if stored_lengths is None:
            rows, _, _ = self.stored.to_coo()
            stored_lengths = np.bincount(
                rows, minlength=self.shape[0]
            ).astype(np.int64)
        out = np.empty(self.shape[0], dtype=np.int64)
        out[self.perm] = np.asarray(stored_lengths, dtype=np.int64)
        return out

    # -- kernels ------------------------------------------------------
    # Columns are not permuted, so x passes through untouched; only
    # the outputs are scattered back to original row order.  The
    # scatter moves finished row sums, preserving every bit.
    def matvec(
        self, x: np.ndarray, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        ys = self.stored.matvec(x, counter)
        y = np.empty(self.shape[0], dtype=VALUE_DTYPE)
        y[self.perm] = ys
        if counter is not None:
            counter.add_read(ys.nbytes + self.perm.nbytes)
            counter.add_write(y.nbytes)
        return y

    def matmat(
        self, V: np.ndarray, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        Ys = self.stored.matmat(V, counter)
        Y = np.empty(Ys.shape, dtype=VALUE_DTYPE)
        Y[self.perm] = Ys
        if counter is not None:
            counter.add_read(Ys.nbytes + self.perm.nbytes)
            counter.add_write(Y.nbytes)
        return Y

    # smsv / smsv_multi inherit the base implementations, which call
    # self.matvec / self.matmat and therefore scatter exactly once.

    def row(self, i: int) -> SparseVector:
        if not 0 <= i < self.shape[0]:
            raise IndexError("row index out of range")
        return self.stored.row(int(self.inv_perm[i]))

    def row_norms_sq(self) -> np.ndarray:
        out = np.empty(self.shape[0], dtype=VALUE_DTYPE)
        out[self.perm] = self.stored.row_norms_sq()
        return out


class RCSRMatrix(PermutedMatrix):
    """Globally length-sorted rows over a CSR core."""

    name = "RCSR"
    inner_cls = CSRMatrix
    default_sigma = None


class RELLMatrix(PermutedMatrix):
    """Globally length-sorted rows over an ELL core."""

    name = "RELL"
    inner_cls = ELLMatrix
    default_sigma = None


class RSELLMatrix(PermutedMatrix):
    """SELL-C-sigma: length-sorted rows over a SELL-C core.

    ``from_coo`` sorts globally by default (``sigma = M``), which
    minimises padding; pass ``sigma`` to limit the reordering window
    (smaller sigma keeps rows closer to home, trading padding for
    locality — swept by ``repro bench sell``).
    """

    name = "RSELL"
    inner_cls = SELLMatrix
    default_sigma = None

    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        shape: Tuple[int, int],
        *,
        sigma: Optional[int] = None,
        chunk: Optional[int] = None,
    ) -> "RSELLMatrix":
        rows, cols, values = validate_coo(rows, cols, values, shape)
        m = shape[0]
        lengths = np.bincount(rows, minlength=m).astype(np.int64)
        sigma = _resolve_sigma(sigma, cls.default_sigma, lengths, shape)
        perm = sigma_window_permutation(lengths, sigma)
        inv = invert_permutation(perm)
        stored_rows = inv[rows] if rows.size else rows
        stored = SELLMatrix.from_coo(
            stored_rows.astype(INDEX_DTYPE), cols, values, shape, chunk=chunk
        )
        return cls(stored, perm)
