"""BCSR — block compressed sparse row.

The paper (Section III-A): "block variants like BCSR are often used
when there are many dense sub-blocks in a sparse matrix."  Storage is a
CSR over ``br x bc`` blocks, each block stored densely:

- ``block_data``: ``(n_blocks, br, bc)`` dense blocks (zero-padded);
- ``block_col``:  block-column index per stored block;
- ``block_ptr``:  CSR-style pointer over block rows.

Storage is ``n_blocks * br * bc`` values + ``n_blocks`` indices +
``M/br + 1`` pointers: a win exactly when the blocks are mostly full
(``fill_ratio`` near 1) — the OSKI trade-off the paper cites as related
work.  The kernel multiplies whole blocks, so block padding costs real
work, consistent with the ELL/DIA conventions of this library.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.formats.base import (
    INDEX_DTYPE,
    VALUE_DTYPE,
    MatrixFormat,
    SparseVector,
    validate_coo,
)
from repro.perf.counters import OpCounter


class BCSRMatrix(MatrixFormat):
    """Block-CSR matrix with fixed ``br x bc`` dense blocks."""

    name = "BCSR"

    def __init__(
        self,
        block_data: np.ndarray,
        block_col: np.ndarray,
        block_ptr: np.ndarray,
        shape: Tuple[int, int],
        block_shape: Tuple[int, int],
    ) -> None:
        br, bc = block_shape
        if br < 1 or bc < 1:
            raise ValueError("block dimensions must be >= 1")
        self.block_data = np.ascontiguousarray(block_data, dtype=VALUE_DTYPE)
        self.block_col = np.asarray(block_col, dtype=INDEX_DTYPE)
        self.block_ptr = np.asarray(block_ptr, dtype=np.int64)
        m, n = shape
        n_brows = -(-m // br)
        if self.block_data.ndim != 3 or self.block_data.shape[1:] != (br, bc):
            raise ValueError("block_data must be (n_blocks, br, bc)")
        if self.block_ptr.shape != (n_brows + 1,):
            raise ValueError("block_ptr must have length M/br + 1")
        if self.block_ptr[0] != 0 or self.block_ptr[-1] != len(self.block_col):
            raise ValueError("block_ptr endpoints inconsistent")
        self.shape = (int(m), int(n))
        self.block_shape = (int(br), int(bc))
        self._sanitize_check()

    # -- construction -------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        shape: Tuple[int, int],
        block_shape: Tuple[int, int] = (4, 4),
    ) -> "BCSRMatrix":
        rows, cols, values = validate_coo(rows, cols, values, shape)
        m, n = shape
        br, bc = block_shape
        if br < 1 or bc < 1:
            raise ValueError("block dimensions must be >= 1")
        brow = rows // br
        bcol = cols // bc
        n_brows = -(-m // br)
        # Unique occupied blocks in block-row-major order.
        key = brow.astype(np.int64) * ((n + bc - 1) // bc) + bcol
        order = np.argsort(key, kind="stable")
        key_sorted = key[order]
        uniq_key, first = np.unique(key_sorted, return_index=True)
        block_of_nnz = np.searchsorted(uniq_key, key)
        n_blocks = uniq_key.shape[0]
        data = np.zeros((n_blocks, br, bc), dtype=VALUE_DTYPE)
        data[
            block_of_nnz, rows % br, cols % bc
        ] = values
        n_bcols = (n + bc - 1) // bc
        u_brow = (uniq_key // n_bcols).astype(np.int64)
        u_bcol = (uniq_key % n_bcols).astype(INDEX_DTYPE)
        counts = np.bincount(u_brow, minlength=n_brows)
        ptr = np.zeros(n_brows + 1, dtype=np.int64)
        np.cumsum(counts, out=ptr[1:])
        return cls(data, u_bcol, ptr, shape, block_shape)

    def to_coo(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        br, bc = self.block_shape
        m, n = self.shape
        rows_list, cols_list, vals_list = [], [], []
        for brow in range(len(self.block_ptr) - 1):
            for k in range(self.block_ptr[brow], self.block_ptr[brow + 1]):
                block = self.block_data[k]
                r, c = np.nonzero(block)
                if r.size:
                    rows_list.append(brow * br + r)
                    cols_list.append(int(self.block_col[k]) * bc + c)
                    vals_list.append(block[r, c])
        if not rows_list:
            e = np.empty(0, dtype=INDEX_DTYPE)
            return e, e.copy(), np.empty(0, dtype=VALUE_DTYPE)
        return validate_coo(
            np.concatenate(rows_list),
            np.concatenate(cols_list),
            np.concatenate(vals_list),
            self.shape,
        )

    # -- structure ----------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.block_data))

    @property
    def n_blocks(self) -> int:
        return int(self.block_data.shape[0])

    @property
    def fill_ratio(self) -> float:
        """Fraction of stored block slots holding real non-zeros: the
        statistic that decides whether BCSR is worth it (OSKI)."""
        total = self.block_data.size
        return self.nnz / total if total else 1.0

    def storage_elements(self) -> int:
        br, bc = self.block_shape
        n_brows = len(self.block_ptr) - 1
        return self.n_blocks * br * bc + self.n_blocks + n_brows + 1

    def _backing_arrays(self) -> Tuple[np.ndarray, ...]:
        return (self.block_data, self.block_col, self.block_ptr)

    # -- kernels ------------------------------------------------------
    def matvec(
        self, x: np.ndarray, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        x = np.asarray(x, dtype=VALUE_DTYPE)
        if x.shape != (self.shape[1],):
            raise ValueError(
                f"matvec expects x of shape ({self.shape[1]},), got {x.shape}"
            )
        m, n = self.shape
        br, bc = self.block_shape
        y = np.zeros(m, dtype=VALUE_DTYPE)
        if self.n_blocks:
            # Gather x block-slices (padded at the right edge), batch
            # multiply all blocks at once, then segment-reduce per
            # block row.
            xpad = np.zeros((-(-n // bc)) * bc, dtype=VALUE_DTYPE)
            xpad[:n] = x
            xs = xpad.reshape(-1, bc)[self.block_col]  # (n_blocks, bc)
            contrib = np.einsum("kij,kj->ki", self.block_data, xs)
            ypad = np.zeros(((-(-m // br)), br), dtype=VALUE_DTYPE)
            brow_of_block = (
                np.searchsorted(
                    self.block_ptr,
                    np.arange(self.n_blocks),
                    side="right",
                )
                - 1
            )
            np.add.at(ypad, brow_of_block, contrib)
            y = ypad.reshape(-1)[:m]
        if counter is not None:
            work = self.n_blocks * br * bc
            counter.add_flops(2 * work)
            counter.add_read(
                self.block_data.nbytes
                + self.block_col.nbytes
                + self.block_ptr.nbytes
                + self.n_blocks * bc * 8
            )
            counter.add_write(y.nbytes)
        return y

    def matmat(
        self, V: np.ndarray, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        # Shared traversal: the padded block-column gather and the
        # block-row ownership map are computed once for all k columns.
        # Each column then runs matvec's exact einsum/scatter sequence
        # (gathered[c] is a C-contiguous (n_blocks, bc) slice equal to
        # xpad.reshape(-1, bc)[block_col]), keeping bit-for-bit identity;
        # a fully fused "kij,kjl->kil" einsum would re-block the
        # reduction and break it.
        V = self._coerce_rhs_block(V)
        k = V.shape[1]
        m, n = self.shape
        br, bc = self.block_shape
        # (k, M) C-order accumulator returned transposed: each column's
        # scatter result lands in a contiguous row.
        yT = np.zeros((k, m), dtype=VALUE_DTYPE)
        y = yT.T
        if self.n_blocks and k:
            n_bcols = -(-n // bc)
            Vpad = np.zeros((n_bcols * bc, k), dtype=VALUE_DTYPE)
            Vpad[:n] = V
            VpadT = np.ascontiguousarray(Vpad.T).reshape(k, n_bcols, bc)
            gathered = VpadT.take(self.block_col, axis=1)  # (k, n_blocks, bc)
            brow_of_block = (
                np.searchsorted(
                    self.block_ptr,
                    np.arange(self.n_blocks),
                    side="right",
                )
                - 1
            )
            n_brows = -(-m // br)
            for c in range(k):  # repro: noqa RDL001 — trip count is batch_k; each pass is one vectorised block einsum+scatter
                contrib = np.einsum(
                    "kij,kj->ki", self.block_data, gathered[c]
                )
                ypad = np.zeros((n_brows, br), dtype=VALUE_DTYPE)
                np.add.at(ypad, brow_of_block, contrib)
                yT[c] = ypad.reshape(-1)[:m]
        if counter is not None:
            work = self.n_blocks * br * bc
            counter.add_spmm(k)
            counter.add_flops(2 * work * k)
            counter.add_read(
                self.block_data.nbytes
                + self.block_col.nbytes
                + self.block_ptr.nbytes  # block streams: once per sweep
                + self.n_blocks * bc * 8 * k
            )
            counter.add_write(y.nbytes)
        return y

    def transpose(self) -> "BCSRMatrix":
        """Transpose preserving the (swapped) block geometry."""
        rows, cols, values = self.to_coo()
        br, bc = self.block_shape
        return BCSRMatrix.from_coo(
            cols,
            rows,
            values,
            (self.shape[1], self.shape[0]),
            block_shape=(bc, br),
        )

    def row(self, i: int) -> SparseVector:
        if not 0 <= i < self.shape[0]:
            raise IndexError("row index out of range")
        br, bc = self.block_shape
        brow = i // br
        r_in = i % br
        cols_list, vals_list = [], []
        for k in range(self.block_ptr[brow], self.block_ptr[brow + 1]):
            seg = self.block_data[k, r_in]
            nz = np.nonzero(seg)[0]
            if nz.size:
                cols_list.append(int(self.block_col[k]) * bc + nz)
                vals_list.append(seg[nz])
        if not cols_list:
            e = np.empty(0, dtype=INDEX_DTYPE)
            return SparseVector(e, np.empty(0), self.shape[1])
        return SparseVector(
            np.concatenate(cols_list),
            np.concatenate(vals_list),
            self.shape[1],
        )
