"""DIA — diagonal format.

Stores one padded array row per occupied diagonal plus an offsets
vector.  Superb for banded matrices (trefethen: DIA is the paper's pick
at 4.1x over the worst format) and hopeless for scattered sparsity,
where ``ndig`` approaches M+N-1 and nearly every stored element is
padding (Fig. 2, adult: DIA is the worst format).

Layout convention
-----------------
Diagonal *offset* ``o = col - row``.  Diagonal ``o`` holds elements
``(i, i + o)`` for ``i`` in ``[max(0, -o), min(M, N - o))``.  Every
diagonal is stored padded to the uniform length ``Ldiag = min(M, N)``,
aligned so that slot ``t`` corresponds to row ``i = max(0, -o) + t``.
Total storage is therefore ``ndig * (min(M, N) + 1)`` elements,
matching Table II's worst case of ``(min(M,N) + 1) * (M + N - 1)`` when
every diagonal is occupied.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.formats.base import (
    INDEX_DTYPE,
    VALUE_DTYPE,
    MatrixFormat,
    SparseVector,
    validate_coo,
)
from repro.perf.counters import OpCounter


def diag_span(offset: int, shape: Tuple[int, int]) -> Tuple[int, int]:
    """Valid row range ``[i0, i1)`` of diagonal ``offset`` in ``shape``."""
    m, n = shape
    i0 = max(0, -offset)
    i1 = min(m, n - offset)
    return i0, max(i0, i1)


class DIAMatrix(MatrixFormat):
    """Diagonal-format matrix.

    Attributes
    ----------
    offsets:
        Sorted occupied diagonal offsets (``col - row``), length ndig.
    data:
        ``(ndig, Ldiag)`` padded array, ``Ldiag = min(M, N)``; slot
        ``t`` of diagonal ``k`` is element ``(i0_k + t, i0_k + t +
        offsets[k])``; slots past the diagonal's true length are 0.
    """

    name = "DIA"

    def __init__(
        self,
        offsets: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
    ) -> None:
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.data = np.ascontiguousarray(data, dtype=VALUE_DTYPE)
        m, n = shape
        ldiag = min(m, n)
        if self.offsets.ndim != 1:
            raise ValueError("offsets must be 1-D")
        if self.data.shape != (self.offsets.shape[0], ldiag):
            raise ValueError(
                f"data must have shape (ndig, min(M,N)) = "
                f"({self.offsets.shape[0]}, {ldiag}); got {self.data.shape}"
            )
        if self.offsets.size > 1 and np.any(np.diff(self.offsets) <= 0):
            raise ValueError("offsets must be strictly increasing")
        if self.offsets.size and (
            self.offsets[0] <= -m or self.offsets[-1] >= n
        ):
            raise ValueError("offset out of range")
        self.shape = (int(m), int(n))
        # Valid row span per diagonal, precomputed: the matvec loop is
        # over diagonals (the paper's cost driver), so per-call span
        # arithmetic would be pure overhead.
        self._spans = [
            diag_span(int(o), self.shape) for o in self.offsets
        ]
        self._sanitize_check()

    # -- construction -------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        shape: Tuple[int, int],
    ) -> "DIAMatrix":
        rows, cols, values = validate_coo(rows, cols, values, shape)
        m, n = shape
        ldiag = min(m, n)
        offs = (cols.astype(np.int64) - rows.astype(np.int64))
        uniq = np.unique(offs)
        data = np.zeros((uniq.shape[0], ldiag), dtype=VALUE_DTYPE)
        if rows.size:
            k = np.searchsorted(uniq, offs)
            i0 = np.maximum(0, -uniq[k])
            slot = rows.astype(np.int64) - i0
            data[k, slot] = values
        return cls(uniq, data, shape)

    def to_coo(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        rows_list = []
        cols_list = []
        vals_list = []
        for k, o in enumerate(self.offsets):
            i0, i1 = diag_span(int(o), self.shape)
            seg = self.data[k, : i1 - i0]
            nz = np.nonzero(seg)[0]
            if nz.size:
                i = i0 + nz
                rows_list.append(i)
                cols_list.append(i + int(o))
                vals_list.append(seg[nz])
        if not rows_list:
            e = np.empty(0, dtype=INDEX_DTYPE)
            return e, e.copy(), np.empty(0, dtype=VALUE_DTYPE)
        rows = np.concatenate(rows_list).astype(INDEX_DTYPE)
        cols = np.concatenate(cols_list).astype(INDEX_DTYPE)
        vals = np.concatenate(vals_list).astype(VALUE_DTYPE)
        return validate_coo(rows, cols, vals, self.shape)

    # -- structure ----------------------------------------------------
    @property
    def nnz(self) -> int:
        # Stored zeros inside a diagonal's valid span are padding-free
        # slots that happen to be zero; per the logical-matrix contract
        # we count actual non-zero values.
        return int(np.count_nonzero(self.data))

    @property
    def ndig(self) -> int:
        """Number of occupied diagonals (the paper's ``ndig``)."""
        return int(self.offsets.shape[0])

    def storage_elements(self) -> int:
        # ndig padded diagonals of length min(M, N), plus the offsets
        # array: ndig * (min(M,N) + 1); at full occupancy this is Table
        # II's (min(M,N)+1) * (M+N-1).
        return self.ndig * (min(self.shape) + 1)

    def _backing_arrays(self) -> Tuple[np.ndarray, ...]:
        return (self.offsets, self.data)

    # -- kernels ------------------------------------------------------
    def matvec(
        self, x: np.ndarray, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        x = np.asarray(x, dtype=VALUE_DTYPE)
        if x.shape != (self.shape[1],):
            raise ValueError(
                f"matvec expects x of shape ({self.shape[1]},), got {x.shape}"
            )
        m, n = self.shape
        ldiag = min(m, n)
        y = np.zeros(m, dtype=VALUE_DTYPE)
        # One fused multiply-accumulate per diagonal over its full
        # stored span.  Stored zeros inside the span are processed like
        # real work — the padding cost that makes many-diagonal
        # matrices slow (Fig. 2) — while the loop count itself is
        # ndig, the paper's cost driver.
        for k, o in enumerate(self.offsets):  # repro: noqa RDL001 — trip count is ndig, the modelled cost driver
            i0, i1 = self._spans[k]
            if i1 > i0:
                y[i0:i1] += self.data[k, : i1 - i0] * x[i0 + int(o) : i1 + int(o)]
        if counter is not None:
            padded = self.ndig * ldiag
            counter.add_flops(2 * padded)
            counter.add_read(self.data.nbytes + padded * x.itemsize)
            counter.add_write(y.nbytes)
        return y

    def matmat(
        self, V: np.ndarray, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        # One walk over the diagonals for all k columns: each diagonal's
        # stored span is loaded once and broadcast-multiplied against the
        # k-wide slab of V.  The per-element multiply/accumulate matches
        # matvec's elementwise sequence exactly (no reductions), so each
        # column is bit-for-bit identical; the span arithmetic and the
        # ndig-long Python loop are paid once instead of k times.
        V = self._coerce_rhs_block(V)
        k = V.shape[1]
        m, n = self.shape
        ldiag = min(m, n)
        y = np.zeros((m, k), dtype=VALUE_DTYPE)
        if k:
            for d, o in enumerate(self.offsets):  # repro: noqa RDL001 — trip count is ndig, the modelled cost driver
                i0, i1 = self._spans[d]
                if i1 > i0:
                    y[i0:i1] += (
                        self.data[d, : i1 - i0, None]
                        * V[i0 + int(o) : i1 + int(o), :]
                    )
        if counter is not None:
            padded = self.ndig * ldiag
            counter.add_spmm(k)
            counter.add_flops(2 * padded * k)
            counter.add_read(
                self.data.nbytes + padded * V.itemsize * k
            )
            counter.add_write(y.nbytes)
        return y

    def row(self, i: int) -> SparseVector:
        if not 0 <= i < self.shape[0]:
            raise IndexError("row index out of range")
        cols = []
        vals = []
        for k, o in enumerate(self.offsets):
            i0, i1 = diag_span(int(o), self.shape)
            if i0 <= i < i1:
                v = self.data[k, i - i0]
                if v != 0.0:
                    cols.append(i + int(o))
                    vals.append(v)
        return SparseVector(
            np.asarray(cols, dtype=INDEX_DTYPE),
            np.asarray(vals, dtype=VALUE_DTYPE),
            self.shape[1],
        )
