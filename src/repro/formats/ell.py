"""ELL — ELLPACK/ITPACK format.

Stores two M x mdim arrays (values + column indices), every row padded
to the length of the *longest* row.  Excellent when rows are uniform
(adult: ELL is the paper's pick, Table VI), catastrophic when one long
row forces global padding (breast_cancer / leukemia: ELL is the worst
format at 16-35x slower).

The kernel below multiplies the full padded arrays, so the Fig. 3
slowdown-vs-``mdim`` curve comes out of real measured work.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.formats.base import (
    INDEX_DTYPE,
    VALUE_DTYPE,
    MatrixFormat,
    SparseVector,
    validate_coo,
)
from repro.perf.counters import OpCounter


class ELLMatrix(MatrixFormat):
    """ELLPACK matrix: padded 2-D ``data`` and ``indices`` arrays.

    Padding convention: unused slots hold value 0.0 and column index 0,
    which keeps the multiply well-defined (contributes ``0 * x[0]``)
    while still *costing* the padded work — exactly the inefficiency the
    paper measures.
    """

    name = "ELL"

    def __init__(
        self,
        data: np.ndarray,
        indices: np.ndarray,
        row_lengths: np.ndarray,
        shape: Tuple[int, int],
    ) -> None:
        self.data = np.ascontiguousarray(data, dtype=VALUE_DTYPE)
        self.indices = np.ascontiguousarray(indices, dtype=INDEX_DTYPE)
        self.row_lengths = np.asarray(row_lengths, dtype=np.int64)
        m, n = shape
        if self.data.ndim != 2 or self.data.shape != self.indices.shape:
            raise ValueError("data and indices must be 2-D with equal shape")
        if self.data.shape[0] != m:
            raise ValueError("data must have M rows")
        if self.row_lengths.shape != (m,):
            raise ValueError("row_lengths must have length M")
        if np.any(self.row_lengths > self.data.shape[1]):
            raise ValueError("row_lengths exceed padded width")
        self.shape = (int(m), int(n))
        self._sanitize_check()

    # -- construction -------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        shape: Tuple[int, int],
    ) -> "ELLMatrix":
        rows, cols, values = validate_coo(rows, cols, values, shape)
        m = shape[0]
        lengths = np.bincount(rows, minlength=m).astype(np.int64)
        mdim = int(lengths.max()) if m and lengths.size else 0
        data = np.zeros((m, mdim), dtype=VALUE_DTYPE)
        indices = np.zeros((m, mdim), dtype=INDEX_DTYPE)
        if rows.size:
            # Position of each nnz inside its row: running offset
            # relative to the first element of the row (input is
            # row-major sorted after validate_coo).
            row_starts = np.zeros(m + 1, dtype=np.int64)
            np.cumsum(lengths, out=row_starts[1:])
            within = np.arange(rows.size, dtype=np.int64) - row_starts[rows]
            data[rows, within] = values
            indices[rows, within] = cols
        return cls(data, indices, lengths, shape)

    def to_coo(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        m, mdim = self.data.shape
        if mdim == 0:
            e = np.empty(0, dtype=INDEX_DTYPE)
            return e, e.copy(), np.empty(0, dtype=VALUE_DTYPE)
        mask = np.arange(mdim)[None, :] < self.row_lengths[:, None]
        rows = np.repeat(np.arange(m, dtype=INDEX_DTYPE), self.row_lengths)
        cols = self.indices[mask]
        values = self.data[mask]
        return validate_coo(rows, cols, values, self.shape)

    # -- structure ----------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.row_lengths.sum())

    @property
    def mdim(self) -> int:
        """Padded width: max non-zeros in any row."""
        return int(self.data.shape[1])

    def storage_elements(self) -> int:
        # data + indices, both padded: Table II's 2*M*mdim (max 2*M*N).
        return 2 * self.data.shape[0] * self.data.shape[1]

    def _backing_arrays(self) -> Tuple[np.ndarray, ...]:
        return (self.data, self.indices, self.row_lengths)

    # -- kernels ------------------------------------------------------
    def matvec(
        self, x: np.ndarray, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        x = np.asarray(x, dtype=VALUE_DTYPE)
        if x.shape != (self.shape[1],):
            raise ValueError(
                f"matvec expects x of shape ({self.shape[1]},), got {x.shape}"
            )
        m, mdim = self.data.shape
        if mdim == 0:
            y = np.zeros(m, dtype=VALUE_DTYPE)
        else:
            # Full padded multiply: the padding (value 0, index 0) is
            # processed like real work, as on the SIMD hardware the
            # paper measures.
            y = np.einsum("ij,ij->i", self.data, x[self.indices])
        if counter is not None:
            padded = m * mdim
            counter.add_flops(2 * padded)
            counter.add_read(
                self.data.nbytes + self.indices.nbytes + padded * x.itemsize
            )
            counter.add_write(y.nbytes)
        return y

    def matmat(
        self, V: np.ndarray, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        # The padded-index gather is the traversal cost of ELL; doing it
        # once as a contiguous (k, M, mdim) block amortises it across
        # the column block.  Each per-column einsum then sees exactly
        # the operands of matvec (a C-contiguous (M, mdim) slice equal
        # to x[self.indices]), so columns are bit-for-bit identical.
        V = self._coerce_rhs_block(V)
        k = V.shape[1]
        m, mdim = self.data.shape
        # (k, M) C-order accumulator returned transposed: each einsum
        # writes a contiguous row instead of a strided column.
        yT = np.zeros((k, m), dtype=VALUE_DTYPE)
        y = yT.T
        if mdim and k:
            VT = np.ascontiguousarray(V.T)
            gathered = VT.take(self.indices, axis=1)
            for c in range(k):  # repro: noqa RDL001 — trip count is batch_k; each pass is one vectorised einsum
                yT[c] = np.einsum("ij,ij->i", self.data, gathered[c])
        if counter is not None:
            padded = m * mdim
            counter.add_spmm(k)
            counter.add_flops(2 * padded * k)
            counter.add_read(
                self.data.nbytes
                + self.indices.nbytes  # padded views streamed once
                + padded * V.itemsize * k
            )
            counter.add_write(y.nbytes)
        return y

    def row(self, i: int) -> SparseVector:
        if not 0 <= i < self.shape[0]:
            raise IndexError("row index out of range")
        k = int(self.row_lengths[i])
        idx = self.indices[i, :k]
        vals = self.data[i, :k]
        order = np.argsort(idx, kind="stable")
        return SparseVector(idx[order], vals[order], self.shape[1])

    def row_norms_sq(self) -> np.ndarray:
        return np.einsum("ij,ij->i", self.data, self.data)
