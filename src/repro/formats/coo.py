"""COO — coordinate format.

Stores ``(row, col, value)`` for every non-zero: 3*nnz elements, the
largest O(nnz) footprint (Table II) but also the most parallel-friendly
layout — every element is independent, so there is no per-row SIMD
remainder.  That is why the paper's Fig. 4 shows COO overtaking CSR as
``vdim`` grows, and why the scheduler picks COO for mnist and sector
(Table VI).

Triples are kept row-major sorted (canonical form), which makes row
extraction a binary search and conversion to CSR free.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.formats.base import (
    INDEX_DTYPE,
    VALUE_DTYPE,
    MatrixFormat,
    SparseVector,
    validate_coo,
)
from repro.perf.counters import OpCounter


class COOMatrix(MatrixFormat):
    """Coordinate-format matrix with row-major-sorted triples."""

    name = "COO"

    def __init__(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        shape: Tuple[int, int],
    ) -> None:
        rows, cols, values = validate_coo(rows, cols, values, shape)
        self.rows = rows
        self.cols = cols
        self.values = values
        self.shape = (int(shape[0]), int(shape[1]))
        self._sanitize_check()

    # -- construction -------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        shape: Tuple[int, int],
    ) -> "COOMatrix":
        return cls(rows, cols, values, shape)

    def to_coo(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self.rows.copy(), self.cols.copy(), self.values.copy()

    # -- structure ----------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.values.shape[0])

    def storage_elements(self) -> int:
        return 3 * self.nnz

    def _backing_arrays(self) -> Tuple[np.ndarray, ...]:
        return (self.rows, self.cols, self.values)

    # -- kernels ------------------------------------------------------
    def matvec(
        self, x: np.ndarray, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        x = np.asarray(x, dtype=VALUE_DTYPE)
        if x.shape != (self.shape[1],):
            raise ValueError(
                f"matvec expects x of shape ({self.shape[1]},), got {x.shape}"
            )
        if self.nnz:
            y = np.bincount(
                self.rows,
                weights=self.values * x[self.cols],
                minlength=self.shape[0],
            ).astype(VALUE_DTYPE, copy=False)
        else:
            y = np.zeros(self.shape[0], dtype=VALUE_DTYPE)
        if counter is not None:
            counter.add_flops(2 * self.nnz)
            counter.add_read(
                self.rows.nbytes
                + self.cols.nbytes
                + self.values.nbytes
                + self.nnz * x.itemsize
            )
            counter.add_write(y.nbytes)
        return y

    def matmat(
        self, V: np.ndarray, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        # One sweep over the triples per column block: the row/col index
        # streams stay cache-resident across columns and the output is
        # allocated once.  Per column the gather, multiply, and bincount
        # are exactly matvec's, so columns are bit-for-bit identical
        # (bincount's accumulation order depends only on self.rows).
        V = self._coerce_rhs_block(V)
        k = V.shape[1]
        m = self.shape[0]
        # (k, M) C-order accumulator returned transposed: each bincount
        # result lands in a contiguous row instead of a strided column.
        yT = np.zeros((k, m), dtype=VALUE_DTYPE)
        y = yT.T
        if self.nnz and k:
            for c in range(k):  # repro: noqa RDL001 — trip count is batch_k; each pass is one vectorised bincount
                yT[c] = np.bincount(
                    self.rows,
                    weights=self.values * V[:, c].take(self.cols),
                    minlength=m,
                )
        if counter is not None:
            counter.add_spmm(k)
            counter.add_flops(2 * self.nnz * k)
            counter.add_read(
                self.rows.nbytes
                + self.cols.nbytes
                + self.values.nbytes  # triple streams: once per sweep
                + self.nnz * V.itemsize * k
            )
            counter.add_write(y.nbytes)
        return y

    def row(self, i: int) -> SparseVector:
        if not 0 <= i < self.shape[0]:
            raise IndexError("row index out of range")
        lo = int(np.searchsorted(self.rows, i, side="left"))
        hi = int(np.searchsorted(self.rows, i, side="right"))
        return SparseVector(self.cols[lo:hi], self.values[lo:hi], self.shape[1])

    def row_norms_sq(self) -> np.ndarray:
        out = np.zeros(self.shape[0], dtype=VALUE_DTYPE)
        if self.nnz:
            np.add.at(out, self.rows, self.values * self.values)
        return out
