"""Sparse / dense matrix storage formats.

Implements, from scratch, the five basic storage formats the paper
schedules between (Section III.A):

========  =======================================  ====================
Format    Class                                    Work per SMSV
========  =======================================  ====================
DEN       :class:`repro.formats.dense.DenseMatrix`   ``M * N``
CSR       :class:`repro.formats.csr.CSRMatrix`       ``nnz`` (+ row loop)
COO       :class:`repro.formats.coo.COOMatrix`       ``nnz`` (3 streams)
ELL       :class:`repro.formats.ell.ELLMatrix`       ``M * mdim`` (padded)
DIA       :class:`repro.formats.dia.DIAMatrix`       ``ndig * Ldiag`` (padded)
========  =======================================  ====================

Design rules, shared by all formats:

- **Padding costs are real.**  ELL and DIA kernels compute over their
  padded arrays, so the measured slowdowns of Figs. 2-3 come from actual
  work, not from a model.
- **Exact storage accounting.**  ``storage_elements()`` returns the count
  Table II's formulas predict; tests pin the two against each other.
- **Canonical construction path.**  Every format converts through COO
  triples (``from_coo`` / ``to_coo``), which makes all pairwise
  conversions available and property-testable (round trips).
"""

from repro.formats.base import FORMAT_NAMES, MatrixFormat, SparseVector
from repro.formats.dense import DenseMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.coo import COOMatrix
from repro.formats.ell import ELLMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.bcsr import BCSRMatrix
from repro.formats.sell import (
    DEFAULT_CHUNK,
    SELLMatrix,
    sell_storage_elements,
    slice_widths_for,
)
from repro.formats.reorder import (
    PermutedMatrix,
    RCSRMatrix,
    RELLMatrix,
    RSELLMatrix,
    invert_permutation,
    sigma_window_permutation,
)
from repro.formats.convert import (
    FORMAT_CLASSES,
    convert,
    format_class,
    from_dense,
    from_scipy,
    to_scipy,
)
from repro.formats.storage import (
    StorageModel,
    storage_elements_analytic,
    storage_max,
    storage_min,
)

__all__ = [
    "MatrixFormat",
    "SparseVector",
    "FORMAT_NAMES",
    "DenseMatrix",
    "CSRMatrix",
    "COOMatrix",
    "ELLMatrix",
    "DIAMatrix",
    "CSCMatrix",
    "BCSRMatrix",
    "SELLMatrix",
    "DEFAULT_CHUNK",
    "sell_storage_elements",
    "slice_widths_for",
    "PermutedMatrix",
    "RCSRMatrix",
    "RELLMatrix",
    "RSELLMatrix",
    "sigma_window_permutation",
    "invert_permutation",
    "FORMAT_CLASSES",
    "convert",
    "format_class",
    "from_dense",
    "from_scipy",
    "to_scipy",
    "StorageModel",
    "storage_elements_analytic",
    "storage_min",
    "storage_max",
]
