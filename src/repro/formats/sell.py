"""SELL-C — sliced ELLPACK.

Rows are packed into slices of ``C`` consecutive rows; each slice is
padded only to the width of *its own* longest row.  One globally long
row therefore inflates a single slice instead of the whole matrix —
the standard cure for ELL's catastrophic padding on power-law row
lengths (breast_cancer / leukemia in the paper's Table VI are exactly
the shapes ELL loses by 16-35x).

This class packs rows in the order it is given them ("SELL-C-1").  The
full SELL-C-sigma layout — rows sorted by length within sigma-windows
so that similar-length rows share a slice — is obtained by composing
this format with the row-reordering layer in
:mod:`repro.formats.reorder` (the ``RSELL`` wrapper), which keeps the
permutation invisible to callers.

Storage is flat, row-major within each slice: row ``r`` owns the
padded segment ``data[row_starts[r] : row_starts[r] + width(slice(r))]``
with its real entries first (ascending column order) and zero padding
behind them.  The multiply runs over the *whole* padded region — the
padding costs real work, as everywhere else in this repo — but the
reduction first compresses the products back to the real entries,
which are exactly CSR's product array in CSR's order.  The same
``np.add.reduceat`` then produces bit-for-bit CSR-identical row sums
(``reduceat`` sums pairwise, so reducing over padded segments would
re-associate and drift by 1 ULP; compressing first avoids that, making
SELL's numerical contract *stronger* than ELL's documented 1-ULP).
The per-slice padded lanes still cost time on the modelled SIMD
machine — :mod:`repro.hardware.vectormachine` counts exactly the
``sum_s w_s * ceil(C_s / W)`` vector ops of the layout.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.formats.base import (
    INDEX_DTYPE,
    VALUE_DTYPE,
    MatrixFormat,
    SparseVector,
    validate_coo,
)
from repro.perf.counters import OpCounter

#: Default slice height.  Matches the modelled SIMD width of the
#: default machine (ArchCalibration.simd_width) so one slice fills the
#: vector lanes exactly once per stored column.
DEFAULT_CHUNK = 8


def slice_widths_for(row_lengths: np.ndarray, chunk: int) -> np.ndarray:
    """Per-slice padded width: max row length within each C-row slice.

    The last slice may be shorter than ``chunk``; missing rows
    contribute width 0.
    """
    lengths = np.asarray(row_lengths, dtype=np.int64)
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    m = lengths.shape[0]
    n_slices = -(-m // chunk) if m else 0
    if n_slices == 0:
        return np.zeros(0, dtype=np.int64)
    padded = np.zeros(n_slices * chunk, dtype=np.int64)
    padded[:m] = lengths
    return padded.reshape(n_slices, chunk).max(axis=1)


def sell_storage_elements(row_lengths: np.ndarray, chunk: int) -> int:
    """Analytic storage count for SELL-C over given row lengths.

    data + indices over the padded region (``2 * sum_s C_s * w_s``)
    plus the slice-pointer table (n_slices + 1) plus the per-row length
    array needed to delimit the valid prefix of each padded row.
    """
    lengths = np.asarray(row_lengths, dtype=np.int64)
    widths = slice_widths_for(lengths, chunk)
    m = lengths.shape[0]
    heights = np.minimum(chunk, m - chunk * np.arange(widths.shape[0]))
    padded = int((widths * heights).sum())
    return 2 * padded + widths.shape[0] + 1 + m


class SELLMatrix(MatrixFormat):
    """Sliced-ELL matrix with flat per-slice padded storage.

    Attributes
    ----------
    data / indices:
        Flat padded arrays of equal length ``sum_s C_s * w_s``; row
        ``r`` occupies ``[row_starts[r], row_starts[r+1])`` with its
        ``row_lengths[r]`` real entries first (ascending columns) and
        padding (value 0.0, index 0) behind.
    row_lengths:
        True ``dim_i`` per row, length M.
    chunk:
        Slice height C.  Widths are always *tight*: each slice is
        padded exactly to its own longest row, never further.
    """

    name = "SELL"

    #: Slice height used when a chunk is not given explicitly
    #: (``from_coo`` via generic conversion paths).
    default_chunk = DEFAULT_CHUNK

    def __init__(
        self,
        data: np.ndarray,
        indices: np.ndarray,
        row_lengths: np.ndarray,
        shape: Tuple[int, int],
        *,
        chunk: Optional[int] = None,
    ) -> None:
        self.data = np.ascontiguousarray(data, dtype=VALUE_DTYPE)
        self.indices = np.ascontiguousarray(indices, dtype=INDEX_DTYPE)
        self.row_lengths = np.asarray(row_lengths, dtype=np.int64)
        self.chunk = int(chunk if chunk is not None else self.default_chunk)
        m, n = shape
        if self.chunk < 1:
            raise ValueError("chunk must be >= 1")
        if self.data.ndim != 1 or self.data.shape != self.indices.shape:
            raise ValueError("data and indices must be flat with equal length")
        if self.row_lengths.shape != (m,):
            raise ValueError("row_lengths must have length M")
        if np.any(self.row_lengths < 0):
            raise ValueError("row_lengths must be non-negative")
        self.slice_widths = slice_widths_for(self.row_lengths, self.chunk)
        widths_per_row = (
            np.repeat(self.slice_widths, self.chunk)[:m]
            if m
            else np.zeros(0, dtype=np.int64)
        )
        self.row_starts = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(widths_per_row, out=self.row_starts[1:])
        if self.data.shape[0] != int(self.row_starts[-1]):
            raise ValueError(
                "data length inconsistent with slice widths "
                f"(expected {int(self.row_starts[-1])}, got {self.data.shape[0]})"
            )
        # Compression machinery for the CSR-exact reduction: position
        # of each flat slot within its row, the mask of real (non-pad)
        # slots, and CSR-style starts over the compressed products.
        total = self.data.shape[0]
        if total:
            row_of_flat = np.repeat(
                np.arange(m, dtype=np.int64), widths_per_row
            )
            pos = np.arange(total, dtype=np.int64) - self.row_starts[row_of_flat]
            self._valid = pos < self.row_lengths[row_of_flat]
        else:
            self._valid = np.zeros(0, dtype=bool)
        self._csr_starts = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(self.row_lengths, out=self._csr_starts[1:])
        self.shape = (int(m), int(n))
        self._sanitize_check()

    # -- construction -------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        shape: Tuple[int, int],
        *,
        chunk: Optional[int] = None,
    ) -> "SELLMatrix":
        rows, cols, values = validate_coo(rows, cols, values, shape)
        m = shape[0]
        lengths = np.bincount(rows, minlength=m).astype(np.int64)
        if chunk is None:
            # No explicit slice height: a warm tuning-cache entry for
            # this machine and shape class overrides the static
            # default.  Row sums are bitwise chunk-independent (the
            # compress-then-reduceat contract above), so this can only
            # move time, never values.
            from repro.tune.cache import tuned_for_lengths

            chunk = tuned_for_lengths(
                "sell_chunk", "chunk", lengths, shape,
                default=cls.default_chunk,
            )
        C = int(chunk)
        widths = slice_widths_for(lengths, C)
        widths_per_row = (
            np.repeat(widths, C)[:m] if m else np.zeros(0, dtype=np.int64)
        )
        row_starts = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(widths_per_row, out=row_starts[1:])
        total = int(row_starts[-1])
        data = np.zeros(total, dtype=VALUE_DTYPE)
        indices = np.zeros(total, dtype=INDEX_DTYPE)
        if rows.size:
            # Offset of each nnz inside its row (input is row-major
            # sorted after validate_coo), then scatter into the padded
            # flat position.
            csr_starts = np.zeros(m + 1, dtype=np.int64)
            np.cumsum(lengths, out=csr_starts[1:])
            within = np.arange(rows.size, dtype=np.int64) - csr_starts[rows]
            flat = row_starts[rows] + within
            data[flat] = values
            indices[flat] = cols
        return cls(data, indices, lengths, shape, chunk=C)

    def to_coo(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        m = self.shape[0]
        if self.data.shape[0] == 0:
            e = np.empty(0, dtype=INDEX_DTYPE)
            return e, e.copy(), np.empty(0, dtype=VALUE_DTYPE)
        rows = np.repeat(
            np.arange(m, dtype=INDEX_DTYPE), self.row_lengths
        )
        return validate_coo(
            rows, self.indices[self._valid], self.data[self._valid], self.shape
        )

    # -- structure ----------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.row_lengths.sum())

    @property
    def n_slices(self) -> int:
        return int(self.slice_widths.shape[0])

    @property
    def padded_elements(self) -> int:
        """Stored slots including padding: ``sum_s C_s * w_s``."""
        return int(self.data.shape[0])

    def storage_elements(self) -> int:
        return 2 * self.padded_elements + self.n_slices + 1 + self.shape[0]

    def _backing_arrays(self) -> Tuple[np.ndarray, ...]:
        return (self.data, self.indices, self.row_lengths)

    # -- kernels ------------------------------------------------------
    def matvec(
        self, x: np.ndarray, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        x = np.asarray(x, dtype=VALUE_DTYPE)
        if x.shape != (self.shape[1],):
            raise ValueError(
                f"matvec expects x of shape ({self.shape[1]},), got {x.shape}"
            )
        m = self.shape[0]
        y = np.zeros(m, dtype=VALUE_DTYPE)
        if self.padded_elements:
            # Padded multiply (padding costs work), then compress to
            # the real products — exactly CSR's product array — so the
            # reduceat association is bit-for-bit CSR's.
            prod = (self.data * x[self.indices])[self._valid]
            starts = self._csr_starts[:-1]
            nonempty = starts < self._csr_starts[1:]
            if np.any(nonempty):
                y[nonempty] = np.add.reduceat(prod, starts[nonempty])
        if counter is not None:
            padded = self.padded_elements
            counter.add_flops(2 * padded)
            counter.add_read(
                self.data.nbytes
                + self.indices.nbytes
                + padded * x.itemsize  # gathered x elements (pads included)
            )
            counter.add_write(y.nbytes)
        return y

    def matmat(
        self, V: np.ndarray, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        # CSR's block formulation over the padded flat storage: one
        # (k, padded) product buffer, one axis=1 reduceat segmenting
        # every column at once.  Column c is bit-for-bit matvec(V[:,c]).
        V = self._coerce_rhs_block(V)
        k = V.shape[1]
        m = self.shape[0]
        yT = np.zeros((k, m), dtype=VALUE_DTYPE)
        y = yT.T
        if self.padded_elements and k:
            starts = self._csr_starts[:-1]
            nonempty = starts < self._csr_starts[1:]
            prod = np.empty((k, self.nnz), dtype=VALUE_DTYPE)
            for c in range(k):  # repro: noqa RDL001 — trip count is batch_k; each pass is one vectorised gather+multiply
                np.compress(
                    self._valid,
                    self.data * V[:, c].take(self.indices),
                    out=prod[c],
                )
            if np.any(nonempty):
                segs = np.add.reduceat(prod, starts[nonempty], axis=1)
                yT[:, nonempty] = segs
        if counter is not None:
            padded = self.padded_elements
            counter.add_spmm(k)
            counter.add_flops(2 * padded * k)
            counter.add_read(
                self.data.nbytes
                + self.indices.nbytes
                + padded * V.itemsize * k
            )
            counter.add_write(y.nbytes)
        return y

    def row(self, i: int) -> SparseVector:
        if not 0 <= i < self.shape[0]:
            raise IndexError("row index out of range")
        lo = int(self.row_starts[i])
        k = int(self.row_lengths[i])
        return SparseVector(
            self.indices[lo : lo + k], self.data[lo : lo + k], self.shape[1]
        )

    def row_norms_sq(self) -> np.ndarray:
        out = np.zeros(self.shape[0], dtype=VALUE_DTYPE)
        if self.padded_elements:
            sq = (self.data * self.data)[self._valid]
            starts = self._csr_starts[:-1]
            nonempty = starts < self._csr_starts[1:]
            if np.any(nonempty):
                out[nonempty] = np.add.reduceat(sq, starts[nonempty])
        return out
