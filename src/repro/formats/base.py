"""Base classes shared by all storage formats.

Two abstractions live here:

- :class:`SparseVector` — an (indices, values) pair used for the sparse
  side of the SMSV (sparse-matrix x sparse-vector) product that
  dominates each SMO step.  The paper stresses (Related Work) that SMO's
  kernel is *not* SpMV: the vector is itself a sparse row of the matrix,
  picked at random each iteration.
- :class:`MatrixFormat` — the interface every format implements.  The
  SMO solver, the scheduler, and the hardware models all program against
  this interface only.
"""

from __future__ import annotations

import abc
from typing import ClassVar, Optional, Tuple

import numpy as np

from repro.perf.counters import OpCounter

#: Canonical format order used in tables/figures throughout the paper.
FORMAT_NAMES: Tuple[str, ...] = ("ELL", "CSR", "COO", "DEN", "DIA")

#: dtype used for all numeric payloads; 8-byte floats as in the paper's
#: double-precision kernels.
VALUE_DTYPE = np.float64
#: dtype for index arrays (4-byte ints, the common HPC choice).
INDEX_DTYPE = np.int32

VALUE_ITEMSIZE = np.dtype(VALUE_DTYPE).itemsize
INDEX_ITEMSIZE = np.dtype(INDEX_DTYPE).itemsize


class SparseVector:
    """Immutable sparse vector: sorted indices + matching values.

    Parameters
    ----------
    indices:
        Strictly increasing positions of the (potentially) non-zero
        entries.
    values:
        Entry values, same length as ``indices``.  Explicit zeros are
        allowed (they arise from format round trips) and are preserved.
    length:
        Logical dimension of the vector.
    """

    __slots__ = ("indices", "values", "length")

    def __init__(
        self,
        indices: np.ndarray,
        values: np.ndarray,
        length: int,
    ) -> None:
        indices = np.asarray(indices, dtype=INDEX_DTYPE)
        values = np.asarray(values, dtype=VALUE_DTYPE)
        if indices.ndim != 1 or values.ndim != 1:
            raise ValueError("indices and values must be 1-D")
        if indices.shape[0] != values.shape[0]:
            raise ValueError("indices and values must have equal length")
        if length < 0:
            raise ValueError("length must be non-negative")
        if indices.size:
            if np.any(np.diff(indices) <= 0):
                order = np.argsort(indices, kind="stable")
                indices = indices[order]
                values = values[order]
                if np.any(np.diff(indices) == 0):
                    raise ValueError("duplicate indices in SparseVector")
            if indices[0] < 0 or indices[-1] >= length:
                raise ValueError("index out of range")
        self.indices = indices
        self.values = values
        self.length = int(length)

    @classmethod
    def from_dense(cls, x: np.ndarray) -> "SparseVector":
        x = np.asarray(x, dtype=VALUE_DTYPE).ravel()
        idx = np.nonzero(x)[0].astype(INDEX_DTYPE)
        return cls(idx, x[idx], x.shape[0])

    @property
    def nnz(self) -> int:
        return int(self.indices.shape[0])

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.length, dtype=VALUE_DTYPE)
        out[self.indices] = self.values
        return out

    def dot(self, other: "SparseVector") -> float:
        """Sparse-sparse dot product via sorted-index intersection."""
        if self.length != other.length:
            raise ValueError("dimension mismatch")
        common, ia, ib = np.intersect1d(
            self.indices, other.indices, assume_unique=True, return_indices=True
        )
        del common
        if ia.size == 0:
            return 0.0
        return float(self.values[ia] @ other.values[ib])

    def norm_sq(self) -> float:
        return float(self.values @ self.values)

    def scale(self, alpha: float) -> "SparseVector":
        return SparseVector(self.indices.copy(), self.values * alpha, self.length)

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SparseVector(nnz={self.nnz}, length={self.length})"


class MatrixFormat(abc.ABC):
    """Abstract matrix stored in one particular layout.

    Subclasses are immutable after construction; all mutation happens by
    rebuilding through :meth:`from_coo`.  Kernels accept an optional
    :class:`~repro.perf.counters.OpCounter` so callers can audit traffic
    and flops without a global flag.
    """

    #: Short uppercase name as used in the paper's tables.
    name: ClassVar[str] = "ABSTRACT"

    shape: Tuple[int, int]

    # -- construction -------------------------------------------------
    @classmethod
    @abc.abstractmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        shape: Tuple[int, int],
    ) -> "MatrixFormat":
        """Build from coordinate triples (duplicates are an error)."""

    @abc.abstractmethod
    def to_coo(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return row-major-sorted coordinate triples of stored non-zeros.

        Explicit zeros introduced by padding are *not* returned; round
        trips therefore preserve the logical matrix exactly.
        """

    # -- structure ----------------------------------------------------
    @property
    @abc.abstractmethod
    def nnz(self) -> int:
        """Number of stored logical non-zeros (padding excluded)."""

    @abc.abstractmethod
    def storage_elements(self) -> int:
        """Number of stored array elements, padding *included*.

        This is the quantity Table II bounds; the per-format unit tests
        check it against :func:`repro.formats.storage.
        storage_elements_analytic`.
        """

    def storage_bytes(self) -> int:
        """Actual bytes of the backing arrays (values + indices)."""
        return int(
            sum(arr.nbytes for arr in self._backing_arrays())
        )

    @abc.abstractmethod
    def _backing_arrays(self) -> Tuple[np.ndarray, ...]:
        """The arrays that constitute the stored representation."""

    # -- kernels ------------------------------------------------------
    @abc.abstractmethod
    def matvec(
        self, x: np.ndarray, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        """Dense ``y = A @ x``; the computational core of the SMSV."""

    def smsv(
        self, v: SparseVector, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        """Sparse-matrix x sparse-vector product ``y = A @ v``.

        Default implementation scatters ``v`` to dense (O(N), negligible
        next to the matvec) then runs the format's matvec — exactly the
        strategy the paper's kernels use, since the matrix side dominates.
        Formats with a cheaper gather path override this.
        """
        x = v.to_dense()
        if counter is not None:
            counter.add_write(x.nbytes)
        return self.matvec(x, counter)

    def _coerce_rhs_block(self, V: np.ndarray) -> np.ndarray:
        """Validate a ``(N, k)`` right-hand-side block for :meth:`matmat`."""
        V = np.asarray(V, dtype=VALUE_DTYPE)
        if V.ndim != 2 or V.shape[0] != self.shape[1]:
            raise ValueError(
                f"matmat expects V of shape ({self.shape[1]}, k), "
                f"got {V.shape}"
            )
        return V

    def matmat(
        self, V: np.ndarray, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        """Blocked product ``Y = A @ V`` for a dense ``(N, k)`` block.

        Column ``c`` of the result is bit-for-bit identical to
        ``matvec(V[:, c])`` — the contract every override must keep, so
        fused SpMM callers (the dual-row SMO path) reproduce the exact
        floating-point trajectory of the single-vector kernels.  The
        default runs k independent matvec sweeps; formats override it to
        traverse their storage once and amortise index gathers across
        the column block.
        """
        V = self._coerce_rhs_block(V)
        k = V.shape[1]
        if counter is not None:
            counter.add_spmm(k)
        y = np.empty((self.shape[0], k), dtype=VALUE_DTYPE)
        for c in range(k):  # repro: noqa RDL001 — fallback path: trip count is batch_k, each pass a full vectorised matvec
            y[:, c] = self.matvec(V[:, c], counter)
        return y

    def smsv_multi(
        self, vectors, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        """Multi-vector SMSV: ``Y[:, c] = A @ vectors[c]`` in one sweep.

        Each sparse vector is scattered into a column of one dense
        ``(N, k)`` block (exactly what :meth:`smsv` does per vector), so
        column ``c`` matches ``smsv(vectors[c])`` bit-for-bit; the block
        then goes through :meth:`matmat` so the matrix is traversed once
        for all k right-hand sides.

        The block is built transposed — ``(k, N)`` C-order, passed as
        its ``(N, k)`` F-order view — so each scatter writes a
        contiguous row and each per-column gather in the format kernels
        reads contiguous memory.  Layout only; the values are the same.
        """
        vectors = list(vectors)
        n = self.shape[1]
        for v in vectors:  # repro: noqa RDL001 — trip count is batch_k; O(1) length validation per vector
            if v.length != n:
                raise ValueError(
                    f"smsv_multi expects vectors of length {n}, "
                    f"got {v.length}"
                )
        Vk = np.zeros((len(vectors), n), dtype=VALUE_DTYPE)
        for c, v in enumerate(vectors):  # repro: noqa RDL001 — trip count is batch_k; each pass is one O(nnz_v) scatter
            Vk[c, v.indices] = v.values
        if counter is not None:
            counter.add_write(Vk.nbytes)
        return self.matmat(Vk.T, counter)

    @abc.abstractmethod
    def row(self, i: int) -> SparseVector:
        """Extract row ``i`` as a sparse vector (SMO's X_high / X_low)."""

    def row_norms_sq(self) -> np.ndarray:
        """Squared 2-norm of every row (needed by the Gaussian kernel).

        Default goes through :meth:`to_coo`; formats override when they
        can do better.
        """
        rows, _cols, values = self.to_coo()
        out = np.zeros(self.shape[0], dtype=VALUE_DTYPE)
        np.add.at(out, rows, values * values)
        return out

    def to_dense(self) -> np.ndarray:
        rows, cols, values = self.to_coo()
        out = np.zeros(self.shape, dtype=VALUE_DTYPE)
        out[rows, cols] = values
        return out

    def transpose(self) -> "MatrixFormat":
        """The transposed matrix, in this same format.

        Goes through COO (swap the coordinate roles); note the format
        family changes meaning under transposition — a CSR transpose
        stored as CSR is what a CSC view of the original would be, and
        an ELL transpose pads by *column* lengths of the original.
        """
        rows, cols, values = self.to_coo()
        return type(self).from_coo(
            cols, rows, values, (self.shape[1], self.shape[0])
        )

    @property
    def T(self) -> "MatrixFormat":
        """Alias for :meth:`transpose` (NumPy idiom)."""
        return self.transpose()

    # -- misc ---------------------------------------------------------
    def _sanitize_check(self) -> None:
        """Validate structural invariants when ``REPRO_SANITIZE=1``.

        Every concrete format calls this at the end of ``__init__`` so
        the sanitizer sees each matrix the moment it exists.  A no-op
        unless the environment opts in, keeping construction free on
        the hot path.  See :mod:`repro.analysis.sanitize`.
        """
        import os

        if os.environ.get("REPRO_SANITIZE", "").strip().lower() in (
            "", "0", "false", "no", "off",
        ):
            return
        from repro.analysis.sanitize import check_format

        check_format(self)

    @property
    def density(self) -> float:
        m, n = self.shape
        total = m * n
        return self.nnz / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(shape={self.shape}, nnz={self.nnz}, "
            f"storage={self.storage_elements()})"
        )


def validate_coo(
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
    shape: Tuple[int, int],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Validate and canonicalise COO triples (sort row-major, no dups).

    Shared by every ``from_coo`` implementation so all formats agree on
    what a legal matrix is.
    """
    rows = np.asarray(rows, dtype=INDEX_DTYPE).ravel()
    cols = np.asarray(cols, dtype=INDEX_DTYPE).ravel()
    values = np.asarray(values, dtype=VALUE_DTYPE).ravel()
    if not (rows.shape == cols.shape == values.shape):
        raise ValueError("rows, cols, values must have equal length")
    m, n = shape
    if m < 0 or n < 0:
        raise ValueError("shape must be non-negative")
    if rows.size:
        if rows.min() < 0 or rows.max() >= m:
            raise ValueError("row index out of range")
        if cols.min() < 0 or cols.max() >= n:
            raise ValueError("column index out of range")
    order = np.lexsort((cols, rows))
    rows, cols, values = rows[order], cols[order], values[order]
    if rows.size > 1:
        same = (np.diff(rows) == 0) & (np.diff(cols) == 0)
        if np.any(same):
            raise ValueError("duplicate coordinates in COO input")
    return rows, cols, values
