"""repro — Runtime Data Layout Scheduling for Machine Learning Datasets.

A from-scratch reproduction of You & Demmel (ICPP 2017): a runtime
system that picks the right sparse/dense storage format (DEN / CSR /
COO / ELL / DIA) for SMO-based SVM training, plus the paper's DNN
auto-tuning (batch size / learning rate / momentum) and
price-per-speedup hardware selection.

Quick start::

    import numpy as np
    from repro import AdaptiveSVC, schedule_layout, from_dense

    X = np.random.default_rng(0).random((500, 40))
    y = np.where(X @ np.ones(40) > 20, 1.0, -1.0)

    clf = AdaptiveSVC("gaussian", gamma=0.1).fit(X, y)
    print(clf.chosen_format, clf.score(X, y))

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.formats` — the five storage formats and their kernels
- :mod:`repro.features` — the nine Table IV dataset parameters
- :mod:`repro.core` — the layout scheduler (rules / cost model / probe)
- :mod:`repro.svm` — SMO, SVC, AdaptiveSVC
- :mod:`repro.baselines` — LIBSVM-style and GPUSVM-style fixed layouts
- :mod:`repro.dnn` — NumPy CNN framework + trainer
- :mod:`repro.tuning` — B/eta/mu auto-tuning and Table VII pipeline
- :mod:`repro.hardware` — machine catalog, roofline, SIMD model, pricing
- :mod:`repro.data` — synthetic generators, Table V clones, CIFAR stand-in
- :mod:`repro.perf` / :mod:`repro.parallel` — measurement and threading
- :mod:`repro.analysis` — RDL invariant linter + runtime format sanitizer
"""

from repro.core import LayoutScheduler, schedule_layout
from repro.features import DatasetProfile, extract_profile
from repro.formats import (
    COOMatrix,
    CSRMatrix,
    DenseMatrix,
    DIAMatrix,
    ELLMatrix,
    FORMAT_NAMES,
    MatrixFormat,
    SparseVector,
    convert,
    from_dense,
)
from repro.svm import SVC, AdaptiveSVC, MulticlassSVC

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "LayoutScheduler",
    "schedule_layout",
    "DatasetProfile",
    "extract_profile",
    "MatrixFormat",
    "SparseVector",
    "DenseMatrix",
    "CSRMatrix",
    "COOMatrix",
    "ELLMatrix",
    "DIAMatrix",
    "FORMAT_NAMES",
    "convert",
    "from_dense",
    "SVC",
    "MulticlassSVC",
    "AdaptiveSVC",
]
