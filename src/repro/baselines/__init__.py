"""Comparison baselines from the paper's evaluation.

- :class:`LibSVMStyleSVC` — emulates *parallel LIBSVM*: CSR hardcoded
  for every dataset, no kernel-row cache, and a deliberately
  scalar-style (block-looped) CSR kernel standing in for LIBSVM's
  non-vectorised C row loop.  The paper reports its own fixed-CSR code
  is ~3x faster than LIBSVM's CSR path; the block-looped kernel
  reproduces a gap of that order on this substrate.
- :class:`GPUSVMStyleSVC` — emulates *GPUSVM*: DEN hardcoded for every
  dataset (dense storage regardless of sparsity), trading memory for
  regular access exactly as Catanzaro's implementation does.
- :class:`FixedFormatSVC` — the general fixed-layout SVC both of the
  above specialise; also the "non-adaptive case" used as the worst-
  format baseline in Table VI.
"""

from repro.baselines.fixed import FixedFormatSVC, GPUSVMStyleSVC
from repro.baselines.libsvm_style import LibSVMStyleSVC, rowloop_csr_matvec

__all__ = [
    "FixedFormatSVC",
    "GPUSVMStyleSVC",
    "LibSVMStyleSVC",
    "rowloop_csr_matvec",
]
