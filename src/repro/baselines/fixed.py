"""Fixed-format SVMs: the non-adaptive baselines.

Existing tools hardcode one layout (paper Section I): LIBSVM uses CSR
everywhere, GPUSVM uses DEN everywhere.  :class:`FixedFormatSVC`
captures the pattern — convert the input to the fixed format, then train
identically to :class:`~repro.svm.svc.SVC` — so every speedup comparison
in the benchmark suite differs from the adaptive system *only* in the
layout decision.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.formats.base import MatrixFormat
from repro.formats.convert import convert, format_class
from repro.perf.counters import OpCounter
from repro.svm.kernels import Kernel
from repro.svm.svc import SVC, MatrixLike, _as_matrix


class FixedFormatSVC(SVC):
    """An SVC that always stores the training matrix in one format.

    Parameters
    ----------
    fmt:
        The hardcoded storage format name.
    (rest as for :class:`SVC`)
    """

    def __init__(
        self,
        fmt: str,
        kernel: Union[str, Kernel] = "linear",
        *,
        C: float = 1.0,
        tol: float = 1e-3,
        max_iter: int = 100_000,
        cache_rows: int = 256,
        **kernel_params: float,
    ) -> None:
        super().__init__(
            kernel,
            C=C,
            tol=tol,
            max_iter=max_iter,
            cache_rows=cache_rows,
            **kernel_params,
        )
        # Validate eagerly: a typo should fail at construction.
        format_class(fmt)
        self.fmt = fmt.upper()

    def fit(
        self,
        X: MatrixLike,
        y: np.ndarray,
        *,
        counter: Optional[OpCounter] = None,
    ) -> "FixedFormatSVC":
        matrix = convert(_as_matrix(X), self.fmt)
        super().fit(matrix, y, counter=counter)
        return self


class GPUSVMStyleSVC(FixedFormatSVC):
    """GPUSVM emulation: dense storage for every dataset.

    Strong on genuinely dense data (gisette, epsilon), pays the full
    ``M * N`` storage and compute on sparse data (sector's density of
    0.003 makes DEN the worst format there, Table VI).
    """

    def __init__(self, kernel: Union[str, Kernel] = "linear", **kw) -> None:
        super().__init__("DEN", kernel, **kw)
