"""Parallel-LIBSVM emulation (the paper's Fig. 7 baseline).

LIBSVM fixes CSR and evaluates kernel rows with scalar C loops; the
paper's own CSR kernel is vectorised and ~3x faster, and its *adaptive*
system is 1.2-16.5x faster (4x average).  To reproduce that two-level
gap on a NumPy substrate we keep the identical SMO algorithm but swap
in a CSR matvec that processes rows in small Python-level blocks —
the same work, minus the long-vector efficiency, mirroring scalar-vs-
vectorised inner loops.  The block size calibrates the efficiency gap;
the default reproduces a LIBSVM-like ~3x penalty at Table V sizes.

No kernel-row caching either (LIBSVM's cache exists but is defeated by
SMO's random row access pattern at these working-set sizes; disabling
it keeps the baseline's measured cost stable and conservative).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.formats.base import VALUE_DTYPE, MatrixFormat, SparseVector
from repro.formats.csr import CSRMatrix
from repro.formats.convert import convert
from repro.perf.counters import OpCounter
from repro.svm.kernels import Kernel, make_kernel
from repro.svm.svc import SVC, MatrixLike, _as_matrix


def rowloop_csr_matvec(
    matrix: CSRMatrix,
    x: np.ndarray,
    *,
    block: int = 8,
    counter: Optional[OpCounter] = None,
) -> np.ndarray:
    """CSR matvec with a Python-level loop over small row blocks.

    Performs exactly the same flops as the vectorised kernel; the
    per-block interpreter overhead stands in for LIBSVM's scalar inner
    loops.  ``block`` controls the emulated efficiency gap (smaller =
    slower baseline).
    """
    if block < 1:
        raise ValueError("block must be >= 1")
    m = matrix.shape[0]
    y = np.zeros(m, dtype=VALUE_DTYPE)
    ptr = matrix.row_ptr
    vals = matrix.values
    cols = matrix.col_idx
    for start in range(0, m, block):
        stop = min(start + block, m)
        lo, hi = int(ptr[start]), int(ptr[stop])
        if hi == lo:
            continue
        seg_vals = vals[lo:hi]
        seg_cols = cols[lo:hi]
        prod = seg_vals * x[seg_cols]
        starts = ptr[start:stop] - lo
        nonempty = starts < (ptr[start + 1 : stop + 1] - lo)
        if np.any(nonempty):
            y[start:stop][nonempty] = np.add.reduceat(
                prod, starts[nonempty]
            )
    if counter is not None:
        counter.add_flops(2 * matrix.nnz)
        counter.add_read(
            vals.nbytes + cols.nbytes + ptr.nbytes + matrix.nnz * x.itemsize
        )
        counter.add_write(y.nbytes)
    return y


class _RowLoopCSR(CSRMatrix):
    """A CSRMatrix whose matvec uses the block-looped kernel."""

    def __init__(self, base: CSRMatrix, block: int) -> None:
        super().__init__(base.values, base.col_idx, base.row_ptr, base.shape)
        self._block = block

    def matvec(self, x, counter=None):
        x = np.asarray(x, dtype=VALUE_DTYPE)
        if x.shape != (self.shape[1],):
            raise ValueError(
                f"matvec expects x of shape ({self.shape[1]},), got {x.shape}"
            )
        return rowloop_csr_matvec(self, x, block=self._block, counter=counter)


class LibSVMStyleSVC(SVC):
    """The parallel-LIBSVM stand-in: fixed CSR, scalar-style kernel.

    Parameters
    ----------
    block:
        Row-block granularity of the emulated scalar loop; 8 reproduces
        a ~3x gap versus this library's vectorised CSR at Table V
        dataset sizes (the ratio the paper reports between LIBSVM's CSR
        and its own).
    """

    def __init__(
        self,
        kernel: Union[str, Kernel] = "linear",
        *,
        C: float = 1.0,
        tol: float = 1e-3,
        max_iter: int = 100_000,
        block: int = 8,
        **kernel_params: float,
    ) -> None:
        super().__init__(
            kernel,
            C=C,
            tol=tol,
            max_iter=max_iter,
            cache_rows=0,
            **kernel_params,
        )
        if block < 1:
            raise ValueError("block must be >= 1")
        self.block = block

    def fit(
        self,
        X: MatrixLike,
        y: np.ndarray,
        *,
        counter: Optional[OpCounter] = None,
    ) -> "LibSVMStyleSVC":
        csr = convert(_as_matrix(X), "CSR")
        assert isinstance(csr, CSRMatrix)
        matrix = _RowLoopCSR(csr, self.block)
        SVC.fit(self, matrix, y, counter=counter)
        return self
