"""Sequential Minimal Optimization — paper Algorithm 1, plus the serial
refinements its related-work section catalogues.

The solver maintains the optimality vector ``f_i = sum_j alpha_j y_j
K(X_i, X_j) - y_i`` incrementally (Eq. (4)); each iteration:

1. selects a violating pair — either the paper's maximal-violating pair
   (``working_set="first"``: ``high`` = argmin f over ``I_high``,
   ``low`` = argmax f over ``I_low``; Steps 6-10) or the second-order
   rule of Fan, Chen & Lin 2005 that LIBSVM uses
   (``working_set="second"``: ``low`` maximises the guaranteed dual
   gain ``(f_j - f_high)^2 / eta_j``),
2. solves the two-variable subproblem analytically (Eqs. (5)-(6), with
   box clipping to ``[0, C]``),
3. updates ``f`` with the two freshly computed kernel rows.

The two kernel rows are the bottleneck: each is one SMSV in whatever
format the matrix is stored — which is precisely the cost the layout
scheduler controls.  An LRU row cache (LIBSVM-style) avoids recomputing
rows for indices that re-enter the working set.

**Shrinking** (Joachims 1999; ``shrink_every > 0``): samples whose
multiplier is stuck at a bound and whose f lies outside the active
``[b_high, b_low]`` window are removed from the working problem, and
the data matrix is *physically rebuilt* on the active rows — so kernel
rows genuinely get cheaper, in whatever layout the scheduler chose.
When the shrunken problem converges, f is reconstructed for the
inactive samples from the support vectors and optimality is re-verified
on the full problem (un-shrinking), exactly LIBSVM's protocol.

Termination follows Step 12: stop when ``b_low <= b_high + 2 * tol``
(duality gap closed); the bias is ``b = (b_high + b_low) / 2``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

import numpy as np

from repro.formats.base import MatrixFormat
from repro.obs.trace import get_tracer
from repro.perf.counters import OpCounter
from repro.svm.kernels import Kernel

WORKING_SET_RULES = ("first", "second")


@dataclass
class SMOResult:
    """Outcome of one binary SMO run."""

    alpha: np.ndarray  #: Lagrange multipliers, length M
    b: float  #: bias, ``(b_high + b_low) / 2``
    iterations: int
    converged: bool
    b_high: float
    b_low: float
    #: final optimality vector (useful for warm starts / diagnostics)
    f: np.ndarray = field(repr=False, default=None)
    kernel_rows_computed: int = 0
    kernel_rows_cached: int = 0
    #: shrinking statistics
    shrink_events: int = 0
    unshrink_events: int = 0
    min_active: int = 0

    @property
    def n_support(self) -> int:
        return int(np.count_nonzero(self.alpha > 1e-12))

    def objective(self, y: np.ndarray) -> float:
        """Dual objective F(alpha) (Eq. (1)) from the maintained f.

        Uses the identity ``sum_i alpha_i y_i f_i =
        sum_ij alpha_i alpha_j y_i y_j K_ij - sum_i alpha_i y_i^2``,
        valid because f is maintained exactly; so
        ``F = sum alpha - (sum_i alpha_i y_i (f_i + y_i)) / 2``.
        """
        a, f = self.alpha, self.f
        return float(a.sum() - 0.5 * np.sum(a * y * (f + y)))


class _RowCache:
    """Bounded LRU cache of kernel rows keyed by sample index.

    ``get`` refreshes recency (true LRU, not FIFO): a row that keeps
    re-entering the working set stays resident while cold rows age out.
    Capacity can be given directly in rows or derived from a memory
    budget via :meth:`from_budget_mb` — LIBSVM's ``-m`` semantics, where
    the budget buys ``floor(mb * 2^20 / row_bytes)`` resident rows.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = max(0, int(capacity))
        self._store: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @classmethod
    def from_budget_mb(cls, mb: float, row_bytes: int) -> "_RowCache":
        """Cache sized by a memory budget in MB (LIBSVM ``-m``).

        ``row_bytes`` is the footprint of one cached kernel row
        (``8 * M`` for float64 rows of an M-sample problem).  A budget
        too small for even one row disables caching, mirroring
        ``cache_rows=0``.
        """
        if mb < 0:
            raise ValueError("cache budget must be >= 0 MB")
        if row_bytes <= 0:
            return cls(0)
        return cls(int(mb * 1024 * 1024) // int(row_bytes))

    def get(self, i: int) -> Optional[np.ndarray]:
        if self.capacity == 0:
            self.misses += 1
            return None
        row = self._store.get(i)
        if row is None:
            self.misses += 1
            return None
        self._store.move_to_end(i)
        self.hits += 1
        return row

    def put(self, i: int, row: np.ndarray) -> None:
        if self.capacity == 0:
            return
        self._store[i] = row
        self._store.move_to_end(i)
        if len(self._store) > self.capacity:
            self._store.popitem(last=False)

    def clear(self) -> None:
        self._store.clear()


class _ActiveSet:
    """The (possibly shrunken) working problem.

    Keeps the full matrix for row extraction plus a physically rebuilt
    submatrix over the active rows, so that kernel rows cost
    O(active nnz) — real savings in the chosen layout.
    """

    def __init__(self, X: MatrixFormat) -> None:
        self.full = X
        self.m = X.shape[0]
        self.active = np.ones(self.m, dtype=bool)
        self.sub: MatrixFormat = X
        self.sub_ids = np.arange(self.m)  # global id of each sub row
        self._coo = None  # lazy cache of the full triples

    @property
    def n_active(self) -> int:
        return int(self.active.sum())

    def rebuild(self) -> None:
        """Rebuild the submatrix over the currently active rows."""
        if self._coo is None:
            self._coo = self.full.to_coo()
        rows, cols, values = self._coo
        ids = np.nonzero(self.active)[0]
        lookup = np.full(self.m, -1, dtype=np.int64)
        lookup[ids] = np.arange(ids.shape[0])
        keep = lookup[rows] >= 0
        self.sub = type(self.full).from_coo(
            lookup[rows[keep]],
            cols[keep],
            values[keep],
            (ids.shape[0], self.full.shape[1]),
        )
        self.sub_ids = ids

    def submatrix_of(self, mask: np.ndarray):
        """Build a one-off submatrix over an arbitrary row mask (used
        for f reconstruction over the inactive rows)."""
        if self._coo is None:
            self._coo = self.full.to_coo()
        rows, cols, values = self._coo
        ids = np.nonzero(mask)[0]
        lookup = np.full(self.m, -1, dtype=np.int64)
        lookup[ids] = np.arange(ids.shape[0])
        keep = lookup[rows] >= 0
        sub = type(self.full).from_coo(
            lookup[rows[keep]],
            cols[keep],
            values[keep],
            (ids.shape[0], self.full.shape[1]),
        )
        return sub, ids


def smo_train(
    X: MatrixFormat,
    y: np.ndarray,
    kernel: Kernel,
    *,
    C: float = 1.0,
    tol: float = 1e-3,
    max_iter: int = 100_000,
    cache_rows: int = 256,
    cache_mb: Optional[float] = None,
    working_set: str = "first",
    shrink_every: int = 0,
    fuse_rows: bool = True,
    initial_alpha: Optional[np.ndarray] = None,
    counter: Optional[OpCounter] = None,
    on_iteration: Optional[Callable[[int, float, float], None]] = None,
) -> SMOResult:
    """Train a binary SVM with SMO (Algorithm 1 + optional refinements).

    Parameters
    ----------
    X:
        Training matrix, M samples x N features, in any storage format.
    y:
        Labels in {-1, +1}, length M.
    kernel:
        Kernel function (Table I).
    C:
        Box constraint / regularisation constant.
    tol:
        Duality-gap tolerance; Step 12 stops at
        ``b_low <= b_high + 2 * tol``.
    max_iter:
        Iteration cap (an iteration = one working-set pair update).
    cache_rows:
        LRU kernel-row cache capacity (0 disables caching).
    cache_mb:
        Alternative cache sizing by memory budget in MB (LIBSVM's
        ``-m`` semantics): the cache holds as many float64 rows of
        length M as fit the budget.  Overrides ``cache_rows`` when
        given; 0 disables caching.
    working_set:
        ``"first"`` — the paper's maximal-violating pair;
        ``"second"`` — LIBSVM's second-order gain rule (usually fewer
        iterations for the same solution).
    shrink_every:
        If > 0, run the shrinking heuristic every this many iterations
        (0 disables).  Shrinking never changes the solution: the full
        problem is re-verified before reporting convergence.
    fuse_rows:
        When True (the default), an iteration whose high/low rows both
        miss the cache computes them with a single dual-row SpMM
        (:meth:`Kernel.rows` over ``[v_high, v_low]``) instead of two
        SMSVs — the matrix is traversed once per iteration instead of
        twice.  The fused block is bit-for-bit identical per column to
        the single-row path, so the training trajectory (iterations,
        support set, bias) is unchanged; set False to force the unfused
        path (used by the equivalence tests and the benchmark harness).
    initial_alpha:
        Optional warm start: a feasible multiplier vector (within the
        box ``[0, C]`` and satisfying ``sum alpha_i y_i = 0``), e.g.
        the solution of a previous fit with nearby hyper-parameters.
        The optimality vector f is rebuilt from its support (one kernel
        row per non-zero entry), after which SMO resumes normally —
        typically converging in a small fraction of the cold-start
        iterations.
    counter:
        Optional op counter threaded through every SMSV.
    on_iteration:
        Optional callback ``(iteration, b_high, b_low)`` per step.

    Raises
    ------
    ValueError
        On bad labels (not ±1, or single-class), non-positive C/tol, or
        an unknown working-set rule.
    """
    y = np.asarray(y, dtype=np.float64).ravel()
    m = X.shape[0]
    if y.shape != (m,):
        raise ValueError(f"y must have length {m}, got {y.shape}")
    classes = np.unique(y)
    if not np.array_equal(classes, np.array([-1.0, 1.0])):
        raise ValueError(
            f"labels must be -1/+1 with both classes present; got {classes}"
        )
    if C <= 0.0:
        raise ValueError("C must be positive")
    if tol <= 0.0:
        raise ValueError("tol must be positive")
    if working_set not in WORKING_SET_RULES:
        raise ValueError(
            f"unknown working_set {working_set!r}; expected one of "
            f"{WORKING_SET_RULES}"
        )
    if shrink_every < 0:
        raise ValueError("shrink_every must be >= 0")

    eps_a = 1e-12 * C  # alpha-at-bound slack
    tracer = get_tracer()

    # Step 2: alpha = 0, f_i = -y_i (or the validated warm start).
    if initial_alpha is not None:
        alpha = np.asarray(initial_alpha, dtype=np.float64).copy()
        if alpha.shape != (m,):
            raise ValueError("initial_alpha must have length M")
        if alpha.min() < -1e-9 or alpha.max() > C + 1e-9:
            raise ValueError("initial_alpha violates the box [0, C]")
        if abs(float(alpha @ y)) > 1e-6 * max(1.0, float(alpha.sum())):
            raise ValueError(
                "initial_alpha violates the equality constraint "
                "sum alpha_i y_i = 0"
            )
        np.clip(alpha, 0.0, C, out=alpha)
    else:
        alpha = np.zeros(m, dtype=np.float64)
    f = -y.copy()

    row_norms = X.row_norms_sq()
    k_diag = kernel.diagonal(row_norms) if working_set == "second" else None
    if cache_mb is None:
        # No explicit budget: a warm tuning-cache entry for this shape
        # class sizes the row cache (LIBSVM -m, measured rather than
        # guessed).  Cache size only moves recompute time — the rows it
        # returns are the rows it was handed — so labels are untouched.
        from repro.tune.cache import tuned_for_lengths

        lengths = getattr(X, "row_lengths", None)
        if lengths is not None:
            tuned = tuned_for_lengths(
                "row_cache_mb", "row_cache_mb", lengths, X.shape
            )
            if tuned is not None:
                cache_mb = float(tuned)
    if cache_mb is not None:
        cache = _RowCache.from_budget_mb(cache_mb, 8 * m)
    else:
        cache = _RowCache(cache_rows)
    rows_computed = 0

    aset = _ActiveSet(X)
    shrink_events = 0
    unshrink_events = 0
    min_active = m

    def scatter_row(local: np.ndarray) -> np.ndarray:
        """Lift a row over the active submatrix to global length
        (inactive entries stay 0, matching the frozen-f semantics of
        shrinking)."""
        if aset.n_active == m:
            return local
        row = np.zeros(m, dtype=np.float64)
        row[aset.sub_ids] = local
        return row

    def compute_row(i: int) -> np.ndarray:
        """Compute, cache, and return one kernel row (cache already
        known to miss)."""
        nonlocal rows_computed
        v = X.row(i)
        local = kernel.row(
            aset.sub,
            v,
            float(row_norms[i]),
            row_norms[aset.sub_ids],
            counter,
        )
        row = scatter_row(local)
        cache.put(i, row)
        rows_computed += 1
        return row

    def kernel_row(i: int) -> np.ndarray:
        """Kernel row of global sample i over the *active* rows."""
        row = cache.get(i)
        if row is None:
            row = compute_row(i)
        return row

    def kernel_row_pair(i: int, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """The per-iteration high/low rows, fused when both miss.

        Cache probes keep the same order as two ``kernel_row`` calls
        (i first, then j) so hit/miss statistics line up between the
        fused and unfused paths.  A double miss triggers one dual-row
        SpMM; any hit falls back to the single-row path for the other
        index.  ``i == j`` degenerates to a single row — batching it
        would compute the same column twice.
        """
        nonlocal rows_computed
        if not fuse_rows or i == j:
            ri = kernel_row(i)
            return ri, kernel_row(j)
        ri = cache.get(i)
        if ri is not None:
            return ri, kernel_row(j)
        rj = cache.get(j)
        if rj is not None:
            return compute_row(i), rj
        vi, vj = X.row(i), X.row(j)
        block = kernel.rows(
            aset.sub,
            (vi, vj),
            np.array([float(row_norms[i]), float(row_norms[j])]),
            row_norms[aset.sub_ids],
            counter,
        )
        ri = scatter_row(np.ascontiguousarray(block[:, 0]))
        rj = scatter_row(np.ascontiguousarray(block[:, 1]))
        cache.put(i, ri)
        cache.put(j, rj)
        rows_computed += 2
        return ri, rj

    def index_sets(active: np.ndarray):
        free = (alpha > eps_a) & (alpha < C - eps_a)
        pos, neg = y > 0, y < 0
        at_zero = alpha <= eps_a
        at_c = alpha >= C - eps_a
        i_high = (free | (pos & at_zero) | (neg & at_c)) & active
        i_low = (free | (pos & at_c) | (neg & at_zero)) & active
        return i_high, i_low

    def reconstruct_inactive_f() -> None:
        """Recompute f for inactive samples from the support vectors
        (the un-shrinking step).  Cost: one SMSV over the inactive
        submatrix per support vector."""
        nonlocal rows_computed
        inactive = ~aset.active
        if not inactive.any():
            return
        sub, ids = aset.submatrix_of(inactive)
        acc = np.zeros(ids.shape[0], dtype=np.float64)
        sv = np.nonzero(alpha > eps_a)[0]
        for j in sv:
            vj = X.row(int(j))
            krow = kernel.row(
                sub, vj, float(row_norms[j]), row_norms[ids], counter
            )
            acc += (alpha[j] * y[j]) * krow
            rows_computed += 1
        f[ids] = acc - y[ids]

    def try_shrink(b_high: float, b_low: float) -> None:
        """Joachims/LIBSVM heuristic: deactivate bound-stuck samples
        whose f lies strictly outside the violating window."""
        nonlocal shrink_events, min_active
        pos, neg = y > 0, y < 0
        at_zero = alpha <= eps_a
        at_c = alpha >= C - eps_a
        margin = tol
        # Only ever selectable via I_high; f already above b_low.
        only_high = (pos & at_zero) | (neg & at_c)
        # Only ever selectable via I_low; f already below b_high.
        only_low = (pos & at_c) | (neg & at_zero)
        shrinkable = (
            (only_high & (f > b_low + margin))
            | (only_low & (f < b_high - margin))
        ) & aset.active
        n_shrink = int(shrinkable.sum())
        if n_shrink >= max(8, aset.n_active // 10):
            with tracer.span("smo.shrink") as sp:
                aset.active &= ~shrinkable
                aset.rebuild()
                if tracer.enabled:
                    sp.set("n_shrink", n_shrink)
                    sp.set("n_active", aset.n_active)
            # Cached rows stay valid: they cover a superset of the new
            # active set.  Their entries at newly-inactive positions
            # merely perturb frozen f values, which reconstruction
            # recomputes from scratch at un-shrink time anyway.
            shrink_events += 1
            min_active = min(min_active, aset.n_active)

    def unshrink() -> None:
        nonlocal unshrink_events
        with tracer.span("smo.unshrink"):
            reconstruct_inactive_f()
            aset.active[:] = True
            aset.rebuild()
            cache.clear()
        unshrink_events += 1

    # Warm start: rebuild f = sum_j alpha_j y_j K_.j - y from the
    # support of the supplied multipliers (one kernel row each).
    if initial_alpha is not None:
        for j in np.nonzero(alpha > eps_a)[0]:
            f += (alpha[j] * y[j]) * kernel_row(int(j))

    # Step 3 (standardised): start from one sample per class.
    high = int(np.argmax(y > 0))
    low = int(np.argmax(y < 0))
    b_high, b_low = -1.0, 1.0

    iterations = 0
    converged = False
    with tracer.span("smo.train") as t_span:
        while iterations < max_iter:
            # One working-set update: the span brackets exactly the
            # per-iteration kernel work the layout decision controls.
            with tracer.span("smo.iteration"):
                # Steps 4/11: analytic two-variable update with box clipping.
                # The two rows are the per-iteration bottleneck; on a double
                # cache miss they come out of one fused dual-row SpMM.
                k_high, k_low = kernel_row_pair(high, low)
                eta = k_high[high] + k_low[low] - 2.0 * k_high[low]
                if eta <= 1e-12:
                    eta = 1e-12  # degenerate pair; take a tiny safe step

                y_h, y_l = y[high], y[low]
                s = y_h * y_l
                a_h, a_l = alpha[high], alpha[low]
                # Feasible interval for alpha_low given the equality constraint.
                if s < 0:
                    L = max(0.0, a_l - a_h)
                    H = min(C, C + a_l - a_h)
                else:
                    L = max(0.0, a_h + a_l - C)
                    H = min(C, a_h + a_l)

                # Eq. (5): Delta alpha_low = y_low (b_high - b_low) / eta.
                a_l_new = a_l + y_l * (f[high] - f[low]) / eta
                a_l_new = min(max(a_l_new, L), H)
                # Eq. (6) via the equality constraint.
                a_h_new = a_h + s * (a_l - a_l_new)

                d_low = a_l_new - a_l
                d_high = a_h_new - a_h
                alpha[low] = a_l_new
                alpha[high] = a_h_new

                # Step 5 / Eq. (4): incremental f update (in place; inactive
                # entries of the kernel rows are zero, so frozen f is free).
                if d_high != 0.0:
                    f += (d_high * y_h) * k_high
                if d_low != 0.0:
                    f += (d_low * y_l) * k_low

                # Steps 6-7: index sets over the active problem.
                i_high, i_low = index_sets(aset.active)

                # Steps 8-10: select the next pair and the gap endpoints.
                f_hi = np.where(i_high, f, np.inf)
                f_lo = np.where(i_low, f, -np.inf)
                high = int(np.argmin(f_hi))
                b_high = float(f_hi[high])
                b_low = float(np.max(f_lo))

                if working_set == "second" and np.isfinite(b_high):
                    # Fan-Chen-Lin: maximise the guaranteed gain
                    # (f_j - b_high)^2 / eta_j over violating j in I_low.
                    k_h = kernel_row(high)
                    viol = i_low & (f > b_high)
                    if viol.any():
                        eta_j = np.maximum(
                            k_diag[high] + k_diag - 2.0 * k_h, 1e-12
                        )
                        gain = np.where(
                            viol, (f - b_high) ** 2 / eta_j, -np.inf
                        )
                        low = int(np.argmax(gain))
                    else:
                        low = int(np.argmax(f_lo))
                else:
                    low = int(np.argmax(f_lo))

                iterations += 1
                if on_iteration is not None:
                    on_iteration(iterations, b_high, b_low)

                # Step 12: duality-gap check (on the active problem).
                if b_low <= b_high + 2.0 * tol:
                    if aset.n_active < m:
                        # The shrunken problem converged: un-shrink, verify on
                        # the full problem, continue if violations remain.
                        unshrink()
                        i_high, i_low = index_sets(aset.active)
                        f_hi = np.where(i_high, f, np.inf)
                        f_lo = np.where(i_low, f, -np.inf)
                        high = int(np.argmin(f_hi))
                        b_high = float(f_hi[high])
                        b_low = float(np.max(f_lo))
                        low = int(np.argmax(f_lo))
                        if b_low <= b_high + 2.0 * tol:
                            converged = True
                            break
                        continue
                    converged = True
                    break
                if not np.isfinite(b_high) or not np.isfinite(b_low):
                    break  # index set degenerated (numerically at bounds)

                if shrink_every and iterations % shrink_every == 0:
                    try_shrink(b_high, b_low)
                    if not aset.active[high] or not aset.active[low]:
                        # Selection must come from the active set; reselect.
                        i_high, i_low = index_sets(aset.active)
                        f_hi = np.where(i_high, f, np.inf)
                        f_lo = np.where(i_low, f, -np.inf)
                        high = int(np.argmin(f_hi))
                        low = int(np.argmax(f_lo))
                        b_high = float(f_hi[high])
                        b_low = float(f_lo[low])

        if tracer.enabled:
            t_span.set("iterations", iterations)
            t_span.set("converged", converged)
            t_span.set("kernel_rows", rows_computed)
            t_span.set("m", m)
    if aset.n_active < m:
        # Report a consistent full-problem f even on max_iter exit.
        reconstruct_inactive_f()

    return SMOResult(
        alpha=alpha,
        b=(b_high + b_low) / 2.0,
        iterations=iterations,
        converged=converged,
        b_high=b_high,
        b_low=b_low,
        f=f,
        kernel_rows_computed=rows_computed,
        kernel_rows_cached=cache.hits,
        shrink_events=shrink_events,
        unshrink_events=unshrink_events,
        min_active=min(min_active, m),
    )
