"""Model selection: k-fold cross-validation and hyper-parameter search.

Two deliberate efficiencies tie into the rest of the library:

- the training submatrix of every fold goes through the layout
  scheduler *once* per fold (sub-datasets are row samples, so their
  profiles — and hence decisions — rarely differ, and the decision
  cache absorbs the repeats);
- the C-path search warm-starts each C from the previous solution
  (:func:`repro.svm.smo.smo_train`'s ``initial_alpha``), which cuts the
  path's total iterations substantially (asserted in tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.formats.base import MatrixFormat
from repro.svm.kernels import Kernel, make_kernel
from repro.svm.smo import smo_train
from repro.svm.svc import SVC, MatrixLike, _as_matrix


def kfold_indices(
    n: int, k: int, *, seed: int = 0
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Shuffled k-fold split: list of ``(train_idx, test_idx)`` pairs.

    Folds differ in size by at most one sample; every sample appears in
    exactly one test fold.
    """
    if not 2 <= k <= n:
        raise ValueError("k must lie in [2, n]")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    folds = np.array_split(perm, k)
    out = []
    for i in range(k):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        out.append((np.sort(train), np.sort(test)))
    return out


def _row_subset(X: MatrixFormat, idx: np.ndarray) -> MatrixFormat:
    rows, cols, values = X.to_coo()
    lookup = np.full(X.shape[0], -1, dtype=np.int64)
    lookup[idx] = np.arange(idx.shape[0])
    keep = lookup[rows] >= 0
    return type(X).from_coo(
        lookup[rows[keep]], cols[keep], values[keep],
        (idx.shape[0], X.shape[1]),
    )


def cross_val_score(
    make_estimator: Callable[[], SVC],
    X: MatrixLike,
    y: np.ndarray,
    *,
    k: int = 5,
    seed: int = 0,
) -> np.ndarray:
    """Accuracy of a fresh estimator on each of k folds."""
    X = _as_matrix(X)
    y = np.asarray(y, dtype=np.float64).ravel()
    if y.shape != (X.shape[0],):
        raise ValueError("y must have one label per row")
    scores = []
    for train_idx, test_idx in kfold_indices(X.shape[0], k, seed=seed):
        clf = make_estimator()
        clf.fit(_row_subset(X, train_idx), y[train_idx])
        scores.append(
            clf.score(_row_subset(X, test_idx), y[test_idx])
        )
    return np.asarray(scores)


@dataclass
class CPathResult:
    """Warm-started regularisation path."""

    Cs: List[float]
    objectives: List[float] = field(default_factory=list)
    iterations: List[int] = field(default_factory=list)
    alphas: List[np.ndarray] = field(default_factory=list)

    @property
    def total_iterations(self) -> int:
        return int(sum(self.iterations))


def c_path(
    X: MatrixLike,
    y: np.ndarray,
    Cs: Sequence[float],
    *,
    kernel: Kernel | str = "linear",
    tol: float = 1e-3,
    max_iter: int = 100_000,
    warm_start: bool = True,
    **kernel_params: float,
) -> CPathResult:
    """Solve the SVM along an increasing C grid.

    With ``warm_start`` each C resumes from the previous alpha — except
    that box feasibility requires the previous solution to fit in the
    new box, which increasing C guarantees.  A decreasing grid is
    re-sorted increasing (the result records the solved order).
    """
    Cs = sorted(float(c) for c in Cs)
    if not Cs or Cs[0] <= 0:
        raise ValueError("Cs must be positive")
    X = _as_matrix(X)
    y = np.asarray(y, dtype=np.float64).ravel()
    if isinstance(kernel, str):
        kernel = make_kernel(kernel, **kernel_params)
    result = CPathResult(Cs=list(Cs))
    prev_alpha: Optional[np.ndarray] = None
    for C in Cs:
        res = smo_train(
            X,
            y,
            kernel,
            C=C,
            tol=tol,
            max_iter=max_iter,
            initial_alpha=prev_alpha if warm_start else None,
        )
        result.objectives.append(res.objective(y))
        result.iterations.append(res.iterations)
        result.alphas.append(res.alpha)
        prev_alpha = res.alpha
    return result


@dataclass
class SearchCVResult:
    best_params: Dict[str, float]
    best_score: float
    all_scores: Dict[Tuple, float]


def grid_search_cv(
    X: MatrixLike,
    y: np.ndarray,
    *,
    kernel: str = "gaussian",
    Cs: Sequence[float] = (0.1, 1.0, 10.0),
    gammas: Sequence[float] = (0.01, 0.1, 1.0),
    k: int = 3,
    tol: float = 1e-3,
    max_iter: int = 20_000,
    seed: int = 0,
) -> SearchCVResult:
    """Cross-validated grid search over (C, gamma).

    For the linear kernel pass ``gammas=(None,)`` implicitly by using
    ``kernel="linear"`` — the gamma axis is then ignored.
    """
    X = _as_matrix(X)
    y = np.asarray(y, dtype=np.float64).ravel()
    use_gamma = kernel in ("gaussian", "rbf")
    gamma_grid: Sequence[Optional[float]] = (
        tuple(gammas) if use_gamma else (None,)
    )
    all_scores: Dict[Tuple, float] = {}
    best: Tuple[Optional[Tuple], float] = (None, -np.inf)
    for C in Cs:
        for gamma in gamma_grid:
            def make() -> SVC:
                kw = {"gamma": gamma} if gamma is not None else {}
                return SVC(kernel, C=C, tol=tol, max_iter=max_iter, **kw)

            score = float(
                np.mean(cross_val_score(make, X, y, k=k, seed=seed))
            )
            key = (C, gamma)
            all_scores[key] = score
            if score > best[1]:
                best = (key, score)
    params: Dict[str, float] = {"C": best[0][0]}
    if best[0][1] is not None:
        params["gamma"] = best[0][1]
    return SearchCVResult(
        best_params=params, best_score=best[1], all_scores=all_scores
    )
