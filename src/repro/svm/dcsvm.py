"""Divide-and-conquer SVM with per-partition layout scheduling.

The paper closes its related-work section with: "Our previous work
CA-SVM is a general divide-and-conquer approach for distributed
systems.  The techniques of this paper can be added to CA-SVM for
better performance."  This module implements that combination:

1. partition the training rows into P clusters (k-means on a random
   projection, CA-SVM's communication-avoiding strategy, or random
   striping as the baseline partitioner);
2. train one independent binary SVM per partition — in parallel, and
   with a *per-partition* layout decision: sub-datasets have different
   nine-parameter profiles, so different partitions legitimately pick
   different formats (the "better performance" the paper predicts);
3. predict by routing each query to its nearest partition centroid's
   model (CA-SVM's no-communication inference).

The result approximates the global SVM (exactly CA-SVM's trade: for
well-clustered data the approximation error is small while training
cost drops from one O(M)-sized problem to P problems of O(M/P)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core.scheduler import Decision, LayoutScheduler
from repro.formats.base import MatrixFormat
from repro.parallel.pool import parallel_map
from repro.svm.kernels import Kernel
from repro.svm.svc import SVC, MatrixLike, _as_matrix

PARTITIONERS = ("kmeans", "random")


def random_projection_sketch(
    X: MatrixFormat, dim: int = 32, *, seed: int = 0
) -> np.ndarray:
    """Dense sketch of the rows: ``X @ R`` with Gaussian ``R``.

    Gives k-means a low-dimensional dense view of arbitrary-format
    (possibly huge-N) sparse data; Johnson-Lindenstrauss keeps row
    geometry approximately intact.
    """
    if dim < 1:
        raise ValueError("dim must be >= 1")
    n = X.shape[1]
    rng = np.random.default_rng(seed)
    sketch = np.empty((X.shape[0], min(dim, n)))
    for d in range(sketch.shape[1]):
        r = rng.standard_normal(n) / np.sqrt(sketch.shape[1])
        sketch[:, d] = X.matvec(r)
    return sketch


def kmeans(
    points: np.ndarray,
    k: int,
    *,
    n_iter: int = 25,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Plain Lloyd k-means; returns ``(labels, centroids)``.

    k-means++-style seeding (distance-weighted) for stable clusters.
    Empty clusters are re-seeded from the farthest points.
    """
    m = points.shape[0]
    if not 1 <= k <= m:
        raise ValueError("k must lie in [1, n_points]")
    rng = np.random.default_rng(seed)
    # -- seeding -------------------------------------------------------
    centroids = np.empty((k, points.shape[1]))
    centroids[0] = points[rng.integers(m)]
    d2 = ((points - centroids[0]) ** 2).sum(axis=1)
    for j in range(1, k):
        total = float(d2.sum())
        if total <= 0:
            centroids[j] = points[rng.integers(m)]
        else:
            centroids[j] = points[
                rng.choice(m, p=d2 / total)
            ]
        d2 = np.minimum(d2, ((points - centroids[j]) ** 2).sum(axis=1))
    # -- Lloyd iterations ----------------------------------------------
    labels = np.zeros(m, dtype=np.int64)
    for _ in range(n_iter):
        dists = (
            (points[:, None, :] - centroids[None, :, :]) ** 2
        ).sum(axis=2)
        new_labels = np.argmin(dists, axis=1)
        for j in range(k):
            mask = new_labels == j
            if mask.any():
                centroids[j] = points[mask].mean(axis=0)
            else:  # re-seed an empty cluster from the farthest point
                far = int(np.argmax(dists[np.arange(m), new_labels]))
                centroids[j] = points[far]
                new_labels[far] = j
        if np.array_equal(new_labels, labels):
            labels = new_labels
            break
        labels = new_labels
    return labels, centroids


@dataclass
class _Partition:
    """One trained shard."""

    model: Optional[SVC]  #: None when the shard is single-class
    constant_label: Optional[float]  #: used when model is None
    centroid: np.ndarray
    layout: Optional[Decision]
    n_samples: int


class DivideAndConquerSVC:
    """CA-SVM-style distributed SVM with adaptive layouts per shard.

    Parameters
    ----------
    kernel / C / tol / max_iter / kernel_params:
        Forwarded to every shard's :class:`~repro.svm.svc.SVC`.
    n_partitions:
        Number of shards P.
    partitioner:
        ``"kmeans"`` (CA-SVM's clustering, default) or ``"random"``.
    scheduler:
        Layout scheduler applied *independently per shard*; None
        disables layout scheduling (shards train in the input format).
    sketch_dim / n_workers / seed:
        Projection width for k-means, training parallelism, and
        determinism.
    """

    def __init__(
        self,
        kernel: Union[str, Kernel] = "linear",
        *,
        n_partitions: int = 4,
        partitioner: str = "kmeans",
        C: float = 1.0,
        tol: float = 1e-3,
        max_iter: int = 100_000,
        scheduler: Optional[LayoutScheduler] = None,
        sketch_dim: int = 32,
        n_workers: Optional[int] = None,
        seed: int = 0,
        **kernel_params: float,
    ) -> None:
        if n_partitions < 1:
            raise ValueError("n_partitions must be >= 1")
        if partitioner not in PARTITIONERS:
            raise ValueError(
                f"unknown partitioner {partitioner!r}; "
                f"expected one of {PARTITIONERS}"
            )
        self._svc_args = dict(
            kernel=kernel, C=C, tol=tol, max_iter=max_iter, **kernel_params
        )
        self.n_partitions = n_partitions
        self.partitioner = partitioner
        self.scheduler = scheduler
        self.sketch_dim = sketch_dim
        self.n_workers = n_workers
        self.seed = seed
        self.partitions_: List[_Partition] = []
        self._sketch_seed = seed + 77

    # -- training -------------------------------------------------------
    def fit(self, X: MatrixLike, y: np.ndarray) -> "DivideAndConquerSVC":
        X = _as_matrix(X)
        y = np.asarray(y, dtype=np.float64).ravel()
        m = X.shape[0]
        if y.shape != (m,):
            raise ValueError(f"y must have length {m}")

        sketch = random_projection_sketch(
            X, self.sketch_dim, seed=self._sketch_seed
        )
        if self.partitioner == "kmeans" and self.n_partitions > 1:
            labels, _ = kmeans(
                sketch, self.n_partitions, seed=self.seed
            )
        else:
            rng = np.random.default_rng(self.seed)
            labels = rng.integers(0, self.n_partitions, size=m)

        rows, cols, values = X.to_coo()

        def train_shard(j: int) -> _Partition:
            idx = np.nonzero(labels == j)[0]
            centroid = (
                sketch[idx].mean(axis=0) if idx.size else sketch.mean(axis=0)
            )
            if idx.size == 0:
                return _Partition(
                    model=None,
                    constant_label=1.0,
                    centroid=centroid,
                    layout=None,
                    n_samples=0,
                )
            lookup = np.full(m, -1, dtype=np.int64)
            lookup[idx] = np.arange(idx.shape[0])
            keep = lookup[rows] >= 0
            sub: MatrixFormat = type(X).from_coo(
                lookup[rows[keep]],
                cols[keep],
                values[keep],
                (idx.shape[0], X.shape[1]),
            )
            y_sub = y[idx]
            if np.unique(y_sub).shape[0] < 2:
                return _Partition(
                    model=None,
                    constant_label=float(y_sub[0]),
                    centroid=centroid,
                    layout=None,
                    n_samples=int(idx.shape[0]),
                )
            decision = None
            if self.scheduler is not None:
                sub, decision = self.scheduler.apply(sub)
            svc = SVC(**self._svc_args)
            svc.fit(sub, y_sub)
            return _Partition(
                model=svc,
                constant_label=None,
                centroid=centroid,
                layout=decision,
                n_samples=int(idx.shape[0]),
            )

        self.partitions_ = parallel_map(
            train_shard,
            list(range(self.n_partitions)),
            n_workers=self.n_workers,
        )
        return self

    # -- inference --------------------------------------------------------
    def _check_fitted(self) -> None:
        if not self.partitions_:
            raise RuntimeError(
                "DivideAndConquerSVC is not fitted; call fit() first"
            )

    def predict(self, X: MatrixLike) -> np.ndarray:
        """Route each query to its nearest shard centroid's model."""
        self._check_fitted()
        X = _as_matrix(X)
        sketch = random_projection_sketch(
            X, self.sketch_dim, seed=self._sketch_seed
        )
        centroids = np.stack([p.centroid for p in self.partitions_])
        owner = np.argmin(
            ((sketch[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2),
            axis=1,
        )
        out = np.empty(X.shape[0], dtype=np.float64)
        rows, cols, values = X.to_coo()
        for j, part in enumerate(self.partitions_):
            idx = np.nonzero(owner == j)[0]
            if idx.size == 0:
                continue
            if part.model is None:
                out[idx] = part.constant_label
                continue
            lookup = np.full(X.shape[0], -1, dtype=np.int64)
            lookup[idx] = np.arange(idx.shape[0])
            keep = lookup[rows] >= 0
            sub = type(X).from_coo(
                lookup[rows[keep]],
                cols[keep],
                values[keep],
                (idx.shape[0], X.shape[1]),
            )
            out[idx] = part.model.predict(sub)
        return out

    def score(self, X: MatrixLike, y: np.ndarray) -> float:
        y = np.asarray(y, dtype=np.float64).ravel()
        return float(np.mean(self.predict(X) == y))

    # -- reporting ---------------------------------------------------------
    @property
    def layouts_(self) -> List[Optional[str]]:
        """Per-shard chosen formats (None = shard had no scheduler or
        was degenerate)."""
        self._check_fitted()
        return [
            p.layout.fmt if p.layout is not None else None
            for p in self.partitions_
        ]

    @property
    def shard_sizes_(self) -> List[int]:
        self._check_fitted()
        return [p.n_samples for p in self.partitions_]
