"""AdaptiveSVC — the paper's full system.

Before training, a :class:`~repro.core.scheduler.LayoutScheduler`
extracts the nine Table IV parameters from the input, decides the
storage format, converts, and only then runs SMO.  The decision, its
reasoning, and the conversion overhead are all recorded on the fitted
model so experiments can audit the adaptive system's behaviour.
"""

from __future__ import annotations

import time
from typing import Optional, Union

import numpy as np

from repro.core.scheduler import Decision, LayoutScheduler
from repro.formats.base import MatrixFormat
from repro.perf.counters import OpCounter
from repro.svm.kernels import Kernel
from repro.svm.svc import SVC, MatrixLike, _as_matrix


class AdaptiveSVC(SVC):
    """An :class:`~repro.svm.svc.SVC` that schedules its data layout.

    Parameters
    ----------
    kernel, C, tol, max_iter, cache_rows, kernel_params:
        As for :class:`SVC`.
    scheduler:
        The layout scheduler; defaults to the hybrid strategy.

    Attributes
    ----------
    decision_:
        The layout decision made at ``fit`` time.
    convert_seconds_:
        Wall time spent re-laying-out the input (the runtime overhead
        the paper's speedups are net of).
    """

    def __init__(
        self,
        kernel: Union[str, Kernel] = "linear",
        *,
        C: float = 1.0,
        tol: float = 1e-3,
        max_iter: int = 100_000,
        cache_rows: int = 256,
        cache_mb: Optional[float] = None,
        working_set: str = "first",
        shrink_every: int = 0,
        fuse_rows: bool = True,
        scheduler: Optional[LayoutScheduler] = None,
        iterations_hint: Optional[int] = None,
        **kernel_params: float,
    ) -> None:
        super().__init__(
            kernel,
            C=C,
            tol=tol,
            max_iter=max_iter,
            cache_rows=cache_rows,
            cache_mb=cache_mb,
            working_set=working_set,
            shrink_every=shrink_every,
            fuse_rows=fuse_rows,
            **kernel_params,
        )
        self.scheduler = scheduler or LayoutScheduler("hybrid")
        #: expected SMO iterations, used to amortise the conversion
        #: cost (None = always convert; see LayoutScheduler.apply).
        self.iterations_hint = iterations_hint
        self.decision_: Optional[Decision] = None
        self.convert_seconds_: float = 0.0

    def fit(
        self,
        X: MatrixLike,
        y: np.ndarray,
        *,
        counter: Optional[OpCounter] = None,
    ) -> "AdaptiveSVC":
        matrix = _as_matrix(X)
        t0 = time.perf_counter()
        matrix, decision = self.scheduler.apply(
            matrix, iterations_hint=self.iterations_hint
        )
        self.convert_seconds_ = time.perf_counter() - t0
        self.decision_ = decision
        super().fit(matrix, y, counter=counter)
        return self

    @property
    def chosen_format(self) -> str:
        """The format the scheduler selected (raises before fit)."""
        if self.decision_ is None:
            raise RuntimeError("AdaptiveSVC is not fitted; call fit() first")
        return self.decision_.fmt
