"""SVM kernel functions (paper Table I).

Every kernel evaluates a full kernel-matrix *row* ``K(X, x_i)`` from a
single SMSV ``X @ x_i`` — the exact computation SMO needs twice per
iteration, and the one whose cost the data layout controls:

=========  ======================================
Linear     ``x . y``
Polynomial ``(a * x . y + r)^d``
Gaussian   ``exp(-gamma * ||x - y||^2)``
Sigmoid    ``tanh(a * x . y + r)``
=========  ======================================

The Gaussian kernel expands ``||x - y||^2 = ||x||^2 + ||y||^2 - 2 x.y``
so it too reduces to the dot-product SMSV plus cached row norms.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Type

import numpy as np

from repro.formats.base import MatrixFormat, SparseVector
from repro.perf.counters import OpCounter


class Kernel(abc.ABC):
    """A Mercer kernel evaluated against all rows of a stored matrix."""

    name: str = "abstract"

    @abc.abstractmethod
    def row(
        self,
        X: MatrixFormat,
        v: SparseVector,
        v_norm_sq: float,
        row_norms_sq: np.ndarray,
        counter: Optional[OpCounter] = None,
    ) -> np.ndarray:
        """Kernel row ``[K(X_1, v), ..., K(X_M, v)]``.

        Parameters
        ----------
        X:
            Data matrix in any format.
        v:
            The selected sample (``X_high`` or ``X_low``) as a sparse
            vector.
        v_norm_sq / row_norms_sq:
            Cached squared norms (only the Gaussian kernel reads them;
            passing them in keeps the hot loop allocation-free).
        """

    def rows(
        self,
        X: MatrixFormat,
        vectors,
        v_norms_sq: np.ndarray,
        row_norms_sq: np.ndarray,
        counter: Optional[OpCounter] = None,
    ) -> np.ndarray:
        """Blocked kernel rows: column ``c`` is ``row(X, vectors[c])``.

        One fused SpMM (:meth:`MatrixFormat.smsv_multi`) replaces the k
        per-vector SMSVs, and the Mercer transform runs once over the
        whole ``(M, k)`` block.  Because the SpMM contract is bit-for-bit
        per column and the transforms are elementwise, every column is
        identical to the single-row path — the property the fused SMO
        hot path relies on.  The default stacks :meth:`row` calls so
        exotic kernel subclasses stay correct without an override.
        """
        vectors = list(vectors)
        v_norms_sq = np.asarray(v_norms_sq, dtype=float)
        if v_norms_sq.shape[0] != len(vectors):
            raise ValueError("v_norms_sq must have one entry per vector")
        if not vectors:
            return np.zeros((X.shape[0], 0))
        cols = [
            self.row(X, v, float(nv), row_norms_sq, counter)
            for v, nv in zip(vectors, v_norms_sq)
        ]
        return np.stack(cols, axis=1)

    def single(self, x: SparseVector, y: SparseVector) -> float:
        """``K(x, y)`` for two individual samples (prediction path)."""
        return float(
            self._transform_scalar(x.dot(y), x.norm_sq(), y.norm_sq())
        )

    def diagonal(self, row_norms_sq: np.ndarray) -> np.ndarray:
        """``K(X_i, X_i)`` for every row, from cached squared norms.

        Needed once per training run by the second-order working-set
        selection (eta = K_hh + K_jj - 2 K_hj requires the diagonal).
        """
        return np.array(
            [
                self._transform_scalar(n, n, n)
                for n in np.asarray(row_norms_sq, dtype=float)
            ]
        )

    @abc.abstractmethod
    def _transform_scalar(self, dot: float, nx: float, ny: float) -> float:
        ...


class LinearKernel(Kernel):
    """``K(x, y) = x . y``"""

    name = "linear"

    def row(self, X, v, v_norm_sq, row_norms_sq, counter=None):
        return X.smsv(v, counter)

    def rows(self, X, vectors, v_norms_sq, row_norms_sq, counter=None):
        return X.smsv_multi(vectors, counter)

    def _transform_scalar(self, dot, nx, ny):
        return dot


class PolynomialKernel(Kernel):
    """``K(x, y) = (a * x . y + r)^d``"""

    name = "polynomial"

    def __init__(self, a: float = 1.0, r: float = 0.0, degree: int = 3) -> None:
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.a = float(a)
        self.r = float(r)
        self.degree = int(degree)

    def row(self, X, v, v_norm_sq, row_norms_sq, counter=None):
        dots = X.smsv(v, counter)
        return (self.a * dots + self.r) ** self.degree

    def rows(self, X, vectors, v_norms_sq, row_norms_sq, counter=None):
        dots = X.smsv_multi(vectors, counter)
        # Elementwise transform over the whole block: identical scalar
        # op sequence per column as row(), one ufunc dispatch for all k.
        return (self.a * dots + self.r) ** self.degree

    def _transform_scalar(self, dot, nx, ny):
        return (self.a * dot + self.r) ** self.degree


class GaussianKernel(Kernel):
    """``K(x, y) = exp(-gamma * ||x - y||^2)`` (a.k.a. RBF)."""

    name = "gaussian"

    def __init__(self, gamma: float = 1.0) -> None:
        if gamma <= 0.0:
            raise ValueError("gamma must be positive")
        self.gamma = float(gamma)

    def diagonal(self, row_norms_sq: np.ndarray) -> np.ndarray:
        # ||x - x||^2 = 0 always: the RBF diagonal is exactly one.
        return np.ones(np.asarray(row_norms_sq).shape[0])

    def row(self, X, v, v_norm_sq, row_norms_sq, counter=None):
        dots = X.smsv(v, counter)
        # ||X_i - v||^2 = ||X_i||^2 + ||v||^2 - 2 X_i.v, computed
        # in place on the dots buffer (guide: in-place over fresh
        # allocations in hot loops).
        dots *= -2.0
        dots += row_norms_sq
        dots += v_norm_sq
        np.clip(dots, 0.0, None, out=dots)  # guard fp cancellation
        dots *= -self.gamma
        return np.exp(dots, out=dots)

    def rows(self, X, vectors, v_norms_sq, row_norms_sq, counter=None):
        vectors = list(vectors)
        v_norms_sq = np.asarray(v_norms_sq, dtype=float)
        if v_norms_sq.shape[0] != len(vectors):
            raise ValueError("v_norms_sq must have one entry per vector")
        dots = X.smsv_multi(vectors, counter)
        # Same in-place sequence as row(), broadcast over the (M, k)
        # block: per element it is d*(-2) + ||X_i||^2 + ||v_c||^2 in the
        # same order, so columns stay bit-for-bit identical.
        dots *= -2.0
        dots += np.asarray(row_norms_sq, dtype=float)[:, None]
        dots += v_norms_sq[None, :]
        np.clip(dots, 0.0, None, out=dots)
        dots *= -self.gamma
        return np.exp(dots, out=dots)

    def _transform_scalar(self, dot, nx, ny):
        d2 = max(nx + ny - 2.0 * dot, 0.0)
        return np.exp(-self.gamma * d2)


class SigmoidKernel(Kernel):
    """``K(x, y) = tanh(a * x . y + r)``"""

    name = "sigmoid"

    def __init__(self, a: float = 1.0, r: float = 0.0) -> None:
        self.a = float(a)
        self.r = float(r)

    def row(self, X, v, v_norm_sq, row_norms_sq, counter=None):
        dots = X.smsv(v, counter)
        dots *= self.a
        dots += self.r
        return np.tanh(dots, out=dots)

    def rows(self, X, vectors, v_norms_sq, row_norms_sq, counter=None):
        dots = X.smsv_multi(vectors, counter)
        dots *= self.a
        dots += self.r
        return np.tanh(dots, out=dots)

    def _transform_scalar(self, dot, nx, ny):
        return np.tanh(self.a * dot + self.r)


KERNELS: Dict[str, Type[Kernel]] = {
    "linear": LinearKernel,
    "polynomial": PolynomialKernel,
    "gaussian": GaussianKernel,
    "rbf": GaussianKernel,
    "sigmoid": SigmoidKernel,
}


def make_kernel(name: str, **params: float) -> Kernel:
    """Instantiate a kernel by name with keyword parameters.

    >>> make_kernel("gaussian", gamma=0.5).name
    'gaussian'
    """
    try:
        cls = KERNELS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown kernel {name!r}; expected one of {sorted(KERNELS)}"
        ) from None
    return cls(**params)
