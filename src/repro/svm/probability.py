"""Platt scaling: probability estimates from SVM decision values.

LIBSVM's ``-b 1`` option, reimplemented: fit a sigmoid
``P(y=1 | f) = 1 / (1 + exp(A f + B))`` to (decision value, label)
pairs by regularised maximum likelihood, using Lin-Lin-Weng's stable
Newton iteration (the fix to Platt's original pseudo-code).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PlattScaler:
    """Fitted sigmoid parameters ``(A, B)``."""

    A: float
    B: float

    def predict_proba(self, decision_values: np.ndarray) -> np.ndarray:
        """P(y = +1) for each decision value (stable at extremes)."""
        f = np.asarray(decision_values, dtype=np.float64)
        z = self.A * f + self.B
        # 1 / (1 + e^z), computed without overflow for either sign.
        out = np.empty_like(z)
        pos = z >= 0
        out[pos] = np.exp(-z[pos]) / (1.0 + np.exp(-z[pos]))
        out[~pos] = 1.0 / (1.0 + np.exp(z[~pos]))
        return out


def fit_platt(
    decision_values: np.ndarray,
    y: np.ndarray,
    *,
    max_iter: int = 100,
    tol: float = 1e-10,
) -> PlattScaler:
    """Fit (A, B) by regularised MLE (Lin, Lin & Weng 2007).

    Parameters
    ----------
    decision_values:
        SVM decision function outputs on a calibration set.
    y:
        The corresponding ±1 labels.
    """
    f = np.asarray(decision_values, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if f.shape != y.shape or f.size == 0:
        raise ValueError("decision values and labels must match, non-empty")
    if not set(np.unique(y)) <= {-1.0, 1.0}:
        raise ValueError("labels must be ±1")

    n_pos = float(np.sum(y > 0))
    n_neg = float(np.sum(y < 0))
    # Regularised targets (the out-of-sample smoothing Platt proposed).
    t = np.where(y > 0, (n_pos + 1.0) / (n_pos + 2.0), 1.0 / (n_neg + 2.0))

    A = 0.0
    B = np.log((n_neg + 1.0) / (n_pos + 1.0))

    def nll(a: float, b: float) -> float:
        # With p = P(+1) = 1/(1+e^z):  -t log p - (1-t) log(1-p)
        #   = log(1+e^z) - (1-t) z,  stable for both signs of z.
        z = a * f + b
        return float(np.sum(np.logaddexp(0.0, z) - (1.0 - t) * z))

    current = nll(A, B)
    for _ in range(max_iter):
        z = A * f + B
        p = 1.0 / (1.0 + np.exp(np.clip(z, -500, 500)))  # P(y=+1)
        # d/dz [log(1+e^z) - (1-t) z] = sigma(z) - (1-t)
        #                             = (1-p) - (1-t) = t - p.
        d = t - p
        g_a = float(np.sum(d * f))
        g_b = float(np.sum(d))
        if abs(g_a) < tol and abs(g_b) < tol:
            break
        w = p * (1.0 - p)  # d sigma / dz
        h_aa = float(np.sum(w * f * f)) + 1e-12
        h_ab = float(np.sum(w * f))
        h_bb = float(np.sum(w)) + 1e-12
        det = h_aa * h_bb - h_ab * h_ab
        if det <= 0:
            break
        dA = -(h_bb * g_a - h_ab * g_b) / det
        dB = -(h_aa * g_b - h_ab * g_a) / det
        # backtracking line search
        step = 1.0
        while step >= 1e-10:
            cand = nll(A + step * dA, B + step * dB)
            if cand < current + 1e-12:
                A += step * dA
                B += step * dB
                current = cand
                break
            step /= 2.0
        else:
            break
    return PlattScaler(A=A, B=B)


def calibrate_svc(clf, X, y) -> PlattScaler:
    """Fit a Platt scaler for a fitted SVC on a calibration set.

    Use a held-out set (or CV folds) — calibrating on the training set
    biases A toward overconfidence, exactly as Platt warned.
    """
    return fit_platt(clf.decision_function(X), y)
