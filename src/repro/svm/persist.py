"""Model persistence: save / load trained SVCs.

A trained SVM is its support vectors, their coefficients, the bias and
the kernel configuration — all flat arrays plus a small JSON header, so
one compressed ``.npz`` file round-trips a model exactly (prediction-
identical, asserted by tests).

Only named kernels (Table I) are serialisable; a custom
:class:`~repro.svm.kernels.Kernel` instance has code we cannot persist.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.formats.base import SparseVector
from repro.svm.kernels import (
    GaussianKernel,
    Kernel,
    LinearKernel,
    PolynomialKernel,
    SigmoidKernel,
    make_kernel,
)
from repro.svm.smo import SMOResult

PathLike = Union[str, Path]

#: Serialisable kernel types -> (name, parameter attributes).
_KERNEL_PARAMS = {
    LinearKernel: ("linear", ()),
    PolynomialKernel: ("polynomial", ("a", "r", "degree")),
    GaussianKernel: ("gaussian", ("gamma",)),
    SigmoidKernel: ("sigmoid", ("a", "r")),
}


def _kernel_config(kernel: Kernel) -> dict:
    try:
        name, attrs = _KERNEL_PARAMS[type(kernel)]
    except KeyError:
        raise ValueError(
            f"cannot persist custom kernel {type(kernel).__name__}; "
            f"only the named Table I kernels are serialisable"
        ) from None
    return {"name": name, "params": {a: getattr(kernel, a) for a in attrs}}


def save_svc(model, path: PathLike) -> None:
    """Persist a fitted :class:`~repro.svm.svc.SVC` to ``path``.

    Raises
    ------
    RuntimeError
        If the model is not fitted.
    ValueError
        If the kernel is a non-serialisable custom instance.
    """
    model._check_fitted()
    header = {
        "format_version": 1,
        "kernel": _kernel_config(model.kernel),
        "C": model.C,
        "tol": model.tol,
        "b": model.result_.b,
        "n_features": (
            int(model._sv_vectors[0].length) if model._sv_vectors else 0
        ),
    }
    ptr = np.zeros(len(model._sv_vectors) + 1, dtype=np.int64)
    for i, sv in enumerate(model._sv_vectors):
        ptr[i + 1] = ptr[i] + sv.nnz
    indices = (
        np.concatenate([sv.indices for sv in model._sv_vectors])
        if model._sv_vectors
        else np.empty(0, dtype=np.int32)
    )
    values = (
        np.concatenate([sv.values for sv in model._sv_vectors])
        if model._sv_vectors
        else np.empty(0)
    )
    np.savez_compressed(
        path,
        header=np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        ),
        sv_ptr=ptr,
        sv_indices=indices,
        sv_values=values,
        sv_coef=np.asarray(model._sv_coef),
    )


def load_svc(path: PathLike):
    """Load a model saved by :func:`save_svc`; ready to ``predict``."""
    from repro.svm.svc import SVC  # local: avoid import cycle

    with np.load(path) as data:
        header = json.loads(bytes(data["header"]).decode("utf-8"))
        if header.get("format_version") != 1:
            raise ValueError(
                f"unsupported model format version "
                f"{header.get('format_version')!r}"
            )
        ptr = data["sv_ptr"]
        indices = data["sv_indices"]
        values = data["sv_values"]
        coef = data["sv_coef"]

    kernel = make_kernel(header["kernel"]["name"], **header["kernel"]["params"])
    model = SVC(kernel, C=header["C"], tol=header["tol"])
    n = int(header["n_features"])
    model._sv_vectors = [
        SparseVector(
            indices[ptr[i] : ptr[i + 1]], values[ptr[i] : ptr[i + 1]], n
        )
        for i in range(len(ptr) - 1)
    ]
    model._sv_coef = coef
    # A minimal SMOResult so `fitted` / `n_support` behave; alpha is
    # |coef| (labels folded into the sign of coef).
    model.result_ = SMOResult(
        alpha=np.abs(coef),
        b=float(header["b"]),
        iterations=0,
        converged=True,
        b_high=float(header["b"]),
        b_low=float(header["b"]),
        f=None,
    )
    return model
