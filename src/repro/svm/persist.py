"""Model persistence: save / load trained SVCs.

A trained SVM is its support vectors, their coefficients, the bias and
the kernel configuration — all flat arrays plus a small JSON header, so
one compressed ``.npz`` file round-trips a model exactly (prediction-
identical, asserted by tests).

Binary :class:`~repro.svm.svc.SVC` and one-vs-one
:class:`~repro.svm.svc.MulticlassSVC` both persist; a multiclass file
stores every pairwise model's support vectors in one concatenated CSR-
style arena with a per-pair pointer array.  :func:`load_model`
dispatches on the header's ``kind`` field, which is how the serving
model registry stays agnostic to what was registered.

Only named kernels (Table I) are serialisable; a custom
:class:`~repro.svm.kernels.Kernel` instance has code we cannot persist.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.formats.base import SparseVector
from repro.svm.kernels import (
    GaussianKernel,
    Kernel,
    LinearKernel,
    PolynomialKernel,
    SigmoidKernel,
    make_kernel,
)
from repro.svm.smo import SMOResult

PathLike = Union[str, Path]

#: Serialisable kernel types -> (name, parameter attributes).
_KERNEL_PARAMS = {
    LinearKernel: ("linear", ()),
    PolynomialKernel: ("polynomial", ("a", "r", "degree")),
    GaussianKernel: ("gaussian", ("gamma",)),
    SigmoidKernel: ("sigmoid", ("a", "r")),
}


def _kernel_config(kernel: Kernel) -> dict:
    try:
        name, attrs = _KERNEL_PARAMS[type(kernel)]
    except KeyError:
        raise ValueError(
            f"cannot persist custom kernel {type(kernel).__name__}; "
            f"only the named Table I kernels are serialisable"
        ) from None
    return {"name": name, "params": {a: getattr(kernel, a) for a in attrs}}


def save_svc(model, path: PathLike) -> None:
    """Persist a fitted :class:`~repro.svm.svc.SVC` to ``path``.

    Raises
    ------
    RuntimeError
        If the model is not fitted.
    ValueError
        If the kernel is a non-serialisable custom instance.
    """
    model._check_fitted()
    header = {
        "format_version": 1,
        "kind": "svc",
        "kernel": _kernel_config(model.kernel),
        "C": model.C,
        "tol": model.tol,
        "b": model.result_.b,
        "n_features": (
            int(model._sv_vectors[0].length) if model._sv_vectors else 0
        ),
    }
    ptr = np.zeros(len(model._sv_vectors) + 1, dtype=np.int64)
    for i, sv in enumerate(model._sv_vectors):
        ptr[i + 1] = ptr[i] + sv.nnz
    indices = (
        np.concatenate([sv.indices for sv in model._sv_vectors])
        if model._sv_vectors
        else np.empty(0, dtype=np.int32)
    )
    values = (
        np.concatenate([sv.values for sv in model._sv_vectors])
        if model._sv_vectors
        else np.empty(0)
    )
    np.savez_compressed(
        path,
        header=np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        ),
        sv_ptr=ptr,
        sv_indices=indices,
        sv_values=values,
        sv_coef=np.asarray(model._sv_coef),
    )


def load_svc(path: PathLike):
    """Load a model saved by :func:`save_svc`; ready to ``predict``."""
    from repro.svm.svc import SVC  # local: avoid import cycle

    with np.load(path) as data:
        header = json.loads(bytes(data["header"]).decode("utf-8"))
        if header.get("format_version") != 1:
            raise ValueError(
                f"unsupported model format version "
                f"{header.get('format_version')!r}"
            )
        if header.get("kind", "svc") != "svc":
            raise ValueError(
                f"expected a binary SVC file, found kind "
                f"{header.get('kind')!r}; use load_multiclass or "
                f"load_model"
            )
        ptr = data["sv_ptr"]
        indices = data["sv_indices"]
        values = data["sv_values"]
        coef = data["sv_coef"]

    kernel = make_kernel(header["kernel"]["name"], **header["kernel"]["params"])
    model = SVC(kernel, C=header["C"], tol=header["tol"])
    n = int(header["n_features"])
    model._sv_vectors = [
        SparseVector(
            indices[ptr[i] : ptr[i + 1]], values[ptr[i] : ptr[i + 1]], n
        )
        for i in range(len(ptr) - 1)
    ]
    model._sv_coef = coef
    # A minimal SMOResult so `fitted` / `n_support` behave; alpha is
    # |coef| (labels folded into the sign of coef).
    model.result_ = SMOResult(
        alpha=np.abs(coef),
        b=float(header["b"]),
        iterations=0,
        converged=True,
        b_high=float(header["b"]),
        b_low=float(header["b"]),
        f=None,
    )
    return model


def save_multiclass(model, path: PathLike) -> None:
    """Persist a fitted :class:`~repro.svm.svc.MulticlassSVC`.

    All pairwise models share one kernel configuration by construction
    (they are built from the same constructor arguments), so the header
    stores it once; per-pair state is the class pair, the bias, and a
    slice of the concatenated support-vector arena.

    Raises
    ------
    RuntimeError
        If the model is not fitted.
    ValueError
        If the kernel is a non-serialisable custom instance.
    """
    if not model.models_:
        raise RuntimeError(
            "MulticlassSVC is not fitted; call fit() first"
        )
    first = model.models_[0].svc
    n_features = 0
    for pm in model.models_:
        if pm.svc._sv_vectors:
            n_features = int(pm.svc._sv_vectors[0].length)
            break
    header = {
        "format_version": 1,
        "kind": "multiclass",
        "kernel": _kernel_config(first.kernel),
        "C": first.C,
        "tol": first.tol,
        "classes": [float(c) for c in model.classes_.tolist()],
        "n_features": n_features,
        "pairs": [
            {
                "classes": [float(pm.classes[0]), float(pm.classes[1])],
                "b": pm.svc.result_.b,
            }
            for pm in model.models_
        ],
    }
    svs = [sv for pm in model.models_ for sv in pm.svc._sv_vectors]
    pair_ptr = np.zeros(len(model.models_) + 1, dtype=np.int64)
    for i, pm in enumerate(model.models_):
        pair_ptr[i + 1] = pair_ptr[i] + len(pm.svc._sv_vectors)
    ptr = np.zeros(len(svs) + 1, dtype=np.int64)
    for i, sv in enumerate(svs):
        ptr[i + 1] = ptr[i] + sv.nnz
    indices = (
        np.concatenate([sv.indices for sv in svs])
        if svs
        else np.empty(0, dtype=np.int32)
    )
    values = np.concatenate([sv.values for sv in svs]) if svs else np.empty(0)
    coef = (
        np.concatenate(
            [np.asarray(pm.svc._sv_coef) for pm in model.models_]
        )
        if svs
        else np.empty(0)
    )
    np.savez_compressed(
        path,
        header=np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        ),
        pair_ptr=pair_ptr,
        sv_ptr=ptr,
        sv_indices=indices,
        sv_values=values,
        sv_coef=coef,
    )


def load_multiclass(path: PathLike):
    """Load a model saved by :func:`save_multiclass`."""
    from repro.svm.svc import SVC, MulticlassSVC, _PairModel

    with np.load(path) as data:
        header = json.loads(bytes(data["header"]).decode("utf-8"))
        if header.get("format_version") != 1:
            raise ValueError(
                f"unsupported model format version "
                f"{header.get('format_version')!r}"
            )
        if header.get("kind") != "multiclass":
            raise ValueError(
                f"expected a multiclass file, found kind "
                f"{header.get('kind')!r}; use load_svc or load_model"
            )
        pair_ptr = data["pair_ptr"]
        ptr = data["sv_ptr"]
        indices = data["sv_indices"]
        values = data["sv_values"]
        coef = data["sv_coef"]

    kcfg = header["kernel"]
    n = int(header["n_features"])
    model = MulticlassSVC(
        make_kernel(kcfg["name"], **kcfg["params"]),
        C=header["C"],
        tol=header["tol"],
    )
    model.classes_ = np.asarray(header["classes"], dtype=float)
    model.models_ = []
    for p, pair in enumerate(header["pairs"]):
        svc = SVC(
            make_kernel(kcfg["name"], **kcfg["params"]),
            C=header["C"],
            tol=header["tol"],
        )
        lo, hi = int(pair_ptr[p]), int(pair_ptr[p + 1])
        svc._sv_vectors = [
            SparseVector(
                indices[ptr[i] : ptr[i + 1]],
                values[ptr[i] : ptr[i + 1]],
                n,
            )
            for i in range(lo, hi)
        ]
        pair_coef = coef[lo:hi]
        svc._sv_coef = pair_coef
        b = float(pair["b"])
        svc.result_ = SMOResult(
            alpha=np.abs(pair_coef),
            b=b,
            iterations=0,
            converged=True,
            b_high=b,
            b_low=b,
            f=None,
        )
        model.models_.append(
            _PairModel(
                classes=(float(pair["classes"][0]), float(pair["classes"][1])),
                svc=svc,
            )
        )
    return model


def read_kind(path: PathLike) -> str:
    """The ``kind`` field of a saved model file (``svc``/``multiclass``).

    Old binary files written before the field existed default to
    ``svc``.
    """
    with np.load(path) as data:
        header = json.loads(bytes(data["header"]).decode("utf-8"))
    return header.get("kind", "svc")


def load_model(path: PathLike):
    """Load any saved model, dispatching on the header ``kind``."""
    kind = read_kind(path)
    if kind == "svc":
        return load_svc(path)
    if kind == "multiclass":
        return load_multiclass(path)
    raise ValueError(f"unknown saved model kind {kind!r}")
