"""Support Vector Machine training via SMO (paper Algorithm 1).

Built from scratch on the format library:

- :mod:`repro.svm.kernels` — the four standard kernels of Table I
  (linear, polynomial, Gaussian, sigmoid), each computed from one SMSV.
- :mod:`repro.svm.smo` — working-set SMO with the first-order selection
  of Eqs. (3)-(6), incremental f-vector maintenance and duality-gap
  termination (``b_low <= b_high + 2 tol``).
- :mod:`repro.svm.svc` — scikit-style ``fit`` / ``predict`` /
  ``decision_function`` API, binary plus one-vs-one multiclass.
- :mod:`repro.svm.adaptive` — :class:`AdaptiveSVC`, the paper's system:
  a LayoutScheduler decides the storage format before training.
"""

from repro.svm.kernels import (
    KERNELS,
    GaussianKernel,
    Kernel,
    LinearKernel,
    PolynomialKernel,
    SigmoidKernel,
    make_kernel,
)
from repro.svm.smo import SMOResult, smo_train
from repro.svm.svc import SVC, MulticlassSVC
from repro.svm.adaptive import AdaptiveSVC
from repro.svm.dcsvm import DivideAndConquerSVC
from repro.svm.model_selection import (
    CPathResult,
    c_path,
    cross_val_score,
    grid_search_cv,
    kfold_indices,
)
from repro.svm.probability import PlattScaler, calibrate_svc, fit_platt

__all__ = [
    "Kernel",
    "LinearKernel",
    "PolynomialKernel",
    "GaussianKernel",
    "SigmoidKernel",
    "KERNELS",
    "make_kernel",
    "smo_train",
    "SMOResult",
    "SVC",
    "MulticlassSVC",
    "AdaptiveSVC",
    "DivideAndConquerSVC",
    "kfold_indices",
    "cross_val_score",
    "c_path",
    "CPathResult",
    "grid_search_cv",
    "PlattScaler",
    "fit_platt",
    "calibrate_svc",
]
