"""Public SVM classifier API on top of the SMO solver.

- :class:`SVC` — binary classifier: ``fit`` / ``decision_function`` /
  ``predict`` / ``score``, sparse-aware end to end.
- :class:`MulticlassSVC` — one-vs-one composition (the paper: "multi-
  class SVMs are generally implemented as several independent
  binary-class SVMs ... easily trained in parallel"); pairs train
  through :mod:`repro.parallel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.formats.base import MatrixFormat, SparseVector
from repro.formats.convert import from_dense
from repro.parallel.pool import parallel_map
from repro.perf.counters import OpCounter
from repro.svm.kernels import Kernel, make_kernel
from repro.svm.smo import SMOResult, smo_train

MatrixLike = Union[MatrixFormat, np.ndarray]


def _as_matrix(X: MatrixLike, fmt: str = "CSR") -> MatrixFormat:
    if isinstance(X, MatrixFormat):
        return X
    return from_dense(np.asarray(X), fmt)


class SVC:
    """Binary support vector classifier trained with SMO.

    Parameters
    ----------
    kernel:
        Kernel name (``linear`` / ``polynomial`` / ``gaussian`` /
        ``sigmoid``) or a :class:`~repro.svm.kernels.Kernel` instance.
    C, tol, max_iter, cache_rows, cache_mb, working_set, shrink_every,
    fuse_rows:
        Passed through to :func:`repro.svm.smo.smo_train`
        (``working_set="second"`` enables LIBSVM's second-order pair
        selection; ``shrink_every > 0`` enables shrinking; ``cache_mb``
        sizes the row cache by memory budget, LIBSVM ``-m`` style;
        ``fuse_rows=False`` disables the dual-row SpMM hot path).
    sv_block:
        Support vectors per blocked SpMM sweep in
        :meth:`decision_function` (``1`` disables blocking and
        reproduces the historical per-vector loop).  Each sweep's
        columns are bit-for-bit identical to the per-vector SMSVs and
        the accumulation order is unchanged, so the blocked path is
        bitwise identical to the sequential one for any block size.
    kernel_params:
        Keyword parameters for a kernel given by name (e.g.
        ``gamma=0.5``).

    Notes
    -----
    The training matrix's storage format is whatever the caller built —
    this class never converts.  :class:`~repro.svm.adaptive.AdaptiveSVC`
    is the variant that schedules the layout first.
    """

    def __init__(
        self,
        kernel: Union[str, Kernel] = "linear",
        *,
        C: float = 1.0,
        tol: float = 1e-3,
        max_iter: int = 100_000,
        cache_rows: int = 256,
        cache_mb: Optional[float] = None,
        working_set: str = "first",
        shrink_every: int = 0,
        fuse_rows: bool = True,
        sv_block: int = 32,
        **kernel_params: float,
    ) -> None:
        if isinstance(kernel, str):
            kernel = make_kernel(kernel, **kernel_params)
        elif kernel_params:
            raise ValueError(
                "kernel_params only apply when kernel is given by name"
            )
        if sv_block < 1:
            raise ValueError("sv_block must be >= 1")
        self.kernel = kernel
        self.C = C
        self.tol = tol
        self.max_iter = max_iter
        self.cache_rows = cache_rows
        self.cache_mb = cache_mb
        self.working_set = working_set
        self.shrink_every = shrink_every
        self.fuse_rows = fuse_rows
        self.sv_block = int(sv_block)
        # fitted state
        self.result_: Optional[SMOResult] = None
        self._sv_vectors: List[SparseVector] = []
        self._sv_coef: Optional[np.ndarray] = None
        self._sv_matrix: Optional[MatrixFormat] = None

    # -- training --------------------------------------------------------
    def fit(
        self,
        X: MatrixLike,
        y: np.ndarray,
        *,
        counter: Optional[OpCounter] = None,
    ) -> "SVC":
        """Train on M samples; ``y`` must be ±1."""
        X = _as_matrix(X)
        y = np.asarray(y, dtype=np.float64).ravel()
        result = smo_train(
            X,
            y,
            self.kernel,
            C=self.C,
            tol=self.tol,
            max_iter=self.max_iter,
            cache_rows=self.cache_rows,
            cache_mb=self.cache_mb,
            working_set=self.working_set,
            shrink_every=self.shrink_every,
            fuse_rows=self.fuse_rows,
            counter=counter,
        )
        self.result_ = result
        sv_idx = np.nonzero(result.alpha > 1e-12 * self.C)[0]
        self._sv_vectors = [X.row(int(i)) for i in sv_idx]
        self._sv_coef = result.alpha[sv_idx] * y[sv_idx]
        return self

    @property
    def fitted(self) -> bool:
        return self.result_ is not None

    @property
    def n_support(self) -> int:
        self._check_fitted()
        return len(self._sv_vectors)

    def _check_fitted(self) -> None:
        if self.result_ is None:
            raise RuntimeError("SVC is not fitted; call fit() first")

    # -- inference ---------------------------------------------------------
    def decision_function(
        self, X: MatrixLike, *, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        """``sum_sv coef_s K(X_s, x) - b`` for every query row.

        Support vectors are evaluated against the query matrix in
        blocks of ``sv_block`` through one fused SpMM per block
        (:meth:`~repro.svm.kernels.Kernel.rows`) instead of one SMSV
        per support vector: the matrix side — the queries — is
        traversed once per block rather than once per vector.  Each
        SpMM column is bit-for-bit the corresponding single-vector
        kernel row and the per-vector accumulation order is preserved,
        so the result is bitwise identical to the sequential loop.
        """
        self._check_fitted()
        X = _as_matrix(X)
        m = X.shape[0]
        out = np.full(m, -self.result_.b, dtype=np.float64)
        # Blocked SMSVs of the *support vectors* against the query
        # matrix: queries usually outnumber SVs, so this orientation
        # does the fewest kernel evaluations.
        norms = X.row_norms_sq()
        n_sv = len(self._sv_vectors)
        if self.sv_block > 1 and n_sv > 1:
            for lo in range(0, n_sv, self.sv_block):
                block = self._sv_vectors[lo : lo + self.sv_block]
                K = self.kernel.rows(
                    X,
                    block,
                    np.array([sv.norm_sq() for sv in block]),
                    norms,
                    counter,
                )
                for c, coef in enumerate(
                    self._sv_coef[lo : lo + self.sv_block]
                ):
                    out += coef * K[:, c]
            return out
        for coef, sv in zip(self._sv_coef, self._sv_vectors):
            krow = self.kernel.row(X, sv, sv.norm_sq(), norms, counter)
            out += coef * krow
        return out

    def predict(
        self, X: MatrixLike, *, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        """±1 labels for every query row."""
        return np.where(
            self.decision_function(X, counter=counter) >= 0.0, 1.0, -1.0
        )

    def score(self, X: MatrixLike, y: np.ndarray) -> float:
        """Classification accuracy on (X, y)."""
        y = np.asarray(y, dtype=np.float64).ravel()
        return float(np.mean(self.predict(X) == y))

    # -- persistence -----------------------------------------------------
    def save(self, path) -> None:
        """Persist the fitted model (see :mod:`repro.svm.persist`)."""
        from repro.svm.persist import save_svc

        save_svc(self, path)

    @classmethod
    def load(cls, path) -> "SVC":
        """Load a model saved by :meth:`save`; prediction-identical."""
        from repro.svm.persist import load_svc

        return load_svc(path)


@dataclass
class _PairModel:
    classes: Tuple[float, float]
    svc: SVC


class MulticlassSVC:
    """One-vs-one multiclass SVM: k*(k-1)/2 independent binary SVMs.

    Pairwise models vote at prediction time; ties resolve to the lowest
    class label (deterministic).  Training parallelises across pairs via
    :func:`repro.parallel.parallel_map`, matching the paper's note that
    binary subproblems are embarrassingly parallel.

    With ``adaptive=True`` every pairwise subproblem gets its *own*
    layout decision (pair submatrices have different profiles — e.g.
    dropping a dense class can leave a much sparser pair).
    """

    def __init__(
        self,
        kernel: Union[str, Kernel] = "linear",
        *,
        C: float = 1.0,
        tol: float = 1e-3,
        max_iter: int = 100_000,
        n_workers: Optional[int] = None,
        adaptive: bool = False,
        scheduler=None,
        **kernel_params: float,
    ) -> None:
        self._svc_args = dict(
            kernel=kernel, C=C, tol=tol, max_iter=max_iter, **kernel_params
        )
        self.n_workers = n_workers
        self.adaptive = adaptive or scheduler is not None
        self._scheduler = scheduler
        self.models_: List[_PairModel] = []
        self.classes_: Optional[np.ndarray] = None

    def _make_svc(self) -> SVC:
        if not self.adaptive:
            return SVC(**self._svc_args)
        from repro.svm.adaptive import AdaptiveSVC  # local: avoid cycle

        kwargs = dict(self._svc_args)
        if self._scheduler is not None:
            kwargs["scheduler"] = self._scheduler
        return AdaptiveSVC(**kwargs)

    def fit(self, X: MatrixLike, y: np.ndarray) -> "MulticlassSVC":
        X = _as_matrix(X)
        y = np.asarray(y, dtype=np.float64).ravel()
        self.classes_ = np.unique(y)
        if self.classes_.shape[0] < 2:
            raise ValueError("need at least two classes")
        pairs = list(combinations(self.classes_.tolist(), 2))
        rows, cols, values = X.to_coo()

        def train_pair(pair: Tuple[float, float]) -> _PairModel:
            a, b = pair
            mask = (y == a) | (y == b)
            idx = np.nonzero(mask)[0]
            lookup = np.full(X.shape[0], -1, dtype=np.int64)
            lookup[idx] = np.arange(idx.shape[0])
            keep = lookup[rows] >= 0
            sub = type(X).from_coo(
                lookup[rows[keep]],
                cols[keep],
                values[keep],
                (idx.shape[0], X.shape[1]),
            )
            y_bin = np.where(y[idx] == a, 1.0, -1.0)
            svc = self._make_svc()
            svc.fit(sub, y_bin)
            return _PairModel(classes=(a, b), svc=svc)

        self.models_ = parallel_map(train_pair, pairs, n_workers=self.n_workers)
        return self

    def predict(
        self, X: MatrixLike, *, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        if not self.models_:
            raise RuntimeError("MulticlassSVC is not fitted; call fit() first")
        # Convert once; every pairwise model then votes through the
        # blocked SpMM inference path of SVC.decision_function.
        X = _as_matrix(X)
        m = X.shape[0]
        class_index: Dict[float, int] = {
            c: i for i, c in enumerate(self.classes_.tolist())
        }
        votes = np.zeros((m, len(class_index)), dtype=np.int64)
        for pm in self.models_:
            pred = pm.svc.predict(X, counter=counter)
            a, b = pm.classes
            votes[:, class_index[a]] += pred > 0
            votes[:, class_index[b]] += pred < 0
        return self.classes_[np.argmax(votes, axis=1)]

    def score(self, X: MatrixLike, y: np.ndarray) -> float:
        y = np.asarray(y, dtype=np.float64).ravel()
        return float(np.mean(self.predict(X) == y))

    # -- persistence -----------------------------------------------------
    def save(self, path) -> None:
        """Persist the fitted model (see :mod:`repro.svm.persist`)."""
        from repro.svm.persist import save_multiclass

        save_multiclass(self, path)

    @classmethod
    def load(cls, path) -> "MulticlassSVC":
        """Load a model saved by :meth:`save`; prediction-identical."""
        from repro.svm.persist import load_multiclass

        return load_multiclass(path)
