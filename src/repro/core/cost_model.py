"""Analytic per-format cost model (Eq. (7) made executable).

The paper explains every format performance gap through two quantities:
the *effective element count* a format's kernel must process (padding
included) and the *effective bandwidth* its access pattern achieves.
This module derives both from a :class:`~repro.features.profile.
DatasetProfile` alone — no data access — so the scheduler can rank
formats in microseconds.

Effective element counts (values + indices, per SMSV):

=======  =====================================================
DEN      ``M * N``                       (no indices)
CSR      ``sum_i ceil(dim_i / W) * W``   (SIMD row padding) + row ptrs
COO      ``nnz``                         (x3 streams)
ELL      ``M * mdim``                    (global row padding)
DIA      ``ndig * min(M, N)``            (diagonal padding)
=======  =====================================================

The CSR padding term is where ``vdim`` enters: with row lengths of mean
``adim`` and variance ``vdim`` the expected SIMD waste per row is close
to ``(W-1)/2`` once rows are irregular, and an additional lane-imbalance
penalty proportional to the coefficient of variation models the
fixed-width-SIMD effect of Fig. 4.  COO has no such term: all non-zeros
sit in one flat stream (the paper's stated reason COO overtakes CSR at
high ``vdim``).

Calibration constants default to values fitted on this library's NumPy
kernels (see ``ArchCalibration.numpy_default``); ``ArchCalibration.
fit()`` re-fits them on the running machine with micro-probes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple

from repro.features.profile import DatasetProfile
from repro.formats.base import FORMAT_NAMES

#: Formats the analytic model can rank: the paper's five basic layouts
#: plus PR 4's sliced-ELL (SELL-C) and the row-reordered variants
#: (RCSR / RELL / RSELL = SELL-C-sigma).  The probe strategies accept
#: anything in ``FORMAT_CLASSES``; the cost strategy accepts these.
ANALYTIC_FORMATS: Tuple[str, ...] = FORMAT_NAMES + (
    "SELL",
    "RCSR",
    "RELL",
    "RSELL",
)


@dataclass(frozen=True)
class ArchCalibration:
    """Per-format machine constants used by the cost model.

    Attributes
    ----------
    simd_width:
        Vector lane count ``W`` (8 = AVX-512 doubles, the paper's Phi).
    cost_per_element:
        Relative time to process one stored element, per format.  DEN is
        cheapest (pure streaming, BLAS); COO pays for three streams and
        an atomic-style scatter; DIA and ELL stream regularly.
    row_overhead:
        Fixed cost per matrix row (CSR's pointer chase / loop control).
    diag_overhead:
        Fixed cost per diagonal (DIA's per-diagonal setup).
    csr_imbalance:
        Strength of the CSR lane-imbalance penalty ``1 + c * cv_dim``.
    """

    simd_width: int = 8
    cost_per_element: Dict[str, float] = field(
        default_factory=lambda: {
            "DEN": 0.35,
            "CSR": 1.0,
            "COO": 1.35,
            "ELL": 0.9,
            "DIA": 0.55,  # values only, contiguous x: no index stream
            "SELL": 0.9,  # ELL-like regular streams, per-slice padded
            "RCSR": 1.0,
            "RELL": 0.9,
            "RSELL": 0.9,
        }
    )
    row_overhead: Dict[str, float] = field(
        default_factory=lambda: {
            "DEN": 0.1,
            "CSR": 1.0,
            "COO": 0.0,
            "ELL": 0.2,
            "DIA": 0.0,
            "SELL": 0.2,
            "RCSR": 1.0,
            "RELL": 0.2,
            "RSELL": 0.2,
        }
    )
    diag_overhead: float = 180.0
    csr_imbalance: float = 0.35
    #: Absolute-spread term: wide row-length distributions leave whole
    #: vector registers idle regardless of the mean (the raw-vdim
    #: dependence Fig. 4 plots).  Multiplies ``sqrt(vdim) / W``.
    csr_spread: float = 0.05
    #: Fraction of each format's per-element cost that is *traversal*
    #: (index streams, gathers, segment bookkeeping) rather than
    #: arithmetic.  A blocked SpMM with ``batch_k`` right-hand sides
    #: pays the traversal fraction once per sweep and only the
    #: arithmetic remainder per column — the amortisation that lets the
    #: winning layout shift for batched workloads (Auto-SpMV).  DEN has
    #: no index stream, hence zero.
    batch_amortized: Dict[str, float] = field(
        default_factory=lambda: {
            "DEN": 0.0,
            "CSR": 0.35,
            "COO": 0.45,
            "ELL": 0.35,
            "DIA": 0.15,
            "SELL": 0.35,
            "RCSR": 0.35,
            "RELL": 0.35,
            "RSELL": 0.35,
        }
    )
    #: Fraction of the *excess over nnz* (SIMD padding + lane
    #: imbalance) that survives a descending-length row sort.  Sorting
    #: makes W-row groups / C-row slices internally near-uniform, so
    #: most — not all — of the padded work collapses; window-boundary
    #: residuals keep it non-zero.
    sorted_residual: float = 0.15
    #: Per-row boundary cost of permutation transparency, in effective
    #: elements: one scattered write per output row per column, plus
    #: the permutation-vector stream.
    reorder_scatter: float = 1.0

    @classmethod
    def numpy_default(cls) -> "ArchCalibration":
        """Constants fitted on this library's vectorised NumPy kernels.

        Fitted by regressing measured per-element SMSV time of each
        kernel over the Fig. 2/3/4 synthetic families (see
        ``examples/calibrate_cost_model.py`` for the refit procedure).
        """
        return cls()

    def with_simd_width(self, w: int) -> "ArchCalibration":
        if w < 1:
            raise ValueError("simd_width must be >= 1")
        return replace(self, simd_width=w)


@dataclass(frozen=True)
class FormatCost:
    """Predicted cost breakdown of one format for one profile."""

    fmt: str
    elements: float  #: effective stored elements processed per SMSV
    overhead: float  #: per-row / per-diagonal fixed costs
    cost: float  #: total model cost (arbitrary units, comparable)

    def __lt__(self, other: "FormatCost") -> bool:
        return self.cost < other.cost


class CostModel:
    """Ranks formats for a dataset profile using the analytic model."""

    def __init__(self, calibration: Optional[ArchCalibration] = None) -> None:
        self.calibration = calibration or ArchCalibration.numpy_default()

    # -- effective element counts --------------------------------------
    def effective_elements(self, fmt: str, p: DatasetProfile) -> float:
        """Stored elements the format's SMSV kernel must process."""
        fmt = fmt.upper()
        if fmt == "DEN":
            return float(p.m) * p.n
        if fmt == "COO":
            return float(p.nnz)
        if fmt == "ELL":
            return float(p.m) * p.mdim
        if fmt == "DIA":
            return float(p.ndig) * min(p.m, p.n)
        if fmt == "CSR":
            w = self.calibration.simd_width
            if p.m == 0:
                return 0.0
            # Expected ceil-padding: exact when rows are uniform,
            # (W-1)/2 per row otherwise.
            if p.vdim == 0.0 and float(p.adim).is_integer():
                padded_per_row = w * math.ceil(p.adim / w)
            else:
                padded_per_row = p.adim + (w - 1) / 2.0
            padded = p.m * padded_per_row
            # Lane imbalance grows with row-length variation — the
            # Fig. 4 effect.  Two terms: relative (cv) and absolute
            # spread in units of vector registers (sqrt(vdim) / W).
            imbalance = (
                1.0
                + self.calibration.csr_imbalance * p.cv_dim
                + self.calibration.csr_spread * math.sqrt(p.vdim) / w
            )
            return padded * imbalance
        if fmt == "SELL":
            return self._sell_elements(p)
        if fmt == "RSELL":
            # Sorted rows collapse the within-slice spread; only the
            # boundary residual of the padding excess survives, plus
            # the permutation scatter at the output boundary.
            unsorted = self._sell_elements(p)
            nnz = float(p.nnz)
            return (
                nnz
                + self.calibration.sorted_residual * max(0.0, unsorted - nnz)
                + self.calibration.reorder_scatter * p.m
            )
        if fmt == "RCSR":
            # Same collapse for the lockstep-SIMD CSR row groups: the
            # per-group max approaches the group mean after sorting.
            base = self.effective_elements("CSR", p)
            nnz = float(p.nnz)
            return (
                nnz
                + self.calibration.sorted_residual * max(0.0, base - nnz)
                + self.calibration.reorder_scatter * p.m
            )
        if fmt == "RELL":
            # ELL pads to the *global* max row length, which no row
            # order can reduce — reordering only adds scatter cost.
            return (
                self.effective_elements("ELL", p)
                + self.calibration.reorder_scatter * p.m
            )
        raise ValueError(f"unknown format {fmt!r}")

    def _sell_elements(self, p: DatasetProfile) -> float:
        """Expected SELL-C padded elements for rows in natural order.

        Each C-row slice pads to its own max; for row lengths of mean
        ``adim`` and variance ``vdim`` the Gaussian extreme-value
        asymptotic gives ``E[slice max] ~ adim + sqrt(vdim * 2 ln C)``
        (the same approximation ``csr_cost_from_profile`` uses for
        W-row lockstep groups), capped at the hard bound ``mdim``.
        Slice height C defaults to the SIMD width, matching
        ``repro.formats.sell.DEFAULT_CHUNK``; a warm tuning-cache
        entry for this machine and shape class overrides it, so the
        model prices the slice height the builders will actually use
        (``SELLMatrix.from_coo`` consults the same entry).
        """
        if p.m == 0:
            return 0.0
        from repro.tune.cache import tuned_value

        tuned = tuned_value("sell_chunk", "chunk", profile=p)
        c = max(
            tuned if tuned else self.calibration.simd_width, 2
        )
        slice_max = p.adim + math.sqrt(
            max(p.vdim, 0.0) * 2.0 * math.log(c)
        )
        per_row = min(float(p.mdim), slice_max)
        return max(float(p.nnz), p.m * per_row)

    def cost(
        self, fmt: str, p: DatasetProfile, batch_k: int = 1
    ) -> FormatCost:
        """Model cost of one blocked sweep in ``fmt`` for profile ``p``.

        ``batch_k=1`` is one SMSV (the historical model, unchanged).
        For ``batch_k > 1`` the sweep carries k right-hand sides: the
        traversal fraction of the element cost and the fixed per-row /
        per-diagonal overheads are paid once, the arithmetic remainder
        k times — so the total is strictly less than k independent
        SMSVs for every format with an index stream.
        """
        fmt = fmt.upper()
        if batch_k < 1:
            raise ValueError("batch_k must be >= 1")
        cal = self.calibration
        elements = self.effective_elements(fmt, p)
        per_elem = cal.cost_per_element[fmt]
        overhead = cal.row_overhead[fmt] * p.m
        if fmt == "DIA":
            overhead += cal.diag_overhead * p.ndig
        traversal = cal.batch_amortized.get(fmt, 0.0)
        element_cost = elements * per_elem
        # shared-once traversal + per-column arithmetic
        total = (
            traversal * element_cost
            + batch_k * (1.0 - traversal) * element_cost
            + overhead
        )
        return FormatCost(fmt=fmt, elements=elements, overhead=overhead, cost=total)

    def rank(
        self,
        p: DatasetProfile,
        candidates: Optional[Iterable[str]] = None,
        batch_k: int = 1,
    ) -> List[FormatCost]:
        """All candidate costs for one ``batch_k``-wide sweep, cheapest
        first.  Ranking whole-sweep costs is equivalent to ranking
        amortised per-column costs (same k for every candidate)."""
        names = list(candidates) if candidates is not None else list(FORMAT_NAMES)
        return sorted(self.cost(f, p, batch_k) for f in names)

    def best(
        self,
        p: DatasetProfile,
        candidates: Optional[Iterable[str]] = None,
        batch_k: int = 1,
    ) -> str:
        return self.rank(p, candidates, batch_k)[0].fmt

    def shortlist(
        self, p: DatasetProfile, k: int = 2, batch_k: int = 1
    ) -> List[str]:
        """The ``k`` cheapest formats — what the hybrid strategy probes."""
        if k < 1:
            raise ValueError("k must be >= 1")
        return [c.fmt for c in self.rank(p, batch_k=batch_k)[:k]]

    # -- conversion accounting -----------------------------------------
    def conversion_cost(self, p: DatasetProfile, target: str) -> float:
        """Model cost of converting the input into ``target`` format.

        One pass over the nnz (sort-dominated, modelled linear with a
        constant) plus writing the target's storage.  The scheduler
        amortises this against the per-iteration savings: SMO runs
        thousands of iterations, so conversion is nearly always worth
        it — but the accounting keeps the decision honest for tiny
        iteration budgets.
        """
        build = 4.0 * p.nnz
        if target.upper() in ("RCSR", "RELL", "RSELL"):
            # Reordered targets also sort the row-length keys (the
            # sigma-window permutation) and gather rows through it.
            build += p.m * math.log2(max(p.m, 2)) + p.nnz
        write = self.effective_elements(target, p)
        return build + write

    def worthwhile(
        self,
        p: DatasetProfile,
        current: str,
        target: str,
        iterations: int,
        batch_k: int = 1,
    ) -> bool:
        """Is converting from ``current`` to ``target`` net-positive for
        an SMO run of ``iterations`` steps (2 SMSVs per step)?

        With ``batch_k > 1`` the two per-iteration kernel rows arrive as
        blocked sweeps of width ``batch_k``, so an iteration performs
        ``2 / batch_k`` sweeps on average; the per-sweep costs are the
        batched ones.  ``batch_k=1`` reproduces the historical model
        exactly.
        """
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        sweeps = 2.0 / batch_k * iterations
        saving = (
            self.cost(current, p, batch_k).cost
            - self.cost(target, p, batch_k).cost
        ) * sweeps
        return saving > self.conversion_cost(p, target)
