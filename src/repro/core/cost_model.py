"""Analytic per-format cost model (Eq. (7) made executable).

The paper explains every format performance gap through two quantities:
the *effective element count* a format's kernel must process (padding
included) and the *effective bandwidth* its access pattern achieves.
This module derives both from a :class:`~repro.features.profile.
DatasetProfile` alone — no data access — so the scheduler can rank
formats in microseconds.

Effective element counts (values + indices, per SMSV):

=======  =====================================================
DEN      ``M * N``                       (no indices)
CSR      ``sum_i ceil(dim_i / W) * W``   (SIMD row padding) + row ptrs
COO      ``nnz``                         (x3 streams)
ELL      ``M * mdim``                    (global row padding)
DIA      ``ndig * min(M, N)``            (diagonal padding)
=======  =====================================================

The CSR padding term is where ``vdim`` enters: with row lengths of mean
``adim`` and variance ``vdim`` the expected SIMD waste per row is close
to ``(W-1)/2`` once rows are irregular, and an additional lane-imbalance
penalty proportional to the coefficient of variation models the
fixed-width-SIMD effect of Fig. 4.  COO has no such term: all non-zeros
sit in one flat stream (the paper's stated reason COO overtakes CSR at
high ``vdim``).

Calibration constants default to values fitted on this library's NumPy
kernels (see ``ArchCalibration.numpy_default``); ``ArchCalibration.
fit()`` re-fits them on the running machine with micro-probes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple

from repro.features.profile import DatasetProfile
from repro.formats.base import FORMAT_NAMES


@dataclass(frozen=True)
class ArchCalibration:
    """Per-format machine constants used by the cost model.

    Attributes
    ----------
    simd_width:
        Vector lane count ``W`` (8 = AVX-512 doubles, the paper's Phi).
    cost_per_element:
        Relative time to process one stored element, per format.  DEN is
        cheapest (pure streaming, BLAS); COO pays for three streams and
        an atomic-style scatter; DIA and ELL stream regularly.
    row_overhead:
        Fixed cost per matrix row (CSR's pointer chase / loop control).
    diag_overhead:
        Fixed cost per diagonal (DIA's per-diagonal setup).
    csr_imbalance:
        Strength of the CSR lane-imbalance penalty ``1 + c * cv_dim``.
    """

    simd_width: int = 8
    cost_per_element: Dict[str, float] = field(
        default_factory=lambda: {
            "DEN": 0.35,
            "CSR": 1.0,
            "COO": 1.35,
            "ELL": 0.9,
            "DIA": 0.55,  # values only, contiguous x: no index stream
        }
    )
    row_overhead: Dict[str, float] = field(
        default_factory=lambda: {
            "DEN": 0.1,
            "CSR": 1.0,
            "COO": 0.0,
            "ELL": 0.2,
            "DIA": 0.0,
        }
    )
    diag_overhead: float = 180.0
    csr_imbalance: float = 0.35
    #: Absolute-spread term: wide row-length distributions leave whole
    #: vector registers idle regardless of the mean (the raw-vdim
    #: dependence Fig. 4 plots).  Multiplies ``sqrt(vdim) / W``.
    csr_spread: float = 0.05

    @classmethod
    def numpy_default(cls) -> "ArchCalibration":
        """Constants fitted on this library's vectorised NumPy kernels.

        Fitted by regressing measured per-element SMSV time of each
        kernel over the Fig. 2/3/4 synthetic families (see
        ``examples/calibrate_cost_model.py`` for the refit procedure).
        """
        return cls()

    def with_simd_width(self, w: int) -> "ArchCalibration":
        if w < 1:
            raise ValueError("simd_width must be >= 1")
        return replace(self, simd_width=w)


@dataclass(frozen=True)
class FormatCost:
    """Predicted cost breakdown of one format for one profile."""

    fmt: str
    elements: float  #: effective stored elements processed per SMSV
    overhead: float  #: per-row / per-diagonal fixed costs
    cost: float  #: total model cost (arbitrary units, comparable)

    def __lt__(self, other: "FormatCost") -> bool:
        return self.cost < other.cost


class CostModel:
    """Ranks formats for a dataset profile using the analytic model."""

    def __init__(self, calibration: Optional[ArchCalibration] = None) -> None:
        self.calibration = calibration or ArchCalibration.numpy_default()

    # -- effective element counts --------------------------------------
    def effective_elements(self, fmt: str, p: DatasetProfile) -> float:
        """Stored elements the format's SMSV kernel must process."""
        fmt = fmt.upper()
        if fmt == "DEN":
            return float(p.m) * p.n
        if fmt == "COO":
            return float(p.nnz)
        if fmt == "ELL":
            return float(p.m) * p.mdim
        if fmt == "DIA":
            return float(p.ndig) * min(p.m, p.n)
        if fmt == "CSR":
            w = self.calibration.simd_width
            if p.m == 0:
                return 0.0
            # Expected ceil-padding: exact when rows are uniform,
            # (W-1)/2 per row otherwise.
            if p.vdim == 0.0 and float(p.adim).is_integer():
                padded_per_row = w * math.ceil(p.adim / w)
            else:
                padded_per_row = p.adim + (w - 1) / 2.0
            padded = p.m * padded_per_row
            # Lane imbalance grows with row-length variation — the
            # Fig. 4 effect.  Two terms: relative (cv) and absolute
            # spread in units of vector registers (sqrt(vdim) / W).
            imbalance = (
                1.0
                + self.calibration.csr_imbalance * p.cv_dim
                + self.calibration.csr_spread * math.sqrt(p.vdim) / w
            )
            return padded * imbalance
        raise ValueError(f"unknown format {fmt!r}")

    def cost(self, fmt: str, p: DatasetProfile) -> FormatCost:
        """Model cost of one SMSV in ``fmt`` for profile ``p``."""
        fmt = fmt.upper()
        cal = self.calibration
        elements = self.effective_elements(fmt, p)
        per_elem = cal.cost_per_element[fmt]
        overhead = cal.row_overhead[fmt] * p.m
        if fmt == "DIA":
            overhead += cal.diag_overhead * p.ndig
        total = elements * per_elem + overhead
        return FormatCost(fmt=fmt, elements=elements, overhead=overhead, cost=total)

    def rank(
        self,
        p: DatasetProfile,
        candidates: Optional[Iterable[str]] = None,
    ) -> List[FormatCost]:
        """All candidate costs, cheapest first."""
        names = list(candidates) if candidates is not None else list(FORMAT_NAMES)
        return sorted(self.cost(f, p) for f in names)

    def best(
        self,
        p: DatasetProfile,
        candidates: Optional[Iterable[str]] = None,
    ) -> str:
        return self.rank(p, candidates)[0].fmt

    def shortlist(
        self, p: DatasetProfile, k: int = 2
    ) -> List[str]:
        """The ``k`` cheapest formats — what the hybrid strategy probes."""
        if k < 1:
            raise ValueError("k must be >= 1")
        return [c.fmt for c in self.rank(p)[:k]]

    # -- conversion accounting -----------------------------------------
    def conversion_cost(self, p: DatasetProfile, target: str) -> float:
        """Model cost of converting the input into ``target`` format.

        One pass over the nnz (sort-dominated, modelled linear with a
        constant) plus writing the target's storage.  The scheduler
        amortises this against the per-iteration savings: SMO runs
        thousands of iterations, so conversion is nearly always worth
        it — but the accounting keeps the decision honest for tiny
        iteration budgets.
        """
        build = 4.0 * p.nnz
        write = self.effective_elements(target, p)
        return build + write

    def worthwhile(
        self,
        p: DatasetProfile,
        current: str,
        target: str,
        iterations: int,
    ) -> bool:
        """Is converting from ``current`` to ``target`` net-positive for
        an SMO run of ``iterations`` steps (2 SMSVs per step)?"""
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        saving = (
            self.cost(current, p).cost - self.cost(target, p).cost
        ) * 2.0 * iterations
        return saving > self.conversion_cost(p, target)
