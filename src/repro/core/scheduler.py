"""The layout scheduler facade.

Combines the three decision mechanisms into one entry point:

========  =============================================================
Strategy  Behaviour
========  =============================================================
rules     decision list only (microseconds, fully predictable)
cost      analytic cost model only (microseconds, machine-calibrated)
probe     measure every format on a row sample (milliseconds, exact)
hybrid    cost model shortlists top-k, probe decides among them
========  =============================================================

Decisions are cached by a quantised profile key, so repeated training
runs on similarly-shaped data skip re-deciding — the "runtime" in
runtime scheduling stays cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.analysis.race import make_lock, track_shared

from repro.core.autotune import AutoTuner
from repro.core.cost_model import ArchCalibration, CostModel
from repro.core.rules import RuleThresholds, rule_based_choice
from repro.features.extract import extract_profile, profile_from_coo
from repro.features.profile import DatasetProfile
from repro.formats.base import FORMAT_NAMES, MatrixFormat
from repro.formats.convert import convert, format_class
from repro.obs.audit import DecisionRecord, audit_log, current_dataset
from repro.obs.trace import get_tracer

STRATEGIES = ("rules", "cost", "probe", "hybrid")


@dataclass(frozen=True)
class Decision:
    """A scheduling decision with its audit trail."""

    fmt: str
    strategy: str
    reason: str
    profile: DatasetProfile
    cached: bool = False
    #: Provenance of the chosen format: "analytic" (cost model / rules
    #: / decision cache), "tuned" (persisted tuning cache), or "probe"
    #: (measured on the spot).
    source: str = "analytic"


def _quantise(x: float) -> float:
    """Round to ~1.5 significant figures for cache keying: two matrices
    whose statistics agree this coarsely get the same decision."""
    if x == 0.0:
        return 0.0
    import math

    exp = math.floor(math.log10(abs(x)))
    return round(x / 10**exp, 1) * 10**exp


class DecisionCache:
    """Profile-keyed memo of past decisions.

    The key also carries the scheduler's ``batch_k``: the same profile
    can legitimately map to different formats for single-vector and
    blocked sweeps (the amortisation shifts the ranking), so the two
    workloads must not share cache entries.

    Thread-safe: the serving layer shares one scheduler (and hence one
    cache) across concurrent request threads, so the read-check-evict
    sequence in :meth:`put` must be atomic — without the lock, two
    threads can both observe a full store and both evict, and on a
    one-entry cache the second ``next(iter(...))`` raises
    ``StopIteration`` on the emptied dict.  Entries are assumed to come
    from schedulers with the same candidate set; schedulers with
    different candidate restrictions must not share a cache.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._store: Dict[Tuple, str] = {}
        self._lock = make_lock("core.scheduler.cache")
        track_shared(self, ("_store",))

    @staticmethod
    def key(p: DatasetProfile, batch_k: int = 1) -> Tuple:
        return tuple(_quantise(v) for v in p.as_vector()) + (int(batch_k),)

    def get(self, p: DatasetProfile, batch_k: int = 1) -> Optional[str]:
        key = self.key(p, batch_k)
        with self._lock:
            return self._store.get(key)

    def put(self, p: DatasetProfile, fmt: str, batch_k: int = 1) -> None:
        key = self.key(p, batch_k)
        with self._lock:
            if key not in self._store and len(self._store) >= self.maxsize:
                # FIFO eviction: oldest insertion order (dicts preserve
                # it).  Guarded by the lock so concurrent puts cannot
                # both evict from (and then exhaust) the same store.
                self._store.pop(next(iter(self._store)))
            self._store[key] = fmt

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def clear(self) -> None:
        with self._lock:
            self._store.clear()


class LayoutScheduler:
    """Runtime data-layout scheduler (the paper's adaptive system).

    Parameters
    ----------
    strategy:
        One of ``rules`` / ``cost`` / ``probe`` / ``hybrid``.
    calibration:
        Machine constants for the cost model.
    thresholds:
        Decision-list boundaries for the rules strategy.
    tuner:
        Probe configuration for the probe/hybrid strategies.
    shortlist:
        How many model-ranked candidates the hybrid strategy probes.
    batch_k:
        Kernel-row block width the workload will run at (the tenth
        knob of the decision system).  ``1`` models classic per-vector
        SMSV; larger values amortise index traversal across columns in
        the cost model, which can shift the winning layout for batched
        (SpMM) workloads such as the fused dual-row SMO path
        (``batch_k=2``).
    cache:
        Optional shared decision cache.
    candidates:
        Formats the scheduler decides among (default: the paper's
        five).  Extended formats (CSC, BCSR) may be included for the
        probe/hybrid strategies — their fitness depends on structure
        the nine-parameter profile does not capture (column stats,
        block fill), so only empirical probing can rank them.  The
        *cost* strategy accepts any subset of ``ANALYTIC_FORMATS`` —
        the five basic formats plus SELL and the reordered layouts
        (RCSR/RELL/RSELL), all of which the analytic model prices,
        including the reordering's scatter overhead — which is how the
        serving layer pins decisions to the bitwise-exact kernel family
        and how ``repro bench sell`` adds "reorder + SELL" to the race;
        the rules strategy's decision list is fixed and accepts no
        restriction.
    """

    def __init__(
        self,
        strategy: str = "hybrid",
        *,
        calibration: Optional[ArchCalibration] = None,
        thresholds: Optional[RuleThresholds] = None,
        tuner: Optional[AutoTuner] = None,
        shortlist: int = 2,
        batch_k: int = 1,
        cache: Optional[DecisionCache] = None,
        candidates: Optional[Tuple[str, ...]] = None,
    ) -> None:
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        if shortlist < 1:
            raise ValueError("shortlist must be >= 1")
        if batch_k < 1:
            raise ValueError("batch_k must be >= 1")
        if candidates is not None:
            if not candidates:
                raise ValueError("candidates must be non-empty")
            for c in candidates:
                format_class(c)  # validate eagerly
            from repro.core.cost_model import ANALYTIC_FORMATS

            analytic_only = all(
                c.upper() in ANALYTIC_FORMATS for c in candidates
            )
            if strategy == "rules":
                raise ValueError(
                    "the rules strategy decides with a fixed decision "
                    "list and cannot restrict candidates; use the "
                    "cost, probe or hybrid strategy"
                )
            if strategy == "cost" and not analytic_only:
                raise ValueError(
                    "extended candidates (CSC/BCSR) require the probe "
                    "or hybrid strategy (the analytic model only ranks "
                    "the basic formats plus SELL and the reordered "
                    "layouts)"
                )
            candidates = tuple(c.upper() for c in candidates)
        self.strategy = strategy
        self.cost_model = CostModel(calibration)
        self.thresholds = thresholds or RuleThresholds()
        self.tuner = tuner or AutoTuner()
        self.shortlist = shortlist
        self.batch_k = batch_k
        self.cache = cache if cache is not None else DecisionCache()
        self.candidates = tuple(candidates) if candidates else None

    # -- deciding -------------------------------------------------------
    def decide_from_coo(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        shape: Tuple[int, int],
    ) -> Decision:
        """Decide the layout for a matrix given as COO triples.

        Every call is audited: the nine profile parameters, the
        model's per-format costs and the chosen format land in the
        process :func:`~repro.obs.audit.audit_log`.  Under tracing the
        decision is additionally *measured* (once per quantised
        profile key) so the audit record can report regret.  The
        decision itself is identical with and without tracing —
        observation never changes scheduling.
        """
        tracer = get_tracer()
        with tracer.span("schedule.decide") as sp:
            profile = profile_from_coo(rows, cols, shape)
            tuned = self._tuned_format(profile)
            cached = (
                None if tuned is not None
                else self.cache.get(profile, self.batch_k)
            )
            if tuned is not None:
                # Warm tuning-cache key: the measured-best format for
                # this (machine, profile bucket, batch_k) — no analytic
                # pricing on the decision path.  Not memoised in the
                # DecisionCache so the provenance stays visible; the
                # tuning-cache lookup *is* the memo.
                decision = Decision(
                    fmt=tuned,
                    strategy=self.strategy,
                    reason=(
                        "measured-best format from the persisted "
                        "tuning cache"
                    ),
                    profile=profile,
                    cached=True,
                    source="tuned",
                )
                measured: Dict[str, float] = {}
            elif cached is not None:
                decision = Decision(
                    fmt=cached,
                    strategy=self.strategy,
                    reason="cached decision for an equivalent profile",
                    profile=profile,
                    cached=True,
                )
                measured: Dict[str, float] = {}
            else:
                decision, measured = self._decide_uncached(
                    profile, rows, cols, values, shape
                )
                self.cache.put(profile, decision.fmt, self.batch_k)
            if tracer.enabled:
                sp.set("strategy", decision.strategy)
                sp.set("fmt", decision.fmt)
                sp.set("cached", decision.cached)
                sp.set("batch_k", self.batch_k)
                sp.set("source", decision.source)
            self._audit(decision, measured, rows, cols, values, shape)
        return decision

    def _tuned_format(self, profile: DatasetProfile) -> Optional[str]:
        """The persisted tuning cache's pick for this profile, if any.

        A warm key must also survive the scheduler's own restrictions:
        the stored format has to be one this scheduler is allowed to
        choose (candidate set) — otherwise the key is treated as cold
        and the configured strategy decides, unchanged.
        """
        from repro.tune.cache import tuned_format

        fmt = tuned_format(profile, batch_k=self.batch_k)
        if fmt is None:
            return None
        allowed = self.candidates or FORMAT_NAMES
        return fmt if fmt in allowed else None

    def _decide_uncached(
        self,
        profile: DatasetProfile,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        shape: Tuple[int, int],
    ) -> Tuple[Decision, Dict[str, float]]:
        """Run the configured strategy; returns ``(decision, measured)``
        where ``measured`` holds any probe timings the strategy took
        anyway (free audit measurements for probe/hybrid)."""
        measured: Dict[str, float] = {}
        if self.strategy == "rules":
            rd = rule_based_choice(profile, self.thresholds)
            decision = Decision(
                fmt=rd.fmt,
                strategy="rules",
                reason=f"rule '{rd.rule}': {rd.reason}",
                profile=profile,
            )
        elif self.strategy == "cost":
            ranked = self.cost_model.rank(
                profile, self.candidates, batch_k=self.batch_k
            )
            if len(ranked) > 1:
                reason = (
                    f"model cost {ranked[0].cost:.3g} vs runner-up "
                    f"{ranked[1].fmt} at {ranked[1].cost:.3g}"
                )
            else:
                reason = (
                    f"model cost {ranked[0].cost:.3g} "
                    f"(only candidate)"
                )
            decision = Decision(
                fmt=ranked[0].fmt,
                strategy="cost",
                reason=reason,
                profile=profile,
            )
        elif self.strategy == "probe":
            results = self.tuner.probe(
                rows, cols, values, shape, self.candidates
            )
            measured = {r.fmt: r.median_seconds for r in results}
            decision = Decision(
                fmt=results[0].fmt,
                strategy="probe",
                reason=(
                    f"measured {results[0].median_seconds * 1e6:.1f} us/SMSV "
                    f"on {results[0].probe_rows} probe rows"
                ),
                profile=profile,
                source="probe",
            )
        else:  # hybrid
            from repro.core.cost_model import ANALYTIC_FORMATS

            if self.candidates and all(
                c in ANALYTIC_FORMATS for c in self.candidates
            ):
                # analytically-rankable restriction: the model ranks
                # exactly the allowed set, the probe decides among its
                # cheapest
                short = [
                    c.fmt
                    for c in self.cost_model.rank(
                        profile, self.candidates, batch_k=self.batch_k
                    )[: self.shortlist]
                ]
            else:
                short = self.cost_model.shortlist(
                    profile, self.shortlist, batch_k=self.batch_k
                )
                if self.candidates:
                    # extended candidates join the probe round directly
                    short = list(
                        dict.fromkeys(
                            short
                            + [
                                c
                                for c in self.candidates
                                if c not in short
                            ]
                        )
                    )
            if len(short) == 1:
                decision = Decision(
                    fmt=short[0],
                    strategy="hybrid",
                    reason="cost model shortlist of one",
                    profile=profile,
                )
            else:
                results = self.tuner.probe(rows, cols, values, shape, short)
                measured = {r.fmt: r.median_seconds for r in results}
                decision = Decision(
                    fmt=results[0].fmt,
                    strategy="hybrid",
                    reason=(
                        f"probed model shortlist {short}; "
                        f"{results[0].fmt} measured fastest"
                    ),
                    profile=profile,
                    source="probe",
                )

        return decision, measured

    def _audit(
        self,
        decision: Decision,
        measured: Dict[str, float],
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        shape: Tuple[int, int],
    ) -> None:
        """Leave the decision's audit record (regret inputs included).

        ``predicted`` always carries the analytic model's view of the
        rankable candidates.  ``measured`` is whatever the strategy
        probed anyway; when tracing is on and the strategy did not
        probe, the candidates are measured here — once per quantised
        profile key (:meth:`AuditLog.seen_measurement`), so traced
        test suites pay for one probe per distinct shape, not one per
        ``schedule()`` call.
        """
        from repro.core.cost_model import ANALYTIC_FORMATS

        log = audit_log()
        profile = decision.profile
        rankable = tuple(
            c
            for c in (self.candidates or FORMAT_NAMES)
            if c in ANALYTIC_FORMATS
        )
        predicted: Dict[str, float] = {}
        if rankable:
            predicted = {
                fc.fmt: fc.cost
                for fc in self.cost_model.rank(
                    profile, rankable, batch_k=self.batch_k
                )
            }
        tracer = get_tracer()
        key = DecisionCache.key(profile, self.batch_k)
        if measured:
            log.mark_measured(key)
        elif (
            tracer.enabled
            and not decision.cached
            and rankable
            and not log.seen_measurement(key)
        ):
            with tracer.span("schedule.measure") as sp:
                results = self.tuner.probe(
                    rows, cols, values, shape, rankable
                )
                measured = {r.fmt: r.median_seconds for r in results}
                if tracer.enabled:
                    sp.set("formats", len(measured))
            log.mark_measured(key)
        log.record(
            DecisionRecord(
                source="schedule",
                dataset=current_dataset(),
                strategy=decision.strategy,
                batch_k=self.batch_k,
                chosen=decision.fmt,
                reason=decision.reason,
                cached=decision.cached,
                features=profile.as_dict(),
                predicted=predicted,
                measured=measured,
                decision_source=decision.source,
            )
        )

    def decide(self, matrix: MatrixFormat) -> Decision:
        """Decide the layout for an already-stored matrix."""
        rows, cols, values = matrix.to_coo()
        return self.decide_from_coo(rows, cols, values, matrix.shape)

    # -- applying -------------------------------------------------------
    def apply(
        self,
        matrix: MatrixFormat,
        *,
        iterations_hint: Optional[int] = None,
    ) -> Tuple[MatrixFormat, Decision]:
        """Decide and convert; returns ``(matrix_in_best_format, why)``.

        Parameters
        ----------
        iterations_hint:
            Expected SMO iteration count for the upcoming training run.
            When given, the conversion is performed only if the cost
            model says the per-iteration savings amortise the one-off
            conversion cost over that many iterations (2 SMSVs each) —
            the accounting that keeps *runtime* scheduling net-positive
            even for very short runs.  ``None`` (default) always
            converts, matching the paper's setting where training runs
            thousands of iterations.
        """
        decision = self.decide(matrix)
        from repro.core.cost_model import ANALYTIC_FORMATS

        hint_applicable = (
            iterations_hint is not None
            and decision.fmt != matrix.name
            # the amortisation model covers the analytic formats only
            and matrix.name in ANALYTIC_FORMATS
            and decision.fmt in ANALYTIC_FORMATS
        )
        if hint_applicable and not self.cost_model.worthwhile(
            decision.profile,
            matrix.name,
            decision.fmt,
            iterations_hint,
            batch_k=self.batch_k,
        ):
            decision = Decision(
                fmt=matrix.name,
                strategy=decision.strategy,
                reason=(
                    f"{decision.fmt} predicted fastest, but converting "
                    f"from {matrix.name} would not amortise over "
                    f"{iterations_hint} iterations; staying put"
                ),
                profile=decision.profile,
                cached=decision.cached,
                source=decision.source,
            )
            return matrix, decision
        return convert(matrix, decision.fmt), decision

    def apply_coo(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        shape: Tuple[int, int],
    ) -> Tuple[MatrixFormat, Decision]:
        """Decide from triples and build the chosen format directly."""
        decision = self.decide_from_coo(rows, cols, values, shape)
        cls = format_class(decision.fmt)
        return cls.from_coo(rows, cols, values, shape), decision


def schedule_layout(
    matrix: MatrixFormat, strategy: str = "hybrid"
) -> Tuple[MatrixFormat, Decision]:
    """One-call convenience: re-lay out ``matrix`` optimally.

    >>> from repro.formats import from_dense
    >>> import numpy as np
    >>> M, why = schedule_layout(from_dense(np.eye(64)))
    >>> why.fmt in ("DIA", "ELL", "CSR", "COO", "DEN")
    True
    """
    return LayoutScheduler(strategy).apply(matrix)
