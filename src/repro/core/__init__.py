"""The paper's primary contribution: runtime data layout scheduling.

Given a machine-learning data matrix, pick the storage format (DEN /
CSR / COO / ELL / DIA) that will make SMO training fastest *on this
machine*, at runtime, before training starts.  Three cooperating
decision mechanisms are provided, mirroring the paper's Section III.B:

- :mod:`repro.core.rules` — a transparent decision list over the nine
  Table IV parameters (their +/- correlation signs made executable).
- :mod:`repro.core.cost_model` — an analytic model: per-format effective
  work and traffic derived from the profile, turned into predicted time
  via Eq. (7) (``time >~ traffic / bandwidth``) with per-format
  calibration constants that can be re-fitted on the running machine.
- :mod:`repro.core.autotune` — empirical probing: actually run a few
  SMSVs per candidate format (on a row sample) and measure.

:class:`repro.core.scheduler.LayoutScheduler` combines them: rules and
the cost model are free, probing costs a few milliseconds; the *hybrid*
strategy uses the model to shortlist and probes only the shortlist.
Decisions are cached by quantised profile.
"""

from repro.core.cost_model import ArchCalibration, CostModel, FormatCost
from repro.core.rules import RuleDecision, rule_based_choice
from repro.core.autotune import AutoTuner, ProbeResult
from repro.core.explain import explain
from repro.core.scheduler import (
    Decision,
    DecisionCache,
    LayoutScheduler,
    schedule_layout,
)

__all__ = [
    "CostModel",
    "ArchCalibration",
    "FormatCost",
    "rule_based_choice",
    "RuleDecision",
    "AutoTuner",
    "ProbeResult",
    "LayoutScheduler",
    "Decision",
    "DecisionCache",
    "schedule_layout",
    "explain",
]
