"""Human-readable decision reports.

A runtime system that silently reorganises your data earns trust by
showing its work.  :func:`explain` renders, for one dataset profile:

1. the nine influencing parameters,
2. the rule-based decision trace (which rule fired, why),
3. the analytic cost model's full per-format ranking with the effective
   element counts behind it,

as one text block (``python -m repro schedule --explain`` prints it).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.cost_model import ArchCalibration, CostModel
from repro.core.rules import RuleThresholds, rule_based_choice
from repro.features.profile import PARAMETER_NAMES, DatasetProfile


def explain(
    profile: DatasetProfile,
    *,
    calibration: Optional[ArchCalibration] = None,
    thresholds: Optional[RuleThresholds] = None,
) -> str:
    """Render the full decision rationale for one profile."""
    lines: List[str] = []

    lines.append("influencing parameters (paper Table IV)")
    d = profile.as_dict()
    for name in PARAMETER_NAMES:
        lines.append(f"  {name:8s} = {d[name]:g}")
    lines.append(
        f"  derived: balance (adim/mdim) = {profile.balance:.3f}, "
        f"diag fill = {profile.diag_fill:.3f}, "
        f"cv(dim) = {profile.cv_dim:.3f}"
    )
    lines.append("")

    rd = rule_based_choice(profile, thresholds)
    lines.append("rule-based decision")
    lines.append(f"  -> {rd.fmt}  (rule '{rd.rule}')")
    lines.append(f"     {rd.reason}")
    lines.append("")

    model = CostModel(calibration)
    ranked = model.rank(profile)
    lines.append("analytic cost model ranking (lower = faster)")
    best_cost = ranked[0].cost
    for c in ranked:
        rel = c.cost / best_cost if best_cost > 0 else 1.0
        lines.append(
            f"  {c.fmt:4s} cost={c.cost:12.4g}  ({rel:5.2f}x)  "
            f"effective elements={c.elements:12.4g}  "
            f"overhead={c.overhead:10.4g}"
        )
    lines.append(f"  -> {ranked[0].fmt}")
    return "\n".join(lines)
