"""Rule-based format selection — Table IV's signs made executable.

A transparent decision list capturing the qualitative structure the
paper derives in Section III.B:

1. (Nearly) dense matrices → **DEN**: at density near 1 every sparse
   format stores >= 2x the elements (Table II maxima) for the same
   flops.
2. Banded matrices (few diagonals, well-filled) → **DIA**: padding is
   negligible exactly when ``dnnz`` is close to the diagonal length
   (Fig. 2's left end).
3. Uniform rows (``mdim`` close to ``adim``) → **ELL**: zero padding
   and perfectly regular access (the paper picks ELL for adult).
4. High row-length variation → **COO**: CSR's fixed-width SIMD wastes
   lanes as ``vdim`` grows (Fig. 4), COO's flat element stream does not.
5. Otherwise → **CSR**: the robust default (what LIBSVM hardcodes).

Every decision records which rule fired and why, so the scheduler's
choices are auditable — the property a *runtime* system needs when a
wrong pick costs a 10x slowdown.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.features.profile import DatasetProfile


@dataclass(frozen=True)
class RuleThresholds:
    """Tunable decision boundaries; defaults follow the paper's data.

    The defaults separate the paper's own Table V datasets the way its
    Table VI selections do (dense family → DEN, trefethen → DIA,
    adult → ELL, mnist/sector → COO, aloi → CSR).
    """

    dense_density: float = 0.5  #: rule 1: density above this → DEN
    dia_max_ndig: int = 64  #: rule 2: at most this many diagonals
    dia_min_fill: float = 0.25  #: rule 2: min dnnz / min(M,N)
    ell_min_balance: float = 0.9  #: rule 3: adim/mdim at least this
    #: rule 4: raw row-length variance above this → COO.  Fig. 4 plots
    #: the COO/CSR speedup against raw vdim; the crossover sits between
    #: aloi (vdim 85, CSR wins) and mnist (vdim 1594, COO wins).
    coo_min_vdim: float = 500.0

    def __post_init__(self) -> None:
        if not 0.0 < self.dense_density <= 1.0:
            raise ValueError("dense_density must lie in (0, 1]")
        if not 0.0 < self.ell_min_balance <= 1.0:
            raise ValueError("ell_min_balance must lie in (0, 1]")


@dataclass(frozen=True)
class RuleDecision:
    """The chosen format plus the audit trail."""

    fmt: str
    rule: str
    reason: str


def rule_based_choice(
    p: DatasetProfile, thresholds: RuleThresholds | None = None
) -> RuleDecision:
    """Apply the decision list to a dataset profile."""
    t = thresholds or RuleThresholds()

    if p.nnz == 0:
        return RuleDecision(
            fmt="CSR",
            rule="empty",
            reason="empty matrix; CSR stores it in O(M) with no padding",
        )

    if p.density >= t.dense_density:
        return RuleDecision(
            fmt="DEN",
            rule="dense",
            reason=(
                f"density {p.density:.3f} >= {t.dense_density}: sparse "
                f"formats would store >= {2 * p.density:.1f}x the elements"
            ),
        )

    if p.ndig <= t.dia_max_ndig and p.diag_fill >= t.dia_min_fill:
        return RuleDecision(
            fmt="DIA",
            rule="banded",
            reason=(
                f"{p.ndig} diagonals, {p.diag_fill:.0%} filled: diagonal "
                f"padding is negligible"
            ),
        )

    if p.balance >= t.ell_min_balance:
        return RuleDecision(
            fmt="ELL",
            rule="uniform-rows",
            reason=(
                f"adim/mdim = {p.balance:.2f} >= {t.ell_min_balance}: "
                f"row padding wastes only {1 - p.balance:.0%}"
            ),
        )

    if p.vdim >= t.coo_min_vdim:
        return RuleDecision(
            fmt="COO",
            rule="high-variation",
            reason=(
                f"vdim = {p.vdim:.3g} >= {t.coo_min_vdim}: CSR SIMD "
                f"lanes would idle on irregular rows; COO's flat "
                f"stream does not"
            ),
        )

    return RuleDecision(
        fmt="CSR",
        rule="default",
        reason="no special structure detected; CSR is the robust default",
    )
