"""Empirical probing autotuner.

The ground truth for a layout decision is a measurement: build each
candidate format and time a handful of SMSVs with representative sparse
vectors (rows of the matrix, exactly like SMO's X_high / X_low).  The
probe follows the guide's ``timeit`` discipline — warm-up, repeats,
median — and bounds its own cost by probing a row *sample* of large
matrices (layout statistics are row-i.i.d. for ML datasets, so the
sample ranks formats like the full matrix does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.features.extract import profile_from_coo
from repro.formats.base import FORMAT_NAMES, MatrixFormat
from repro.formats.convert import format_class
from repro.perf.timers import benchmark


@dataclass(frozen=True)
class ProbeResult:
    """Measured probe outcome for one format."""

    fmt: str
    median_seconds: float
    build_seconds: float
    probe_rows: int

    def __lt__(self, other: "ProbeResult") -> bool:
        return self.median_seconds < other.median_seconds


class AutoTuner:
    """Measures candidate formats on (a sample of) the data matrix.

    Parameters
    ----------
    probe_rows:
        Maximum rows of the matrix used for probing; larger matrices are
        row-sampled down to this. ``None`` probes the full matrix.
    repeats / warmup:
        Timing discipline per candidate.
    smsv_per_probe:
        SMSVs per timed invocation (amortises timer resolution).
    seed:
        Sampling determinism.
    """

    def __init__(
        self,
        *,
        probe_rows: Optional[int] = 2048,
        repeats: int = 3,
        warmup: int = 1,
        smsv_per_probe: int = 4,
        seed: int = 0,
    ) -> None:
        if probe_rows is not None and probe_rows < 1:
            raise ValueError("probe_rows must be >= 1 or None")
        if smsv_per_probe < 1:
            raise ValueError("smsv_per_probe must be >= 1")
        self.probe_rows = probe_rows
        self.repeats = repeats
        self.warmup = warmup
        self.smsv_per_probe = smsv_per_probe
        self.seed = seed

    # -- sampling -------------------------------------------------------
    def _sample(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        shape: Tuple[int, int],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Tuple[int, int]]:
        m = shape[0]
        if self.probe_rows is None or m <= self.probe_rows:
            return rows, cols, values, shape
        rng = np.random.default_rng(self.seed)
        chosen = np.sort(rng.choice(m, size=self.probe_rows, replace=False))
        # Remap chosen row ids to a compact range.
        lookup = np.full(m, -1, dtype=np.int64)
        lookup[chosen] = np.arange(self.probe_rows)
        keep = lookup[rows] >= 0
        return (
            lookup[rows[keep]],
            cols[keep],
            values[keep],
            (self.probe_rows, shape[1]),
        )

    # -- probing ---------------------------------------------------------
    def probe(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        shape: Tuple[int, int],
        candidates: Optional[Iterable[str]] = None,
    ) -> List[ProbeResult]:
        """Measure every candidate; results sorted fastest-first.

        Probe vectors are actual rows of the (sampled) matrix — the SMO
        access pattern — cycled per repetition so a single atypical row
        cannot decide the format.
        """
        names = list(candidates) if candidates is not None else list(FORMAT_NAMES)
        srows, scols, svalues, sshape = self._sample(rows, cols, values, shape)
        m = sshape[0]
        if m == 0:
            raise ValueError("cannot probe an empty matrix")
        rng = np.random.default_rng(self.seed + 1)
        # Distinct rows, clamped to the matrix: a probe on m <
        # smsv_per_probe must not time the same row twice and divide by
        # the nominal count (it would under-report per-SMSV time).
        n_probe = min(m, self.smsv_per_probe)
        probe_ids = [int(i) for i in rng.permutation(m)[:n_probe]]

        results: List[ProbeResult] = []
        errors: Dict[str, Exception] = {}
        for name in names:
            cls = format_class(name)
            try:
                t_build = benchmark(
                    lambda: cls.from_coo(srows, scols, svalues, sshape),
                    repeats=1,
                    warmup=0,
                ).median
                matrix: MatrixFormat = cls.from_coo(
                    srows, scols, svalues, sshape
                )
            except Exception as exc:
                # A format that cannot represent this matrix (e.g. a
                # blocked layout on an incompatible shape) loses the
                # race by forfeit rather than aborting the whole probe.
                errors[name] = exc
                continue

            def run() -> None:
                # Row extraction + SMSV: exactly SMO's per-selected-
                # sample kernel work.  Timing both matters for formats
                # whose row access is expensive (CSC scans everything).
                for i in probe_ids:
                    matrix.smsv(matrix.row(i))

            r = benchmark(run, repeats=self.repeats, warmup=self.warmup)
            results.append(
                ProbeResult(
                    fmt=name,
                    median_seconds=r.median / len(probe_ids),
                    build_seconds=t_build,
                    probe_rows=m,
                )
            )
        if not results:
            raise ValueError(
                f"every candidate format failed to build: "
                f"{ {k: str(v) for k, v in errors.items()} }"
            )
        return sorted(results)

    def probe_matrix(
        self,
        matrix: MatrixFormat,
        candidates: Optional[Iterable[str]] = None,
    ) -> List[ProbeResult]:
        """Probe starting from an existing :class:`MatrixFormat`."""
        rows, cols, values = matrix.to_coo()
        return self.probe(rows, cols, values, matrix.shape, candidates)

    def best(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        shape: Tuple[int, int],
        candidates: Optional[Iterable[str]] = None,
    ) -> str:
        return self.probe(rows, cols, values, shape, candidates)[0].fmt

    # -- reporting --------------------------------------------------------
    @staticmethod
    def speedup_table(results: Sequence[ProbeResult]) -> Dict[str, float]:
        """Per-format speedup normalised to the slowest (Fig. 1 style)."""
        if not results:
            return {}
        worst = max(r.median_seconds for r in results)
        return {
            r.fmt: (worst / r.median_seconds if r.median_seconds > 0 else 1.0)
            for r in results
        }
