"""Training loop and time-to-accuracy measurement.

The paper's DNN metric is not loss but *wall time (and epochs/
iterations) until the model first reaches a target test accuracy*
(0.8 for CIFAR-10).  :class:`Trainer` implements exactly that contract:
train with minibatch SGD+momentum, evaluate the test accuracy on a
schedule, stop at the target (or at the epoch cap), and report the full
history so the tuning experiments can compare (B, eta, mu) settings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.data.cifar import ImageDataset
from repro.dnn.loss import SoftmaxCrossEntropy
from repro.dnn.net import Sequential
from repro.dnn.optim import MomentumSGD, Optimizer


@dataclass
class EpochStats:
    """Per-epoch record."""

    epoch: int
    iterations: int  #: cumulative iterations at epoch end
    mean_loss: float
    test_accuracy: float
    seconds: float  #: cumulative wall seconds at epoch end


@dataclass
class TrainingRun:
    """Outcome of one training run."""

    history: List[EpochStats] = field(default_factory=list)
    reached_target: bool = False
    target_accuracy: float = 0.0
    #: Iterations / epochs / seconds at the moment the target was first
    #: reached (NaN-equivalents when it never was).
    iterations_to_target: Optional[int] = None
    epochs_to_target: Optional[int] = None
    seconds_to_target: Optional[float] = None

    @property
    def final_accuracy(self) -> float:
        return self.history[-1].test_accuracy if self.history else 0.0

    @property
    def total_iterations(self) -> int:
        return self.history[-1].iterations if self.history else 0


class Trainer:
    """Minibatch trainer with a time-to-accuracy stopping rule.

    Parameters
    ----------
    net:
        The model (trained in place).
    batch_size:
        B — the paper's first tuning knob.
    lr / momentum:
        eta and mu — the second and third knobs (Eqs. (8)-(9)).
    target_accuracy:
        Stop as soon as test accuracy reaches this (0.8 in the paper).
    max_epochs:
        Hard cap (the paper's runs used up to 120 epochs).
    optimizer:
        Override the default :class:`MomentumSGD` entirely.
    lr_schedule:
        Optional callable ``epoch -> lr`` (see
        :mod:`repro.dnn.schedules`); applied at the start of every
        epoch to the optimiser's ``lr`` attribute.  Overrides the
        constant ``lr`` from epoch 1 on.
    seed:
        Shuffling determinism.
    """

    def __init__(
        self,
        net: Sequential,
        *,
        batch_size: int = 100,
        lr: float = 0.001,
        momentum: float = 0.9,
        target_accuracy: float = 0.8,
        max_epochs: int = 50,
        optimizer: Optional[Optimizer] = None,
        lr_schedule=None,
        seed: int = 0,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not 0.0 < target_accuracy <= 1.0:
            raise ValueError("target_accuracy must lie in (0, 1]")
        if max_epochs < 1:
            raise ValueError("max_epochs must be >= 1")
        self.net = net
        self.batch_size = batch_size
        self.optimizer = optimizer or MomentumSGD(lr, momentum)
        self.loss_fn = SoftmaxCrossEntropy()
        self.target_accuracy = target_accuracy
        self.max_epochs = max_epochs
        self.lr_schedule = lr_schedule
        self.seed = seed

    def train_epoch(self, data: ImageDataset, epoch: int) -> float:
        """One pass over the training set; returns mean loss."""
        if self.lr_schedule is not None:
            self.optimizer.lr = float(self.lr_schedule(epoch))
        losses = []
        for xb, yb in data.batches(self.batch_size, seed=self.seed + epoch):
            logits = self.net.forward(xb.astype(np.float64), training=True)
            loss, grad = self.loss_fn(logits, yb)
            self.net.backward(grad)
            self.optimizer.step(self.net)
            losses.append(loss)
        return float(np.mean(losses)) if losses else 0.0

    def fit(self, data: ImageDataset) -> TrainingRun:
        """Train until the target accuracy or the epoch cap."""
        run = TrainingRun(target_accuracy=self.target_accuracy)
        iters_per_epoch = int(np.ceil(data.n_train / self.batch_size))
        t0 = time.perf_counter()
        for epoch in range(1, self.max_epochs + 1):
            mean_loss = self.train_epoch(data, epoch)
            acc = self.net.accuracy(data.x_test.astype(np.float64), data.y_test)
            elapsed = time.perf_counter() - t0
            stats = EpochStats(
                epoch=epoch,
                iterations=epoch * iters_per_epoch,
                mean_loss=mean_loss,
                test_accuracy=acc,
                seconds=elapsed,
            )
            run.history.append(stats)
            if acc >= self.target_accuracy and not run.reached_target:
                run.reached_target = True
                run.iterations_to_target = stats.iterations
                run.epochs_to_target = epoch
                run.seconds_to_target = elapsed
                break
        return run
