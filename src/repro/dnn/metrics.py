"""Classification metrics and learning-curve utilities.

Small, dependency-free helpers the experiments and examples share:
confusion matrices, top-k accuracy, per-class accuracy, and a
first-epoch-reaching-threshold extractor for time-to-accuracy curves
(the paper's Fig. 5 metric applied to a recorded history).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, *, n_classes: Optional[int] = None
) -> np.ndarray:
    """``C[i, j]`` = samples of true class i predicted as class j."""
    y_true = np.asarray(y_true, dtype=np.int64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.int64).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have equal length")
    if y_true.size == 0:
        raise ValueError("empty inputs")
    k = n_classes if n_classes is not None else int(
        max(y_true.max(), y_pred.max())
    ) + 1
    if y_true.min() < 0 or y_pred.min() < 0:
        raise ValueError("labels must be non-negative")
    if max(int(y_true.max()), int(y_pred.max())) >= k:
        raise ValueError("label exceeds n_classes")
    out = np.zeros((k, k), dtype=np.int64)
    np.add.at(out, (y_true, y_pred), 1)
    return out


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    if y_true.shape != y_pred.shape or y_true.size == 0:
        raise ValueError("inputs must be equal-length and non-empty")
    return float(np.mean(y_true == y_pred))


def per_class_accuracy(
    y_true: np.ndarray, y_pred: np.ndarray, *, n_classes: Optional[int] = None
) -> np.ndarray:
    """Recall per class; NaN for classes absent from ``y_true``."""
    cm = confusion_matrix(y_true, y_pred, n_classes=n_classes)
    totals = cm.sum(axis=1).astype(np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(totals > 0, np.diag(cm) / totals, np.nan)


def top_k_accuracy(
    logits: np.ndarray, y_true: np.ndarray, k: int = 5
) -> float:
    """Fraction of samples whose true class is among the top-k logits."""
    logits = np.asarray(logits)
    y_true = np.asarray(y_true, dtype=np.int64).ravel()
    if logits.ndim != 2 or logits.shape[0] != y_true.shape[0]:
        raise ValueError("logits must be (N, C) matching y_true")
    if not 1 <= k <= logits.shape[1]:
        raise ValueError("k must lie in [1, n_classes]")
    topk = np.argpartition(-logits, k - 1, axis=1)[:, :k]
    return float(np.mean((topk == y_true[:, None]).any(axis=1)))


def epochs_to_threshold(
    accuracies: Sequence[float], threshold: float
) -> Optional[int]:
    """First 1-based epoch whose accuracy reaches ``threshold``
    (``None`` if never) — the Fig. 5 statistic over a recorded curve."""
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must lie in (0, 1]")
    for epoch, acc in enumerate(accuracies, start=1):
        if acc >= threshold:
            return epoch
    return None


def learning_curve(history) -> List[float]:
    """Test-accuracy series from a
    :class:`~repro.dnn.trainer.TrainingRun` history."""
    return [s.test_accuracy for s in history]
