"""im2col / col2im: convolution as one GEMM.

``im2col`` unfolds every receptive field of a batched image tensor into
a column, so convolution becomes a single matrix multiply — the
transformation Caffe (and therefore the paper's workload) uses, and the
reason batch size controls GEMM efficiency in Section IV-C.

Implemented with stride tricks (views, not copies, per the guides)
followed by one reshape-copy.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def conv_out_size(size: int, field: int, pad: int, stride: int) -> int:
    """Output spatial extent of a convolution along one axis."""
    out = (size + 2 * pad - field) // stride + 1
    if out < 1:
        raise ValueError(
            f"field {field} with pad {pad}, stride {stride} does not fit "
            f"input of size {size}"
        )
    return out


def im2col(
    x: np.ndarray, field: int, pad: int, stride: int
) -> Tuple[np.ndarray, int, int]:
    """Unfold ``(N, C, H, W)`` into ``(N * OH * OW, C * field * field)``.

    Returns the column matrix plus the output spatial dims ``(OH, OW)``.
    """
    n, c, h, w = x.shape
    oh = conv_out_size(h, field, pad, stride)
    ow = conv_out_size(w, field, pad, stride)
    if pad:
        x = np.pad(
            x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant"
        )
    sn, sc, sh, sw = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, oh, ow, field, field),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    # (N, OH, OW, C, fh, fw) -> rows are receptive fields.
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        n * oh * ow, c * field * field
    )
    return np.ascontiguousarray(cols), oh, ow


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    field: int,
    pad: int,
    stride: int,
) -> np.ndarray:
    """Fold column gradients back onto the (padded) input — the adjoint
    of :func:`im2col` (overlapping windows accumulate)."""
    n, c, h, w = x_shape
    oh = conv_out_size(h, field, pad, stride)
    ow = conv_out_size(w, field, pad, stride)
    hp, wp = h + 2 * pad, w + 2 * pad
    out = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    cols6 = cols.reshape(n, oh, ow, c, field, field).transpose(
        0, 3, 1, 2, 4, 5
    )
    for fh in range(field):
        h_lim = fh + stride * oh
        for fw in range(field):
            w_lim = fw + stride * ow
            out[:, :, fh:h_lim:stride, fw:w_lim:stride] += cols6[
                :, :, :, :, fh, fw
            ]
    if pad:
        return out[:, :, pad:-pad, pad:-pad]
    return out
