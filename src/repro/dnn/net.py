"""Sequential network container."""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.dnn.layers import Layer


class Sequential:
    """A plain stack of layers with forward / backward plumbing.

    Parameter access is flattened to ``(layer_index, name)`` keys so the
    optimiser can keep per-parameter momentum state without knowing the
    architecture.
    """

    def __init__(self, layers: Sequence[Layer]) -> None:
        if not layers:
            raise ValueError("Sequential needs at least one layer")
        self.layers: List[Layer] = list(layers)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    # -- parameter plumbing -----------------------------------------------
    def named_params(self) -> Iterator[Tuple[Tuple[int, str], np.ndarray]]:
        for i, layer in enumerate(self.layers):
            for name, arr in layer.params.items():
                yield (i, name), arr

    def named_grads(self) -> Dict[Tuple[int, str], np.ndarray]:
        out: Dict[Tuple[int, str], np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            for name, arr in layer.grads.items():
                out[(i, name)] = arr
        return out

    @property
    def n_params(self) -> int:
        return sum(layer.n_params for layer in self.layers)

    # -- inference helpers --------------------------------------------------
    def predict(self, x: np.ndarray, *, batch_size: int = 256) -> np.ndarray:
        """Class predictions, batched to bound peak memory."""
        preds = []
        for start in range(0, x.shape[0], batch_size):
            logits = self.forward(x[start : start + batch_size], training=False)
            preds.append(np.argmax(logits, axis=1))
        return np.concatenate(preds) if preds else np.empty(0, dtype=np.int64)

    def accuracy(
        self, x: np.ndarray, y: np.ndarray, *, batch_size: int = 256
    ) -> float:
        """Classification accuracy on ``(x, y)``."""
        return float(np.mean(self.predict(x, batch_size=batch_size) == y))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(type(l).__name__ for l in self.layers)
        return f"Sequential([{inner}], n_params={self.n_params})"
