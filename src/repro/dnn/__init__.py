"""From-scratch NumPy deep-learning framework.

Implements everything the paper's DNN experiments need (Section IV):
convolution / pooling / fully-connected layers with exact gradients,
softmax cross-entropy, minibatch SGD with the momentum update of
Eqs. (8)-(9), a Caffe-``cifar10_full``-style model, and a trainer that
measures *time and epochs to a target test accuracy* — the metric every
row of Table VII reports.

Layout convention: activations are ``(N, C, H, W)`` float32/float64
arrays; convolution uses im2col so the inner loop is one GEMM (the
paper: "the computational kernels of deep learning are mainly
matrix-matrix multiply").
"""

from repro.dnn.layers import (
    Conv2d,
    Dropout,
    Flatten,
    Layer,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.dnn.net import Sequential
from repro.dnn.loss import SoftmaxCrossEntropy
from repro.dnn.optim import SGD, MomentumSGD, Optimizer
from repro.dnn.models import cifar10_full, cifar10_small, linear_probe
from repro.dnn.trainer import EpochStats, Trainer, TrainingRun
from repro.dnn.parallel import (
    AllReduceStats,
    DataParallelTrainer,
    replicate_net,
)
from repro.dnn.fft_conv import Conv2dFFT
from repro.dnn.batchnorm import BatchNorm2d
from repro.dnn.schedules import ConstantLR, LRSchedule, StepDecayLR, WarmupLR

__all__ = [
    "Layer",
    "Conv2d",
    "MaxPool2d",
    "ReLU",
    "Linear",
    "Flatten",
    "Dropout",
    "Sequential",
    "SoftmaxCrossEntropy",
    "Optimizer",
    "SGD",
    "MomentumSGD",
    "cifar10_full",
    "cifar10_small",
    "linear_probe",
    "Trainer",
    "TrainingRun",
    "EpochStats",
    "DataParallelTrainer",
    "AllReduceStats",
    "replicate_net",
    "Conv2dFFT",
    "BatchNorm2d",
    "LRSchedule",
    "ConstantLR",
    "StepDecayLR",
    "WarmupLR",
]
