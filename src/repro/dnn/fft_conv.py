"""FFT-based convolution.

The paper (Section IV-C): "the computational kernels of deep learning
are mainly matrix-matrix multiply and FFT".  :class:`Conv2dFFT` is the
FFT counterpart of the im2col/GEMM :class:`~repro.dnn.layers.Conv2d`:
mathematically identical output, different cost structure —

- im2col/GEMM: O(B * OC * IC * OH * OW * f^2), great for small fields;
- FFT: O(B * (OC + IC) * H W log(HW) + B * OC * IC * H W), independent
  of the field size — the classic crossover for large kernels.

Only stride 1 is supported (FFT convolution has no native stride); the
backward pass routes through the proven im2col adjoint so gradients are
bit-compatible with :class:`Conv2d`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dnn.im2col import im2col
from repro.dnn.layers import Conv2d


class Conv2dFFT(Conv2d):
    """Drop-in replacement for stride-1 :class:`Conv2d` using FFT.

    Parameters mirror :class:`Conv2d`; ``stride`` must be 1.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        field: int,
        *,
        pad: int = 0,
        seed: int = 0,
    ) -> None:
        super().__init__(
            in_channels, out_channels, field, stride=1, pad=pad, seed=seed
        )
        self._x_saved: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(
                f"expected {self.in_channels} input channels, got {c}"
            )
        f = self.field
        p = self.pad
        hp, wp = h + 2 * p, w + 2 * p
        oh, ow = hp - f + 1, wp - f + 1
        if oh < 1 or ow < 1:
            raise ValueError("field does not fit the (padded) input")

        xp = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p))) if p else x
        # Cross-correlation via the convolution theorem: correlate by
        # multiplying with the conjugate spectrum of the kernel.
        fh, fw = hp, wp  # linear correlation needs >= hp (valid region)
        Fx = np.fft.rfft2(xp, s=(fh, fw))  # (n, c, fh, fw//2+1)
        wk = self.params["W"].reshape(
            self.out_channels, self.in_channels, f, f
        )
        Fw = np.fft.rfft2(wk, s=(fh, fw))  # (oc, c, ...)
        # out[n, o] = sum_c x_c (corr) w_oc  -> batched spectral product
        spec = np.einsum("ncxy,ocxy->noxy", Fx, np.conj(Fw))
        full = np.fft.irfft2(spec, s=(fh, fw))
        out = full[:, :, :oh, :ow] + self.params["b"][None, :, None, None]
        if training:
            # Backward reuses the exact im2col adjoint: build the cols
            # lazily only when backward actually runs.
            self._cache = (None, x.shape, oh, ow)
            self._x_saved = x
        return np.ascontiguousarray(out)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward before forward")
        cols, x_shape, oh, ow = self._cache
        if cols is None:
            cols, oh2, ow2 = im2col(
                self._x_saved, self.field, self.pad, self.stride
            )
            assert (oh2, ow2) == (oh, ow)
            self._cache = (cols, x_shape, oh, ow)
        return super().backward(grad_out)
