"""Optimisers: plain SGD and the paper's momentum update.

Equations (8)-(9):

    V_{t+1} = mu * V_t - eta * dW_t
    W_{t+1} = W_t + V_{t+1}

``mu = 0`` recovers plain SGD (as the paper notes).  Momentum buffers
are keyed by the network's flattened parameter names, created lazily
and zero-initialised.
"""

from __future__ import annotations

import abc
from typing import Dict, Tuple

import numpy as np

from repro.dnn.net import Sequential


class Optimizer(abc.ABC):
    """Base optimiser: one ``step`` applies current grads to params."""

    @abc.abstractmethod
    def step(self, net: Sequential) -> None:
        ...


class SGD(Optimizer):
    """Plain minibatch SGD: ``W -= eta * dW``."""

    def __init__(self, lr: float) -> None:
        if lr <= 0.0:
            raise ValueError("lr must be positive")
        self.lr = lr

    def step(self, net: Sequential) -> None:
        grads = net.named_grads()
        for key, param in net.named_params():
            g = grads.get(key)
            if g is not None:
                param -= self.lr * g  # in place: params are views


class MomentumSGD(Optimizer):
    """SGD with classical or Nesterov momentum (paper Eqs. (8)-(9)).

    Parameters
    ----------
    lr:
        Learning rate eta (the paper tunes {0.001 ... 0.016}).
    momentum:
        mu, "set close to 1" per the paper (tuning space
        {0.90 ... 0.99}).
    nesterov:
        Apply the look-ahead form ``W += mu V_new - eta dW`` (Sutskever
        et al. — the paper's momentum citation — show it often
        converges faster; classical form is the paper's default).
    """

    def __init__(
        self, lr: float, momentum: float = 0.9, *, nesterov: bool = False
    ) -> None:
        if lr <= 0.0:
            raise ValueError("lr must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self.nesterov = nesterov
        self._velocity: Dict[Tuple[int, str], np.ndarray] = {}

    def step(self, net: Sequential) -> None:
        grads = net.named_grads()
        for key, param in net.named_params():
            g = grads.get(key)
            if g is None:
                continue
            v = self._velocity.get(key)
            if v is None:
                v = np.zeros_like(param)
                self._velocity[key] = v
            # Eq. (8): V <- mu V - eta dW   (in place)
            v *= self.momentum
            v -= self.lr * g
            if self.nesterov:
                # look-ahead: W <- W + mu V - eta dW
                param += self.momentum * v - self.lr * g
            else:
                # Eq. (9): W <- W + V
                param += v

    def reset(self) -> None:
        """Drop momentum state (fresh optimisation path)."""
        self._velocity.clear()
