"""Batch normalisation (2-D, per-channel).

Not part of Caffe's 2014-era ``cifar10_full``, but the standard
companion of large-batch training (it is what makes the batch-scaled
learning rates of Section IV-D stable in modern practice), so the
framework provides it for the extension experiments.

Normalises each channel over (batch, height, width), with learnable
scale/shift and running statistics for inference.  The backward pass
is the exact analytic gradient (finite-difference-verified in tests).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dnn.layers import Layer


class BatchNorm2d(Layer):
    """Per-channel batch normalisation for ``(N, C, H, W)`` tensors.

    Parameters
    ----------
    channels:
        C.
    momentum:
        Running-statistics update rate (``running = (1-m) running +
        m batch``).
    eps:
        Variance floor.
    """

    def __init__(
        self, channels: int, *, momentum: float = 0.1, eps: float = 1e-5
    ) -> None:
        super().__init__()
        if channels < 1:
            raise ValueError("channels must be >= 1")
        if not 0.0 < momentum <= 1.0:
            raise ValueError("momentum must lie in (0, 1]")
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.params["gamma"] = np.ones(channels)
        self.params["beta"] = np.zeros(channels)
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.channels:
            raise ValueError(
                f"expected (N, {self.channels}, H, W); got {x.shape}"
            )
        axes = (0, 2, 3)
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            )
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        xhat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        out = (
            self.params["gamma"][None, :, None, None] * xhat
            + self.params["beta"][None, :, None, None]
        )
        if training:
            self._cache = (xhat, inv_std, x.shape)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward before forward")
        xhat, inv_std, x_shape = self._cache
        n, c, h, w = x_shape
        m = n * h * w  # elements per channel
        axes = (0, 2, 3)
        self.grads["gamma"] = (grad_out * xhat).sum(axis=axes)
        self.grads["beta"] = grad_out.sum(axis=axes)
        g = grad_out * self.params["gamma"][None, :, None, None]
        # d xhat -> dx (the classic three-term formula)
        sum_g = g.sum(axis=axes)[None, :, None, None]
        sum_gx = (g * xhat).sum(axis=axes)[None, :, None, None]
        dx = (
            inv_std[None, :, None, None]
            * (g - sum_g / m - xhat * sum_gx / m)
        )
        return dx

    def replicate(self) -> "BatchNorm2d":
        clone = super().replicate()
        # Running stats are training state the lead replica owns;
        # workers share the arrays so inference sees one set.
        clone.running_mean = self.running_mean
        clone.running_var = self.running_var
        return clone
