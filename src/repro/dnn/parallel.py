"""Data-parallel DNN training — the paper's Section IV-B strategy.

Verbatim from the paper: "Our parallel strategy is divide-and-conquer
for the data and replication for the weights.  Let us assume we have P
workers.  At each iteration, we partition a batch of B samples and each
worker gets B/P samples.  Each worker gets one copy of the weights W.
[...] After a global sum reduce operation, each worker will get
``sum_i dW_i``.  Then each worker can update their local weights by
``W = W - eta * sum_i dW_i / P``."

This module implements exactly that, on threads instead of GPUs:

- workers are replicas sharing the parameter arrays (replication for
  the weights — here literal aliasing, the shared-memory analogue);
- each step shards the batch, runs forward/backward per worker
  (concurrently when ``n_workers`` threads are granted — NumPy's GEMMs
  release the GIL), sums the gradients (the allreduce), divides by P
  and applies one optimiser step;
- an :class:`AllReduceStats` record counts the bytes a ring allreduce
  would move per step (``2 (P-1)/P x param_bytes``), which is the
  overhead term that made the naive DGX port only 1.3x over one P100
  (see ``repro.hardware.specs``).

Gradient math is *identical* to serial large-batch SGD (shard-mean
average equals full-batch mean for equal shards) — property-tested in
``tests/dnn/test_parallel.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dnn.loss import SoftmaxCrossEntropy
from repro.dnn.net import Sequential
from repro.dnn.optim import MomentumSGD, Optimizer
from repro.parallel.pool import WorkerPool


@dataclass
class AllReduceStats:
    """Communication accounting for the gradient allreduce."""

    steps: int = 0
    bytes_per_step: int = 0
    total_bytes: int = 0

    def record(self, param_bytes: int, n_workers: int) -> None:
        if n_workers > 1:
            # Ring allreduce moves 2 (P-1)/P of the buffer per member.
            moved = int(2 * (n_workers - 1) / n_workers * param_bytes)
        else:
            moved = 0
        self.steps += 1
        self.bytes_per_step = moved
        self.total_bytes += moved


def replicate_net(net: Sequential, n: int) -> List[Sequential]:
    """``n`` worker replicas sharing ``net``'s parameter arrays."""
    if n < 1:
        raise ValueError("need at least one replica")
    replicas = [net]
    for _ in range(n - 1):
        replicas.append(
            Sequential([layer.replicate() for layer in net.layers])
        )
    return replicas


class DataParallelTrainer:
    """Minibatch trainer with P-worker data parallelism.

    Parameters
    ----------
    net:
        The model (parameters shared across all workers; trained in
        place).
    n_replicas:
        P — worker count (the DGX station has 4).
    batch_size / lr / momentum:
        Global batch size B (each worker gets ~B/P) and the momentum
        update of Eqs. (8)-(9) applied to the summed gradient.
    optimizer:
        Override the default :class:`MomentumSGD`.
    concurrent:
        Run workers on threads (True) or serially (False, fully
        deterministic).  Results are identical up to float summation
        order.
    """

    def __init__(
        self,
        net: Sequential,
        *,
        n_replicas: int = 4,
        batch_size: int = 100,
        lr: float = 0.001,
        momentum: float = 0.9,
        optimizer: Optional[Optimizer] = None,
        concurrent: bool = False,
    ) -> None:
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        if batch_size < n_replicas:
            raise ValueError("batch_size must be >= n_replicas")
        self.net = net
        self.replicas = replicate_net(net, n_replicas)
        self.n_replicas = n_replicas
        self.batch_size = batch_size
        self.optimizer = optimizer or MomentumSGD(lr, momentum)
        self.loss_fn = SoftmaxCrossEntropy()
        self.comm = AllReduceStats()
        self._pool = WorkerPool(n_replicas if concurrent else 1)
        self._param_bytes = int(
            sum(p.nbytes for _, p in net.named_params())
        )

    # -- one iteration ------------------------------------------------
    def step(self, xb: np.ndarray, yb: np.ndarray) -> float:
        """One data-parallel iteration; returns the mean loss."""
        n = xb.shape[0]
        if n < self.n_replicas:
            raise ValueError("batch smaller than the worker count")
        shards = np.array_split(np.arange(n), self.n_replicas)

        def worker(args: Tuple[Sequential, np.ndarray]) -> Tuple[float, Dict]:
            replica, idx = args
            logits = replica.forward(xb[idx].astype(np.float64), training=True)
            loss, grad = self.loss_fn(logits, yb[idx])
            replica.backward(grad)
            # weight: shard mean -> global mean needs shard-size weights
            return loss * len(idx), {
                k: (g, len(idx)) for k, g in replica.named_grads().items()
            }

        results = self._pool.map(
            worker, list(zip(self.replicas, shards))
        )

        # The allreduce: sum worker gradients (weighted so unequal
        # shards still give the exact full-batch mean), write into the
        # lead replica's grads, then one optimiser step on the shared
        # parameters.
        total_loss = 0.0
        summed: Dict = {}
        for loss_sum, grads in results:
            total_loss += loss_sum
            for key, (g, cnt) in grads.items():
                if key in summed:
                    summed[key] += g * cnt
                else:
                    summed[key] = g * cnt
        for key in summed:
            summed[key] /= n
        lead = self.net
        for i, layer in enumerate(lead.layers):
            for name in layer.params:
                key = (i, name)
                if key in summed:
                    layer.grads[name] = summed[key]
        self.optimizer.step(lead)
        self.comm.record(self._param_bytes, self.n_replicas)
        return total_loss / n

    # -- epoch-level API matching Trainer -------------------------------
    def train_epoch(self, data, epoch: int) -> float:
        losses = []
        for xb, yb in data.batches(self.batch_size, seed=epoch):
            if xb.shape[0] < self.n_replicas:
                continue  # drop a tiny trailing batch
            losses.append(self.step(xb, yb))
        return float(np.mean(losses)) if losses else 0.0

    def modelled_comm_seconds(self, bandwidth_gbs: float) -> float:
        """Seconds the recorded allreduce traffic would take at the
        given interconnect bandwidth (the NCCL term in the DGX's
        iteration overhead)."""
        if bandwidth_gbs <= 0:
            raise ValueError("bandwidth must be positive")
        return self.comm.total_bytes / (bandwidth_gbs * 1e9)
