"""Softmax cross-entropy loss with the fused, stable backward."""

from __future__ import annotations

from typing import Tuple

import numpy as np


class SoftmaxCrossEntropy:
    """Mean cross-entropy over a batch of integer-labelled logits.

    The gradient uses the fused identity ``dL/dlogits =
    (softmax - onehot) / N`` — numerically stable (max-subtracted
    logsumexp) and allocation-light.
    """

    def loss_and_grad(
        self, logits: np.ndarray, labels: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        if logits.ndim != 2:
            raise ValueError("logits must be (N, K)")
        n, k = logits.shape
        labels = np.asarray(labels)
        if labels.shape != (n,):
            raise ValueError("labels must have one entry per row")
        if labels.min(initial=0) < 0 or labels.max(initial=0) >= k:
            raise ValueError("label out of range")
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        nll = -shifted[np.arange(n), labels] + np.log(exp.sum(axis=1))
        loss = float(nll.mean())
        grad = probs
        grad[np.arange(n), labels] -= 1.0
        grad /= n
        return loss, grad

    def __call__(
        self, logits: np.ndarray, labels: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        return self.loss_and_grad(logits, labels)
