"""Learning-rate schedules.

The paper tunes a single constant learning rate per batch size
(Section IV-D) and finds eta_opt growing with B — the observation later
formalised as the linear-scaling rule, whose standard companion is a
*gradual warmup* for large batches.  These schedules let the trainer
express all three regimes:

- :class:`ConstantLR` — the paper's setting;
- :class:`StepDecayLR` — Caffe's classic drop-every-k-epochs policy;
- :class:`WarmupLR` — linear ramp to the scaled rate, then constant
  (what makes eta_opt(B) usable from epoch 1 at large B).

A schedule is a callable ``epoch -> lr`` (1-based epochs); the trainer
applies it at the start of each epoch.
"""

from __future__ import annotations

import abc


class LRSchedule(abc.ABC):
    """Base: maps a 1-based epoch index to a learning rate."""

    @abc.abstractmethod
    def __call__(self, epoch: int) -> float:
        ...

    def _check(self, epoch: int) -> None:
        if epoch < 1:
            raise ValueError("epochs are 1-based")


class ConstantLR(LRSchedule):
    """The same rate forever (the paper's tuned setting)."""

    def __init__(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr

    def __call__(self, epoch: int) -> float:
        self._check(epoch)
        return self.lr


class StepDecayLR(LRSchedule):
    """Multiply by ``factor`` every ``drop_every`` epochs."""

    def __init__(
        self, lr: float, *, drop_every: int = 10, factor: float = 0.1
    ) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        if drop_every < 1:
            raise ValueError("drop_every must be >= 1")
        if not 0 < factor <= 1:
            raise ValueError("factor must lie in (0, 1]")
        self.lr = lr
        self.drop_every = drop_every
        self.factor = factor

    def __call__(self, epoch: int) -> float:
        self._check(epoch)
        drops = (epoch - 1) // self.drop_every
        return self.lr * self.factor**drops


class WarmupLR(LRSchedule):
    """Linear warmup from ``base_lr`` to ``target_lr``, then constant.

    ``target_lr`` would typically be the batch-scaled optimum
    ``ConvergenceModel.lr_opt(B)``; the warmup avoids the early
    divergence that makes naive large-batch + large-eta training fail.
    """

    def __init__(
        self,
        target_lr: float,
        *,
        base_lr: float = None,
        warmup_epochs: int = 5,
    ) -> None:
        if target_lr <= 0:
            raise ValueError("target_lr must be positive")
        if warmup_epochs < 1:
            raise ValueError("warmup_epochs must be >= 1")
        self.target_lr = target_lr
        self.base_lr = base_lr if base_lr is not None else target_lr / 10
        if self.base_lr <= 0 or self.base_lr > target_lr:
            raise ValueError("base_lr must lie in (0, target_lr]")
        self.warmup_epochs = warmup_epochs

    def __call__(self, epoch: int) -> float:
        self._check(epoch)
        if epoch >= self.warmup_epochs:
            return self.target_lr
        t = (epoch - 1) / max(self.warmup_epochs - 1, 1)
        return self.base_lr + t * (self.target_lr - self.base_lr)
