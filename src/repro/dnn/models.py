"""Model zoo.

- :func:`cifar10_full` — the shape of Caffe's ``cifar10_full`` network
  (the paper's baseline model): three 5x5 conv blocks with pooling,
  then a linear classifier.
- :func:`cifar10_small` — a narrower twin used by the fast tests and
  examples; same topology, fewer channels.
- :func:`linear_probe` — a linear classifier baseline; its plateau well
  below the CNN shows the synthetic CIFAR task is non-trivial.
"""

from __future__ import annotations

from repro.dnn.layers import Conv2d, Flatten, Linear, MaxPool2d, ReLU
from repro.dnn.net import Sequential


def cifar10_full(
    *, n_classes: int = 10, in_channels: int = 3, seed: int = 0
) -> Sequential:
    """Caffe ``cifar10_full``-style CNN for 32x32 inputs.

    conv(32,5x5,pad2) - pool2 - relu - conv(32,5x5,pad2) - relu - pool2
    - conv(64,5x5,pad2) - relu - pool2 - linear(10).
    """
    return Sequential(
        [
            Conv2d(in_channels, 32, 5, pad=2, seed=seed),
            MaxPool2d(2),
            ReLU(),
            Conv2d(32, 32, 5, pad=2, seed=seed + 1),
            ReLU(),
            MaxPool2d(2),
            Conv2d(32, 64, 5, pad=2, seed=seed + 2),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Linear(64 * 4 * 4, n_classes, seed=seed + 3),
        ]
    )


def cifar10_small(
    *, n_classes: int = 10, in_channels: int = 3, seed: int = 0
) -> Sequential:
    """Narrow twin of :func:`cifar10_full` for fast experiments:
     8/8/16 channels instead of 32/32/64."""
    return Sequential(
        [
            Conv2d(in_channels, 8, 5, pad=2, seed=seed),
            MaxPool2d(2),
            ReLU(),
            Conv2d(8, 8, 5, pad=2, seed=seed + 1),
            ReLU(),
            MaxPool2d(2),
            Conv2d(8, 16, 5, pad=2, seed=seed + 2),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Linear(16 * 4 * 4, n_classes, seed=seed + 3),
        ]
    )


def linear_probe(
    *, n_classes: int = 10, in_channels: int = 3, size: int = 32, seed: int = 0
) -> Sequential:
    """Linear classifier over raw pixels (lower-bound baseline)."""
    return Sequential(
        [
            Flatten(),
            Linear(in_channels * size * size, n_classes, seed=seed),
        ]
    )
