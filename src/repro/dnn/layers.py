"""Neural-network layers with exact backward passes.

Every layer follows the same contract:

- ``forward(x, training)`` caches whatever the backward pass needs;
- ``backward(grad_out)`` returns ``grad_in`` and fills ``grads``;
- ``params`` / ``grads`` expose parameter arrays by name for the
  optimiser (momentum buffers key off these names).

Gradients are verified against central finite differences in
``tests/dnn/test_gradients.py`` — the standard correctness oracle for a
from-scratch framework.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional

import numpy as np

from repro.dnn.im2col import col2im, conv_out_size, im2col


class Layer(abc.ABC):
    """Base layer: stateless by default; parametric layers override
    ``params`` and accumulate into ``grads``."""

    def __init__(self) -> None:
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}

    @abc.abstractmethod
    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        ...

    @abc.abstractmethod
    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        ...

    @property
    def n_params(self) -> int:
        return int(sum(p.size for p in self.params.values()))

    def replicate(self) -> "Layer":
        """Clone for data parallelism: *shares* the parameter arrays
        (all workers read/update the same weights — the replication-
        for-weights half of the paper's Section IV-B strategy) but gets
        fresh gradient and activation-cache state, so workers can run
        forward/backward concurrently on different batch shards."""
        import copy

        clone = copy.copy(self)  # params dict (and its arrays) shared
        clone.grads = {}
        for name in list(vars(clone)):
            if name.startswith("_"):
                setattr(clone, name, None)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(params={self.n_params})"


class Conv2d(Layer):
    """2-D convolution via im2col + GEMM.

    Parameters
    ----------
    in_channels, out_channels, field:
        Filter bank shape (square ``field x field`` kernels).
    stride, pad:
        Spatial stride and symmetric zero padding.
    seed:
        Weight-init determinism (He-style scaling).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        field: int,
        *,
        stride: int = 1,
        pad: int = 0,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if min(in_channels, out_channels, field, stride) < 1 or pad < 0:
            raise ValueError("invalid Conv2d geometry")
        rng = np.random.default_rng(seed)
        fan_in = in_channels * field * field
        self.params["W"] = rng.standard_normal(
            (out_channels, fan_in)
        ) * np.sqrt(2.0 / fan_in)
        self.params["b"] = np.zeros(out_channels)
        self.field = field
        self.stride = stride
        self.pad = pad
        self.in_channels = in_channels
        self.out_channels = out_channels
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(
                f"expected {self.in_channels} input channels, got {c}"
            )
        cols, oh, ow = im2col(x, self.field, self.pad, self.stride)
        out = cols @ self.params["W"].T + self.params["b"]
        out = out.reshape(n, oh, ow, self.out_channels).transpose(0, 3, 1, 2)
        if training:
            self._cache = (cols, x.shape, oh, ow)
        return np.ascontiguousarray(out)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward before forward")
        cols, x_shape, oh, ow = self._cache
        n = x_shape[0]
        g = grad_out.transpose(0, 2, 3, 1).reshape(
            n * oh * ow, self.out_channels
        )
        self.grads["W"] = g.T @ cols
        self.grads["b"] = g.sum(axis=0)
        grad_cols = g @ self.params["W"]
        return col2im(grad_cols, x_shape, self.field, self.pad, self.stride)


class MaxPool2d(Layer):
    """Non-overlapping max pooling (``field == stride``)."""

    def __init__(self, field: int) -> None:
        super().__init__()
        if field < 1:
            raise ValueError("field must be >= 1")
        self.field = field
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        n, c, h, w = x.shape
        f = self.field
        if h % f or w % f:
            raise ValueError(
                f"spatial dims ({h},{w}) not divisible by pool field {f}"
            )
        xr = x.reshape(n, c, h // f, f, w // f, f)
        out = xr.max(axis=(3, 5))
        if training:
            # Break ties deterministically: keep only the first max in
            # each window (cumulative trick), so gradients stay exact.
            mask_r = np.moveaxis(xr, 3, 4).reshape(n, c, h // f, w // f, f * f)
            is_max = mask_r == out[..., None]
            first = np.cumsum(is_max, axis=-1) == 1
            keep = is_max & first
            self._cache = (keep, x.shape)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward before forward")
        keep, x_shape = self._cache
        n, c, h, w = x_shape
        f = self.field
        g = keep * grad_out[..., None]
        g = g.reshape(n, c, h // f, w // f, f, f)
        g = np.moveaxis(g, 4, 3)  # back to (n, c, hf, f, wf, f)
        return g.reshape(n, c, h, w)


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._mask = x > 0
        return np.maximum(x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward before forward")
        return grad_out * self._mask


class Flatten(Layer):
    """``(N, ...) -> (N, prod(...))``."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: Optional[tuple] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward before forward")
        return grad_out.reshape(self._shape)


class Linear(Layer):
    """Fully-connected layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, *, seed: int = 0) -> None:
        super().__init__()
        if min(in_features, out_features) < 1:
            raise ValueError("invalid Linear geometry")
        rng = np.random.default_rng(seed)
        self.params["W"] = rng.standard_normal(
            (out_features, in_features)
        ) * np.sqrt(2.0 / in_features)
        self.params["b"] = np.zeros(out_features)
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._x = x
        return x @ self.params["W"].T + self.params["b"]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward before forward")
        self.grads["W"] = grad_out.T @ self._x
        self.grads["b"] = grad_out.sum(axis=0)
        return grad_out @ self.params["W"]


class Dropout(Layer):
    """Inverted dropout: active only in training mode."""

    def __init__(self, rate: float = 0.5, *, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("rate must lie in [0, 1)")
        self.rate = rate
        self._rng = np.random.default_rng(seed)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask

    def replicate(self) -> "Dropout":
        clone = super().replicate()
        # Each worker needs its own random stream (fresh, decorrelated).
        clone._rng = np.random.default_rng(self._rng.integers(2**63))
        return clone
