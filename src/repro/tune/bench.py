"""The tuning gate (``repro bench tune``, writes ``BENCH_tune.json``).

Runs the measured-time search over the five-dataset report suite into
a pinned cache file, then gates on three deterministic properties:

1. **Tuned never slower** — for every (dataset, family) the persisted
   winner's measured time is ``<=`` the analytic default's *on the same
   probe* (incumbent protection makes this an invariant of the search,
   not a hope about the machine; see :mod:`repro.tune.search`).
2. **Warm decisions are deterministic and tuned** — two consecutive
   cold-constructed schedulers make bitwise-identical format decisions
   for every suite dataset, every one served from the tuning cache
   (``decision.source == "tuned"``), bypassing analytic pricing.
3. **Cold keys fall back unchanged** — a profile bucket the search
   never visited decides analytically (``source == "analytic"``) and
   picks exactly what a tuning-disabled scheduler picks.

The warm-lookup cost is also measured (nanoseconds per scheduling
decision served from the cache) and reported as information — it is a
few dict probes, far below one analytic ranking, but wall-clock is not
gated on.

The cache file is pinned: ``REPRO_TUNE_CACHE`` if the caller exported
one (CI does), else a fresh temporary directory — the bench never
touches ``~/.cache/repro/tune.json``.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.autotune import AutoTuner
from repro.core.cost_model import ANALYTIC_FORMATS
from repro.core.scheduler import LayoutScheduler
from repro.data.synthetic import uniform_rows_matrix
from repro.obs.report import REPORT_DATASETS
from repro.tune.cache import (
    ENV_CACHE_PATH,
    ENV_DISABLE,
    TuneCache,
    reset_tune_cache,
)
from repro.tune.search import ProbeContext, TuneSearch
from repro.tune.space import FORMAT_FAMILY, KNOB_FAMILIES, SPACES

#: Knob families the smoke run covers (data-dependent, cheap probes);
#: the full run adds the machine-wide families and the SMO row cache.
SMOKE_FAMILIES: Tuple[str, ...] = ("sell_chunk", "sigma", "batch_k")


def _tune_datasets(
    *,
    quick: bool,
    seed: int,
    families: Sequence[str],
    search_kwargs: Dict[str, Any],
    cache: TuneCache,
) -> Dict[str, Any]:
    """Search every suite dataset and persist the winners.

    Machine-wide families (``workers``, ``row_blocks``) are tuned on
    the first dataset only — their optimum is a property of the box,
    and re-racing them per dataset would just overwrite one
    ``MACHINE_BUCKET`` entry with another.
    """
    m, n = (256, 128) if quick else (1024, 512)
    data_families = [f for f in families if not SPACES[f].machine_wide]
    machine_families = [f for f in families if SPACES[f].machine_wide]
    tuner = AutoTuner(repeats=search_kwargs.get("base_repeats", 3), seed=seed)
    out: Dict[str, Any] = {}
    for index, (name, build) in enumerate(REPORT_DATASETS):
        rows, cols, values, shape = build(m, n, seed)
        ctx = ProbeContext(rows, cols, values, shape, seed=seed)
        # A fresh searcher per dataset: the measurement memo is keyed
        # by (family, params, fidelity) and must not leak across
        # datasets.
        search = TuneSearch(seed=seed, **search_kwargs)
        run = list(data_families) + (machine_families if index == 0 else [])
        results = search.tune(ctx, run)
        for family, r in results.items():
            cache.put(
                family,
                r.best,
                profile=ctx.profile,
                stats={
                    "median_seconds": r.best_seconds,
                    "default_seconds": r.default_seconds,
                    "fidelity": r.fidelity,
                },
            )
        # The measured-best storage format for this bucket at the
        # serving warm-up width: the entry the scheduler's warm path
        # reads in place of analytic pricing.
        probed = tuner.probe(rows, cols, values, shape, ANALYTIC_FORMATS)
        cache.put(
            FORMAT_FAMILY,
            {"fmt": probed[0].fmt, "batch_k": 1},
            profile=ctx.profile,
            stats={"median_seconds": probed[0].median_seconds},
        )
        out[name] = {
            "bucket": cache.bucket_for(FORMAT_FAMILY, ctx.profile),
            "format": {
                "fmt": probed[0].fmt,
                "median_seconds": probed[0].median_seconds,
            },
            "families": {f: r.as_dict() for f, r in results.items()},
            "search": {
                "spent": search.spent,
                "budget": search.budget,
                "trials": len(search.trials),
            },
        }
    return out


def _decide_all(
    *, quick: bool, seed: int
) -> List[Tuple[str, str, str]]:
    """One cold-constructed scheduler pass over the suite datasets.

    Returns ``(dataset, fmt, source)`` per dataset.  The scheduler is
    fresh (empty :class:`DecisionCache`), so every warm answer must
    come from the *persisted* tuning cache, not an in-memory memo.
    """
    m, n = (256, 128) if quick else (1024, 512)
    sched = LayoutScheduler("cost", candidates=ANALYTIC_FORMATS)
    out: List[Tuple[str, str, str]] = []
    for name, build in REPORT_DATASETS:
        rows, cols, values, shape = build(m, n, seed)
        d = sched.decide_from_coo(rows, cols, values, shape)
        out.append((name, d.fmt, d.source))
    return out


def run_tune_bench(
    *,
    quick: bool = False,
    repeats: Optional[int] = None,
    seed: int = 0,
    families: Optional[Sequence[str]] = None,
    cache_path: Optional[Union[str, Path]] = None,
) -> Dict[str, Any]:
    """Run the search + the three-part gate; returns the payload."""
    if families is None:
        families = SMOKE_FAMILIES if quick else KNOB_FAMILIES
    for f in families:
        if f not in SPACES:
            raise ValueError(f"unknown knob family {f!r}")
    if quick:
        search_kwargs: Dict[str, Any] = {
            "base_repeats": repeats or 1,
            "max_repeats": max(2, repeats or 1),
            "budget": 64,
        }
    else:
        search_kwargs = {
            "base_repeats": repeats or 3,
            "max_repeats": max(12, repeats or 3),
            "budget": 256,
        }

    if cache_path is None:
        env = os.environ.get(ENV_CACHE_PATH)
        cache_path = (
            Path(env)
            if env
            else Path(tempfile.mkdtemp(prefix="repro-tune-bench-"))
            / "tune.json"
        )
    cache_path = Path(cache_path)

    # Pin the process-wide cache to the bench file for the duration:
    # the scheduler consults whatever REPRO_TUNE_CACHE points at, and
    # the bench must never read or pollute the operator's real cache.
    saved_env = os.environ.get(ENV_CACHE_PATH)
    os.environ[ENV_CACHE_PATH] = str(cache_path)
    reset_tune_cache()
    try:
        from repro.tune.cache import tune_cache

        cache = tune_cache()
        cache.clear(persist=False)
        datasets = _tune_datasets(
            quick=quick,
            seed=seed,
            families=families,
            search_kwargs=search_kwargs,
            cache=cache,
        )

        # Gate 1: the persisted winner is never slower than the
        # analytic default on its own final head-to-head.
        violations: List[str] = []
        for name, d in datasets.items():
            for family, r in d["families"].items():
                if r["best_seconds"] > r["default_seconds"]:
                    violations.append(f"{name}/{family}")
        tuned_not_slower = not violations

        # Gate 2: two consecutive cold schedulers, identical decisions,
        # all served from the tuning cache.
        first = _decide_all(quick=quick, seed=seed)
        second = _decide_all(quick=quick, seed=seed)
        decisions_deterministic = first == second
        warm_source_tuned = all(src == "tuned" for _, _, src in first)

        # Gate 3: a bucket the search never visited (m an order of
        # magnitude smaller than any suite dataset) decides
        # analytically, and picks exactly what a tuning-disabled
        # scheduler picks.
        c_rows, c_cols, c_vals, c_shape = uniform_rows_matrix(
            64, 32, 4, seed=seed
        )
        cold = LayoutScheduler(
            "cost", candidates=ANALYTIC_FORMATS
        ).decide_from_coo(c_rows, c_cols, c_vals, c_shape)
        saved_disable = os.environ.get(ENV_DISABLE)
        os.environ[ENV_DISABLE] = "0"
        try:
            disabled = LayoutScheduler(
                "cost", candidates=ANALYTIC_FORMATS
            ).decide_from_coo(c_rows, c_cols, c_vals, c_shape)
        finally:
            if saved_disable is None:
                os.environ.pop(ENV_DISABLE, None)
            else:
                os.environ[ENV_DISABLE] = saved_disable
        cold_falls_back = (
            cold.source == "analytic" and cold.fmt == disabled.fmt
        )

        # Informational: what one warm scheduling decision costs once
        # the cache is hot (a fingerprint-keyed dict probe).
        m, n = (256, 128) if quick else (1024, 512)
        w_rows, w_cols, w_vals, w_shape = REPORT_DATASETS[0][1](m, n, seed)
        warm_sched = LayoutScheduler("cost", candidates=ANALYTIC_FORMATS)
        warm_sched.decide_from_coo(w_rows, w_cols, w_vals, w_shape)
        from repro.features.extract import profile_from_coo

        warm_profile = profile_from_coo(w_rows, w_cols, w_shape)
        lookups = 64 if quick else 256
        t0 = time.perf_counter()
        for _ in range(lookups):
            warm_sched._tuned_format(warm_profile)
        warm_lookup_ns = (time.perf_counter() - t0) / lookups * 1e9

        gate_pass = bool(
            tuned_not_slower
            and decisions_deterministic
            and warm_source_tuned
            and cold_falls_back
        )
        return {
            "suite": "tune",
            "quick": quick,
            "seed": seed,
            "shape": [m, n],
            "cache_path": str(cache_path),
            "cache_entries": len(cache),
            "families": list(families),
            "search": search_kwargs,
            "datasets": datasets,
            "gate": {
                "tuned_not_slower": tuned_not_slower,
                "violations": violations,
                "decisions_deterministic": decisions_deterministic,
                "warm_source_tuned": warm_source_tuned,
                "cold_falls_back_analytic": cold_falls_back,
                "decisions": {
                    name: {"fmt": fmt, "source": src}
                    for name, fmt, src in first
                },
                "cold_decision": {
                    "fmt": cold.fmt,
                    "source": cold.source,
                },
            },
            "warm_lookup_ns": warm_lookup_ns,
            "headline": {
                "pass": gate_pass,
                "datasets": len(datasets),
                "families": len(families),
                "warm_lookup_ns": warm_lookup_ns,
            },
        }
    finally:
        if saved_env is None:
            os.environ.pop(ENV_CACHE_PATH, None)
        else:
            os.environ[ENV_CACHE_PATH] = saved_env
        reset_tune_cache()


#: CLI-facing aliases matching the other bench suites' module shape.
def run_suite(
    *,
    quick: bool = False,
    repeats: Optional[int] = None,
    seed: int = 0,
) -> Dict[str, Any]:
    return run_tune_bench(quick=quick, repeats=repeats, seed=seed)


def render_summary(payload: Dict[str, Any]) -> str:
    g = payload["gate"]
    lines = [
        "tune (measured knob search vs analytic defaults, "
        f"{len(payload['datasets'])} suite datasets)",
        f"  cache       : {payload['cache_path']} "
        f"({payload['cache_entries']} entries)",
        f"  families    : {', '.join(payload['families'])}",
    ]
    for name, d in payload["datasets"].items():
        fams = d["families"]
        best = d["format"]["fmt"]
        parts = []
        for family, r in fams.items():
            tag = "=" if r["best"] == r["default"] else ""
            parts.append(f"{family} x{r['speedup']:.2f}{tag}")
        lines.append(
            f"  {name:10s}: format {best:5s}  "
            + "  ".join(parts)
        )
    lines += [
        f"  not slower  : {g['tuned_not_slower']}"
        + (f" (violations: {', '.join(g['violations'])})"
           if g["violations"] else ""),
        f"  determinism : {g['decisions_deterministic']} "
        f"(two cold schedulers, identical decisions)",
        f"  warm source : "
        f"{'tuned' if g['warm_source_tuned'] else 'NOT TUNED'} "
        f"(cache bypasses analytic pricing)",
        f"  cold source : {g['cold_decision']['source']} "
        f"(unvisited bucket falls back"
        f"{'' if g['cold_falls_back_analytic'] else ' WRONG'})",
        f"  warm lookup : {payload['warm_lookup_ns']:.0f} ns per "
        f"decision (informational)",
        f"  pass        : {payload['headline']['pass']}",
    ]
    return "\n".join(lines)


def write_report(
    payload: Dict[str, Any], path: Union[str, Path]
) -> None:
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))
