"""Declarative knob catalogue: what ``repro tune`` searches.

Six knob families dominate measured kernel time yet were fixed (or
priced only analytically) before this module existed:

==================  ===================================================
``sell_chunk``      SELL slice height C (``formats.sell.DEFAULT_CHUNK``)
``sigma``           row-reorder window for the sorted layouts
                    (0 = global sort, the historical default)
``batch_k``         SpMM sweep width assumed at serving warm-up
``row_blocks``      minimum rows per parallel row block (partition
                    granularity of the threaded kernels)
``workers``         thread-pool width (machine-wide, data-independent)
``row_cache_mb``    SMO kernel-row cache budget (LIBSVM ``-m``)
==================  ===================================================

Each family is a :class:`SearchSpace` of one or more :class:`Knob`\\ s
with explicit candidate values and a *profile-conditioned* default —
the value the analytic model would run with, which the search harness
always keeps in the race (so a tuned entry can never be worse than the
analytic choice on its own measurements).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.features.profile import DatasetProfile
from repro.formats.sell import DEFAULT_CHUNK

#: One concrete assignment of a family's knobs.
Config = Dict[str, int]

#: Canonical family names, in catalogue order.
KNOB_FAMILIES: Tuple[str, ...] = (
    "sell_chunk",
    "sigma",
    "batch_k",
    "row_blocks",
    "workers",
    "row_cache_mb",
)

#: The pseudo-family under which the measured-best storage format is
#: cached.  Not a knob (nothing numeric to sweep — the autotuner's
#: probe decides it), but it shares the cache key scheme so the
#: scheduler's warm path is one lookup.
FORMAT_FAMILY = "format"


@dataclass(frozen=True)
class Knob:
    """One named integer knob with its valid candidate values.

    ``default`` is the analytic/product default; ``default_for``
    optionally refines it from a dataset profile (profile-conditioned
    default).  Candidate values outside ``(lo, hi)`` validity bounds
    are rejected at construction, so a family can never race an
    illegal configuration.
    """

    name: str
    values: Tuple[int, ...]
    default: int
    lo: int = 0
    hi: int = 1 << 30
    description: str = ""
    default_for: Optional[Callable[[DatasetProfile], int]] = None

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"knob {self.name!r} needs candidate values")
        for v in self.values:
            if not (self.lo <= v <= self.hi):
                raise ValueError(
                    f"knob {self.name!r} candidate {v} outside "
                    f"[{self.lo}, {self.hi}]"
                )
        if self.default not in self.values:
            raise ValueError(
                f"knob {self.name!r} default {self.default} must be a "
                f"candidate value"
            )

    def default_value(self, profile: Optional[DatasetProfile] = None) -> int:
        """The analytic default, profile-conditioned when possible."""
        if profile is not None and self.default_for is not None:
            v = self.default_for(profile)
            if v in self.values:
                return v
        return self.default


@dataclass(frozen=True)
class SearchSpace:
    """One knob family: the unit the search harness tunes and the
    cache stores."""

    family: str
    knobs: Tuple[Knob, ...]
    description: str = ""
    #: Whether the optimum depends on the data (profile-bucketed cache
    #: key) or on the machine alone (:data:`~repro.tune.fingerprint.
    #: MACHINE_BUCKET`).
    machine_wide: bool = False

    def __post_init__(self) -> None:
        if not self.knobs:
            raise ValueError(f"family {self.family!r} needs knobs")
        names = [k.name for k in self.knobs]
        if len(set(names)) != len(names):
            raise ValueError(f"family {self.family!r} has duplicate knobs")

    def default_config(
        self, profile: Optional[DatasetProfile] = None
    ) -> Config:
        return {k.name: k.default_value(profile) for k in self.knobs}

    def neighbours(self, knob: Knob, config: Config) -> List[Config]:
        """All configs that vary ``knob`` with the others held fixed."""
        out: List[Config] = []
        for v in knob.values:
            c = dict(config)
            c[knob.name] = v
            out.append(c)
        return out

    def grid(self, profile: Optional[DatasetProfile] = None) -> List[Config]:
        """Full cartesian grid, default config first (deterministic)."""
        configs: List[Config] = [self.default_config(profile)]
        frontier: List[Config] = [dict(configs[0])]
        for knob in self.knobs:
            frontier = [
                c for base in frontier for c in self.neighbours(knob, base)
            ]
        for c in frontier:
            if c not in configs:
                configs.append(c)
        return configs

    def validate(self, config: Config) -> Config:
        """Clamp-free validation: every knob present with a legal value."""
        out: Config = {}
        for knob in self.knobs:
            if knob.name not in config:
                raise ValueError(
                    f"family {self.family!r} config missing {knob.name!r}"
                )
            v = int(config[knob.name])
            if v not in knob.values:
                raise ValueError(
                    f"family {self.family!r}: {knob.name}={v} is not a "
                    f"candidate value"
                )
            out[knob.name] = v
        return out


def _sigma_default(p: DatasetProfile) -> int:
    # Near-uniform rows gain nothing from sorting — keep the window
    # tiny so the permutation stays close to the identity; irregular
    # rows want the global sort (0 = whole-matrix window).
    return 64 if p.cv_dim < 0.25 else 0


def _cache_default(p: DatasetProfile) -> int:
    # One default that scales with the problem: cache ~4k rows' worth
    # of float64 kernel rows, capped at 64 MB.
    mb = (4096 * 8 * max(p.m, 1)) // (1 << 20)
    for v in (64, 16, 4, 1):
        if mb >= v:
            return v
    return 1


#: The catalogue (family name -> search space).
SPACES: Dict[str, SearchSpace] = {
    "sell_chunk": SearchSpace(
        family="sell_chunk",
        description="SELL slice height C: padding-vs-locality trade",
        knobs=(
            Knob(
                name="chunk",
                values=(2, 4, 8, 16, 32, 64),
                default=DEFAULT_CHUNK,
                lo=1,
                hi=1 << 20,
                description="rows per SELL slice",
            ),
        ),
    ),
    "sigma": SearchSpace(
        family="sigma",
        description="reorder window for RSELL/RCSR (0 = global sort)",
        knobs=(
            Knob(
                name="sigma",
                values=(0, 16, 64, 256, 1024, 4096),
                default=0,
                description="rows per descending-length sort window "
                "(0 sorts the whole matrix)",
                default_for=_sigma_default,
            ),
        ),
    ),
    "batch_k": SearchSpace(
        family="batch_k",
        description="SpMM sweep width assumed at serving warm-up",
        knobs=(
            Knob(
                name="batch_k",
                values=(1, 2, 4, 8, 16, 32),
                default=1,
                lo=1,
                description="right-hand sides per blocked sweep",
            ),
        ),
    ),
    "row_blocks": SearchSpace(
        family="row_blocks",
        description="parallel partition granularity",
        machine_wide=True,
        knobs=(
            Knob(
                name="min_rows_per_block",
                values=(128, 256, 512, 1024, 2048, 4096),
                default=256,
                lo=1,
                description="smallest row block worth a pool dispatch",
            ),
        ),
    ),
    "workers": SearchSpace(
        family="workers",
        description="thread-pool width for the row-block kernels",
        machine_wide=True,
        knobs=(
            Knob(
                name="workers",
                values=(1, 2, 4, 8, 16),
                default=1,
                lo=1,
                hi=1024,
                description="pool threads (env REPRO_NUM_THREADS wins)",
            ),
        ),
    ),
    "row_cache_mb": SearchSpace(
        family="row_cache_mb",
        description="SMO kernel-row LRU cache budget (LIBSVM -m)",
        knobs=(
            Knob(
                name="row_cache_mb",
                values=(0, 1, 4, 16, 64),
                default=4,
                description="megabytes of cached float64 kernel rows "
                "(0 disables)",
                default_for=_cache_default,
            ),
        ),
    ),
}


def space_for(family: str) -> SearchSpace:
    """Look up a family's search space; raises on unknown families."""
    try:
        return SPACES[family]
    except KeyError:
        raise ValueError(
            f"unknown knob family {family!r}; expected one of "
            f"{KNOB_FAMILIES}"
        ) from None
