"""``repro.tune``: measured-time knob search + the persisted cache.

The subsystem has four layers (see ``docs/tuning.md``):

=================  ====================================================
``space``          declarative knob catalogue (families, valid values,
                   profile-conditioned analytic defaults)
``fingerprint``    stable machine identity + dataset profile bucketing
                   (the cache key axes)
``search``         deterministic measured-time search: coordinate
                   descent + successive halving with incumbent
                   protection
``cache``          versioned JSON store the consumers consult
                   (``~/.cache/repro/tune.json``; ``REPRO_TUNE=0``
                   kills all consultation)
=================  ====================================================

Exports resolve lazily so that importing :mod:`repro.tune` (or the
cache helpers from a format constructor's hot path) never pays for the
search harness's dependency graph.
"""

from __future__ import annotations

from typing import Any

_EXPORTS = {
    "Knob": "repro.tune.space",
    "SearchSpace": "repro.tune.space",
    "KNOB_FAMILIES": "repro.tune.space",
    "FORMAT_FAMILY": "repro.tune.space",
    "SPACES": "repro.tune.space",
    "space_for": "repro.tune.space",
    "machine_fingerprint": "repro.tune.fingerprint",
    "fingerprint_hash": "repro.tune.fingerprint",
    "profile_bucket": "repro.tune.fingerprint",
    "MACHINE_BUCKET": "repro.tune.fingerprint",
    "TuneCache": "repro.tune.cache",
    "tune_cache": "repro.tune.cache",
    "reset_tune_cache": "repro.tune.cache",
    "tuning_enabled": "repro.tune.cache",
    "default_cache_path": "repro.tune.cache",
    "tuned_value": "repro.tune.cache",
    "tuned_format": "repro.tune.cache",
    "ProbeContext": "repro.tune.search",
    "TuneSearch": "repro.tune.search",
    "FamilyResult": "repro.tune.search",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.tune' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)
