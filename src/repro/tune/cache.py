"""The persisted tuning cache: measured knob optima, keyed per machine.

A versioned JSON store at ``~/.cache/repro/tune.json`` (override with
``REPRO_TUNE_CACHE=/path/to/tune.json``; ``REPRO_TUNE=0`` disables all
consultation).  Entries are keyed ``(machine fingerprint hash, profile
bucket, knob family)`` and carry the winning configuration plus the
measurements that justified it::

    {
      "schema": 1,
      "fingerprint": {...},          # human-readable provenance
      "entries": {
        "3f2a...|a3-mid-d2-square-m3|sell_chunk": {
          "params": {"chunk": 16},
          "median_seconds": 1.2e-05,
          "default_seconds": 1.9e-05,
          "fidelity": 4,
          "budget": 60
        }
      }
    }

Robustness contract (exercised by ``tests/tune/test_cache.py``): a
corrupted, truncated, schema-bumped or otherwise unreadable file is
*never* an error — consumers see an empty cache and fall back to the
analytic defaults.  Entries written under a different machine
fingerprint simply never match a lookup on this machine.  Writes are
atomic (temp file + ``os.replace`` in the same directory) so a reader
can never observe a torn file, and concurrent writers settle on
last-writer-wins with both writers' files intact.  All mutable state
is lock-guarded (the RDL009 discipline); the in-memory view is shared
process-wide via :func:`tune_cache`.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from repro.analysis.race import make_lock, track_shared
from repro.features.profile import DatasetProfile
from repro.tune.fingerprint import (
    MACHINE_BUCKET,
    fingerprint_hash,
    machine_fingerprint,
    profile_bucket,
)
from repro.tune.space import SPACES, space_for

#: Bump when the entry layout changes; older files fall back cleanly.
SCHEMA_VERSION = 1

#: Environment knobs.
ENV_CACHE_PATH = "REPRO_TUNE_CACHE"
ENV_DISABLE = "REPRO_TUNE"


def tuning_enabled() -> bool:
    """Consultation kill-switch: ``REPRO_TUNE=0`` forces analytic
    defaults everywhere without touching the cache file."""
    return os.environ.get(ENV_DISABLE, "1").strip() != "0"


def default_cache_path() -> Path:
    """``$REPRO_TUNE_CACHE``, else ``$XDG_CACHE_HOME/repro/tune.json``,
    else ``~/.cache/repro/tune.json``."""
    env = os.environ.get(ENV_CACHE_PATH)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "tune.json"


def entry_key(fp_hash: str, bucket: str, family: str) -> str:
    """The flat string key one entry lives under."""
    return f"{fp_hash}|{bucket}|{family}"


def _valid_entry(family: str, payload: Any) -> bool:
    """Schema check for one entry: params must satisfy the family's
    space (the pseudo-family ``format`` carries a format name)."""
    if not isinstance(payload, dict):
        return False
    params = payload.get("params")
    if not isinstance(params, dict):
        return False
    if family in SPACES:
        try:
            space_for(family).validate(params)
        except (ValueError, TypeError):
            return False
        return True
    # Pseudo-families (the scheduler's format entry): a non-empty
    # string value per param is all the schema demands.
    return all(
        isinstance(k, str) and isinstance(v, (str, int)) for k, v in params.items()
    )


class TuneCache:
    """One JSON-backed tuning store (usually the process singleton).

    Thread-safe: the scheduler, the serving tier and ``repro tune``
    may all consult or update one instance concurrently, so every
    access to the entry map goes through the internal lock, and
    persistence is an atomic whole-file replace under that lock.
    """

    def __init__(
        self,
        path: Optional[os.PathLike] = None,
        *,
        fingerprint: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.path = Path(path) if path is not None else default_cache_path()
        self.fingerprint = (
            dict(fingerprint) if fingerprint is not None else machine_fingerprint()
        )
        self.fp_hash = fingerprint_hash(self.fingerprint)
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._loaded = False
        self._lock = make_lock("tune.cache")
        track_shared(self, ("_entries", "_loaded"))

    # -- persistence ------------------------------------------------------
    def _load_locked(self) -> None:
        """Read and validate the file; any problem yields an empty map.

        Called with the lock held.  Invalid *files* warn once (a human
        probably wants to know their tunings were dropped); invalid
        individual entries are skipped silently — partial salvage, the
        valid remainder keeps working.
        """
        if self._loaded:
            return
        self._loaded = True
        self._entries = {}
        try:
            raw = self.path.read_text(encoding="utf-8")
        except OSError:
            return  # no cache yet: every key is cold
        try:
            doc = json.loads(raw)
        except ValueError:
            warnings.warn(
                f"tuning cache {self.path} is not valid JSON; falling "
                f"back to analytic defaults",
                RuntimeWarning,
                stacklevel=3,
            )
            return
        if not isinstance(doc, dict) or doc.get("schema") != SCHEMA_VERSION:
            warnings.warn(
                f"tuning cache {self.path} has schema "
                f"{doc.get('schema') if isinstance(doc, dict) else '?'} "
                f"(expected {SCHEMA_VERSION}); falling back to analytic "
                f"defaults",
                RuntimeWarning,
                stacklevel=3,
            )
            return
        entries = doc.get("entries")
        if not isinstance(entries, dict):
            return
        for key, payload in entries.items():
            if not isinstance(key, str) or key.count("|") != 2:
                continue
            family = key.rsplit("|", 1)[1]
            if _valid_entry(family, payload):
                self._entries[key] = payload

    def _save_locked(self) -> None:
        """Atomic whole-file write; called with the lock held."""
        doc = {
            "schema": SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "fingerprint_hash": self.fp_hash,
            "entries": self._entries,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            prefix=self.path.name + ".", dir=str(self.path.parent)
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass  # repro: the temp file was already renamed away
            raise

    def reload(self) -> None:
        """Drop the in-memory view and re-read the file on next access."""
        with self._lock:
            self._loaded = False
            self._entries = {}

    # -- lookups ----------------------------------------------------------
    def bucket_for(
        self, family: str, profile: Optional[DatasetProfile]
    ) -> str:
        if family in SPACES and SPACES[family].machine_wide:
            return MACHINE_BUCKET
        if profile is None:
            return MACHINE_BUCKET
        return profile_bucket(profile)

    def has_family(self, family: str) -> bool:
        """Whether *any* entry for ``family`` exists under this
        machine's fingerprint — the cheap precheck hot construction
        paths use before paying for a profile computation."""
        prefix = f"{self.fp_hash}|"
        suffix = f"|{family}"
        with self._lock:
            self._load_locked()
            return any(
                k.startswith(prefix) and k.endswith(suffix)
                for k in self._entries
            )

    def get(
        self, family: str, profile: Optional[DatasetProfile] = None
    ) -> Optional[Dict[str, Any]]:
        """The warm entry for ``(this machine, profile bucket, family)``
        or ``None`` — cold keys mean "use the analytic default"."""
        if not tuning_enabled():
            return None
        key = entry_key(self.fp_hash, self.bucket_for(family, profile), family)
        with self._lock:
            self._load_locked()
            entry = self._entries.get(key)
            return dict(entry) if entry is not None else None

    def get_params(
        self, family: str, profile: Optional[DatasetProfile] = None
    ) -> Optional[Dict[str, Any]]:
        entry = self.get(family, profile)
        return dict(entry["params"]) if entry is not None else None

    def put(
        self,
        family: str,
        params: Mapping[str, Any],
        *,
        profile: Optional[DatasetProfile] = None,
        bucket: Optional[str] = None,
        stats: Optional[Mapping[str, Any]] = None,
        persist: bool = True,
    ) -> str:
        """Store one tuned entry (and by default persist the file).

        Returns the flat key written.  ``params`` are validated against
        the family's space before anything is stored, so an impossible
        configuration can never be persisted.
        """
        payload: Dict[str, Any] = {"params": dict(params)}
        if stats:
            payload.update({k: stats[k] for k in sorted(stats)})
        if not _valid_entry(family, payload):
            raise ValueError(
                f"invalid tuned entry for family {family!r}: {params!r}"
            )
        if bucket is None:
            bucket = self.bucket_for(family, profile)
        key = entry_key(self.fp_hash, bucket, family)
        with self._lock:
            self._load_locked()
            self._entries[key] = payload
            if persist:
                self._save_locked()
        return key

    def save(self) -> None:
        with self._lock:
            self._load_locked()
            self._save_locked()

    def entries(self) -> Dict[str, Dict[str, Any]]:
        """A snapshot of every valid entry (all fingerprints)."""
        with self._lock:
            self._load_locked()
            return {k: dict(v) for k, v in self._entries.items()}

    def clear(self, *, persist: bool = True) -> None:
        with self._lock:
            self._loaded = True
            self._entries = {}
            if persist:
                self._save_locked()

    def __len__(self) -> int:
        with self._lock:
            self._load_locked()
            return len(self._entries)


# -- the process-wide cache ----------------------------------------------

_shared: Optional[TuneCache] = None
_shared_lock = make_lock("tune.shared_cache")


def tune_cache() -> TuneCache:
    """The process-wide tuning cache for the *current* cache path.

    Re-resolves the path on every call so tests (and operators) can
    repoint ``REPRO_TUNE_CACHE`` mid-process; a path change swaps in a
    fresh instance, same-path calls share one.
    """
    global _shared
    path = default_cache_path()
    with _shared_lock:
        if _shared is None or _shared.path != path:
            _shared = TuneCache(path)
        return _shared


def reset_tune_cache() -> None:
    """Drop the process-wide instance (tests; cheap, state is on disk)."""
    global _shared
    with _shared_lock:
        _shared = None


# -- typed conveniences the consumers call -------------------------------


def tuned_value(
    family: str,
    knob: str,
    *,
    profile: Optional[DatasetProfile] = None,
    default: Optional[int] = None,
) -> Optional[int]:
    """One tuned knob value, or ``default`` on a cold key.

    The single entry point the consumers (cost model, pool, SMO, the
    serving tier) go through — it folds in the kill-switch, the
    fingerprint match and the schema validation, so call sites stay
    one line.
    """
    if not tuning_enabled():
        return default
    cache = tune_cache()
    if not cache.has_family(family):
        return default
    params = cache.get_params(family, profile)
    if params is None or knob not in params:
        return default
    return int(params[knob])


def tuned_for_lengths(
    family: str,
    knob: str,
    row_lengths,
    shape,
    *,
    default: Optional[int] = None,
) -> Optional[int]:
    """Tuned knob lookup for format constructors.

    Constructors hold per-row nnz counts, not a full profile; this
    derives the bucket from the lengths alone — and only after a cheap
    "is anything warm for this family?" check, so cold-cache builds pay
    one dict scan and no profile math.
    """
    if not tuning_enabled():
        return default
    cache = tune_cache()
    if not cache.has_family(family):
        return default
    from repro.tune.fingerprint import profile_from_lengths

    profile = profile_from_lengths(row_lengths, shape)
    params = cache.get_params(family, profile)
    if params is None or knob not in params:
        return default
    return int(params[knob])


def tuned_format(
    profile: DatasetProfile, *, batch_k: int = 1
) -> Optional[str]:
    """The measured-best storage format for this profile bucket.

    Only entries recorded at the same ``batch_k`` apply (the winner
    legitimately moves with the sweep width); anything else is a cold
    key and the caller prices analytically.
    """
    if not tuning_enabled():
        return None
    from repro.tune.space import FORMAT_FAMILY

    cache = tune_cache()
    if not cache.has_family(FORMAT_FAMILY):
        return None
    params = cache.get_params(FORMAT_FAMILY, profile)
    if params is None:
        return None
    if int(params.get("batch_k", 1)) != int(batch_k):
        return None
    fmt = params.get("fmt")
    return str(fmt).upper() if fmt else None
