"""Measured-time knob search: coordinate descent + successive halving.

The harness reuses the probe discipline of :mod:`repro.core.autotune`
(warm-up / repeats / median via :func:`repro.perf.timers.benchmark`,
row-sampled probes, probe vectors drawn from the matrix's own rows —
the SMO access pattern), and layers two classic search structures on
top:

* **greedy coordinate descent** over a family's knobs — one knob is
  swept while the others sit at the incumbent configuration; and
* **successive halving** inside each sweep — every candidate is timed
  at a cheap fidelity (few repeats), the slower half is dropped, the
  survivors are re-measured at doubled fidelity, until one remains.

Two properties make the result safe to persist:

* **Incumbent protection** — the profile-conditioned *default*
  configuration is carried into every rung and re-raced in a final
  head-to-head at the highest fidelity reached.  The winner is the
  measured argmin with a default-first tie-break, so a tuned cache
  entry can never be slower than the analytic default *on its own
  measurements* — the invariant ``repro bench tune`` gates on.
* **Determinism** — sampling and probe-row choice are seeded, candidate
  order is fixed by the catalogue, and ties break toward the default;
  re-running with the same seed walks the same configurations.

The search is *resumable*: every (family, params, fidelity) measurement
lands in :attr:`TuneSearch.measurements`, which can be exported and fed
back to a later instance — repeated ``repro tune`` runs skip already-
measured rungs and spend their budget extending fidelity instead.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.autotune import AutoTuner
from repro.features.extract import profile_from_coo
from repro.features.profile import DatasetProfile
from repro.formats.csr import CSRMatrix
from repro.formats.reorder import RSELLMatrix
from repro.formats.sell import SELLMatrix
from repro.obs.trace import get_tracer
from repro.parallel.kernels import parallel_matvec
from repro.parallel.pool import WorkerPool
from repro.perf.timers import benchmark
from repro.svm.smo import _RowCache
from repro.tune.space import Config, SearchSpace, space_for

#: A measurer times one configuration at a given repeat count and
#: returns the median seconds per probe operation.
Measurer = Callable[[Config, int], float]


def params_key(params: Config) -> str:
    """Canonical string identity of a configuration (resume key)."""
    return json.dumps({k: int(v) for k, v in sorted(params.items())})


@dataclass(frozen=True)
class Trial:
    """One (configuration, fidelity) measurement."""

    family: str
    params: Tuple[Tuple[str, int], ...]
    repeats: int
    seconds: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "family": self.family,
            "params": dict(self.params),
            "repeats": self.repeats,
            "seconds": self.seconds,
        }


@dataclass(frozen=True)
class FamilyResult:
    """Outcome of tuning one knob family on one dataset."""

    family: str
    best: Config
    default: Config
    best_seconds: float
    default_seconds: float
    fidelity: int  #: repeats of the final head-to-head
    trials: Tuple[Trial, ...] = field(default=())

    @property
    def improved(self) -> bool:
        return self.best != self.default

    @property
    def speedup(self) -> float:
        if self.best_seconds <= 0:
            return 1.0
        return self.default_seconds / self.best_seconds

    def as_dict(self) -> Dict[str, object]:
        return {
            "family": self.family,
            "best": dict(self.best),
            "default": dict(self.default),
            "best_seconds": self.best_seconds,
            "default_seconds": self.default_seconds,
            "fidelity": self.fidelity,
            "speedup": self.speedup,
            "trials": len(self.trials),
        }


class ProbeContext:
    """The measurement substrate for one dataset.

    Row-samples the COO input exactly like the autotuner (seeded,
    without replacement), builds the CSR baseline once, and fixes the
    probe row ids every measurer shares — so two configurations always
    race on identical work.
    """

    def __init__(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        shape: Tuple[int, int],
        *,
        probe_rows: Optional[int] = 2048,
        smsv_per_probe: int = 8,
        seed: int = 0,
    ) -> None:
        tuner = AutoTuner(probe_rows=probe_rows, seed=seed)
        srows, scols, svalues, sshape = tuner._sample(
            np.asarray(rows), np.asarray(cols), np.asarray(values), shape
        )
        if sshape[0] == 0:
            raise ValueError("cannot tune on an empty matrix")
        self.rows, self.cols, self.values = srows, scols, svalues
        self.shape = sshape
        self.seed = seed
        self.profile: DatasetProfile = profile_from_coo(
            srows, scols, sshape
        )
        self.csr = CSRMatrix.from_coo(srows, scols, svalues, sshape)
        m = sshape[0]
        rng = np.random.default_rng(seed + 1)
        n_probe = min(m, smsv_per_probe)
        self.probe_ids: List[int] = [
            int(i) for i in rng.permutation(m)[:n_probe]
        ]
        self.probe_vectors = [self.csr.row(i) for i in self.probe_ids]
        self.dense_x = np.ones(sshape[1], dtype=np.float64)

    # -- per-family measurers ------------------------------------------
    def measurer_for(self, family: str) -> Measurer:
        try:
            return getattr(self, f"_measure_{family}")
        except AttributeError:
            raise ValueError(
                f"no measurer for knob family {family!r}"
            ) from None

    def _smsv_sweep(self, matrix, repeats: int) -> float:
        vectors = self.probe_vectors

        def run() -> None:
            for v in vectors:
                matrix.smsv(v)

        r = benchmark(run, repeats=repeats, warmup=1)
        return r.median / max(1, len(vectors))

    def _measure_sell_chunk(self, config: Config, repeats: int) -> float:
        matrix = SELLMatrix.from_coo(
            self.rows, self.cols, self.values, self.shape,
            chunk=int(config["chunk"]),
        )
        return self._smsv_sweep(matrix, repeats)

    def _measure_sigma(self, config: Config, repeats: int) -> float:
        sigma = int(config["sigma"])
        matrix = RSELLMatrix.from_coo(
            self.rows, self.cols, self.values, self.shape,
            sigma=None if sigma == 0 else sigma,
        )
        return self._smsv_sweep(matrix, repeats)

    def _measure_batch_k(self, config: Config, repeats: int) -> float:
        k = int(config["batch_k"])
        vectors = [
            self.probe_vectors[i % len(self.probe_vectors)]
            for i in range(k)
        ]
        matrix = self.csr

        def run() -> None:
            matrix.smsv_multi(vectors)

        r = benchmark(run, repeats=repeats, warmup=1)
        return r.median / k

    def _measure_row_blocks(self, config: Config, repeats: int) -> float:
        matrix, x = self.csr, self.dense_x
        min_rows = int(config["min_rows_per_block"])

        def run() -> None:
            parallel_matvec(matrix, x, min_rows_per_block=min_rows)

        return benchmark(run, repeats=repeats, warmup=1).median

    def _measure_workers(self, config: Config, repeats: int) -> float:
        matrix, x = self.csr, self.dense_x
        with WorkerPool(int(config["workers"])) as pool:

            def run() -> None:
                parallel_matvec(
                    matrix, x, pool=pool, min_rows_per_block=128
                )

            return benchmark(run, repeats=repeats, warmup=1).median

    def _measure_row_cache_mb(self, config: Config, repeats: int) -> float:
        # Replay a skewed row-access sequence (a hot working set over a
        # long tail — the shape of SMO's working-set re-entries) through
        # the LRU cache at this budget; misses pay one real kernel row.
        matrix = self.csr
        m = self.shape[0]
        rng = np.random.default_rng(self.seed + 2)
        hot = max(1, m // 8)
        seq = [
            int(i % hot) if draw < 0.75 else int(i % m)
            for i, draw in enumerate(rng.random(4 * len(self.probe_ids)))
        ]
        mb = int(config["row_cache_mb"])
        row_bytes = 8 * m

        def run() -> None:
            cache = _RowCache.from_budget_mb(float(mb), row_bytes)
            for i in seq:
                row = cache.get(i)
                if row is None:
                    row = matrix.smsv(matrix.row(i))
                    cache.put(i, row)

        r = benchmark(run, repeats=repeats, warmup=1)
        return r.median / max(1, len(seq))


class TuneSearch:
    """Seeded, budgeted, resumable searcher over one or more families.

    ``budget`` bounds the total number of *timed repeats* spent (a
    measurement at fidelity ``r`` costs ``r``); the final head-to-head
    between incumbent and default always runs so the persisted winner
    is honestly measured even when the budget ran dry mid-sweep.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        base_repeats: int = 3,
        max_repeats: int = 12,
        budget: int = 256,
        prior: Optional[Dict[Tuple[str, str, int], float]] = None,
    ) -> None:
        if base_repeats < 1:
            raise ValueError("base_repeats must be >= 1")
        if max_repeats < base_repeats:
            raise ValueError("max_repeats must be >= base_repeats")
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.seed = seed
        self.base_repeats = base_repeats
        self.max_repeats = max_repeats
        self.budget = budget
        self.spent = 0
        #: (family, params_key, repeats) -> median seconds.  Seeding a
        #: new instance with a previous run's dict resumes the search.
        self.measurements: Dict[Tuple[str, str, int], float] = (
            dict(prior) if prior else {}
        )
        self.trials: List[Trial] = []

    # -- measurement with memoisation ----------------------------------
    def measure(
        self,
        family: str,
        measurer: Measurer,
        params: Config,
        repeats: int,
    ) -> float:
        key = (family, params_key(params), int(repeats))
        hit = self.measurements.get(key)
        if hit is not None:
            return hit
        seconds = measurer(params, int(repeats))
        self.measurements[key] = seconds
        self.spent += int(repeats)
        self.trials.append(
            Trial(
                family=family,
                params=tuple(sorted((k, int(v)) for k, v in params.items())),
                repeats=int(repeats),
                seconds=seconds,
            )
        )
        return seconds

    def _exhausted(self) -> bool:
        return self.spent >= self.budget

    # -- successive halving over one candidate list --------------------
    def _halve(
        self,
        family: str,
        measurer: Measurer,
        candidates: Sequence[Config],
        protected: Config,
    ) -> Tuple[Config, int]:
        """Race ``candidates`` down to one; returns (winner, fidelity).

        ``protected`` (the default) survives every cut, and ties break
        toward earlier list positions — the protected config is moved
        to the front, so "no slower than default" holds by argmin.
        """
        pkey = params_key(protected)
        pool: List[Config] = [dict(protected)] + [
            c for c in candidates if params_key(c) != pkey
        ]
        fidelity = self.base_repeats
        while True:
            scored = [
                (self.measure(family, measurer, c, fidelity), i)
                for i, c in enumerate(pool)
            ]
            order = sorted(range(len(pool)), key=lambda i: scored[i])
            if (
                len(pool) == 1
                or fidelity >= self.max_repeats
                or self._exhausted()
            ):
                return dict(pool[order[0]]), fidelity
            keep = max(1, math.ceil(len(pool) / 2))
            survivors = [pool[i] for i in sorted(order[:keep])]
            if not any(params_key(c) == pkey for c in survivors):
                survivors.insert(0, pool[0])
            pool = survivors
            fidelity = min(fidelity * 2, self.max_repeats)

    # -- one family ----------------------------------------------------
    def tune_family(
        self,
        family: str,
        ctx: ProbeContext,
        *,
        space: Optional[SearchSpace] = None,
    ) -> FamilyResult:
        space = space if space is not None else space_for(family)
        measurer = ctx.measurer_for(family)
        default = space.default_config(ctx.profile)
        incumbent = dict(default)
        fidelity = self.base_repeats
        trial_mark = len(self.trials)

        tracer = get_tracer()
        with tracer.span("tune.family") as sp:
            if tracer.enabled:
                sp.set("family", family)
                sp.set("m", ctx.shape[0])
            # Greedy coordinate descent: sweep each knob in catalogue
            # order with the others pinned at the incumbent.
            for knob in space.knobs:
                candidates = space.neighbours(knob, incumbent)
                incumbent, fidelity = self._halve(
                    family, measurer, candidates, default
                )
            # Final head-to-head at the highest fidelity reached: the
            # measurement pair the cache entry (and the bench gate)
            # stands on.  Runs even with the budget exhausted.
            best_s = self.measure(family, measurer, incumbent, fidelity)
            default_s = self.measure(family, measurer, default, fidelity)
            if default_s <= best_s:
                incumbent, best_s = dict(default), default_s

        return FamilyResult(
            family=family,
            best=space.validate(incumbent),
            default=space.validate(default),
            best_seconds=best_s,
            default_seconds=default_s,
            fidelity=fidelity,
            trials=tuple(self.trials[trial_mark:]),
        )

    # -- many families -------------------------------------------------
    def tune(
        self,
        ctx: ProbeContext,
        families: Sequence[str],
    ) -> Dict[str, FamilyResult]:
        return {f: self.tune_family(f, ctx) for f in families}
