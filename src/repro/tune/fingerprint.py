"""Machine fingerprinting and dataset-profile bucketing.

Tuned knob values are only valid on hardware that looks like the
machine they were measured on, and only for matrices shaped like the
one they were measured with.  This module provides the two halves of
the tuning-cache key:

* :func:`machine_fingerprint` — a stable dictionary of the hardware
  and numeric-stack facts that move kernel timings (CPU model and
  count, cache sizes where the OS exposes them, page size, NumPy
  version and BLAS build), hashed by :func:`fingerprint_hash` into a
  short stable id.  Everything is read defensively: a field the
  platform cannot answer becomes a fixed placeholder rather than an
  error, so the fingerprint is deterministic per machine.
* :func:`profile_bucket` — a coarse quantisation of a
  :class:`~repro.features.profile.DatasetProfile` (log-bucketed
  nnz/row, cv class, density decade, shape class, size decade) so that
  tuned values transfer across matrices with the same structure
  without requiring an exact profile match.

Machine-wide knobs (worker counts) that do not depend on the data use
the sentinel bucket :data:`MACHINE_BUCKET`.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
from typing import Any, Dict, Optional

import numpy as np

from repro.features.profile import DatasetProfile

#: Bucket used for knobs that depend on the machine only, not the data.
MACHINE_BUCKET = "machine"

_FINGERPRINT: Optional[Dict[str, Any]] = None


def _read_first_line(path: str) -> str:
    """First line of a sysfs-style file; empty string if unreadable."""
    try:
        with open(path, "r", encoding="ascii", errors="replace") as fh:
            return fh.readline().strip()
    except OSError:
        return ""


def _cpu_model() -> str:
    """Best-effort CPU model string (Linux cpuinfo, else platform)."""
    try:
        with open("/proc/cpuinfo", "r", encoding="ascii", errors="replace") as fh:
            for line in fh:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine() or "unknown"


def _cache_sizes() -> Dict[str, str]:
    """Per-level data-cache sizes where sysfs exposes them.

    Keys are ``L<level>`` (instruction caches are skipped); values are
    the kernel's human-readable size strings (``"32K"``).  Missing or
    unreadable indices simply do not appear.
    """
    out: Dict[str, str] = {}
    base = "/sys/devices/system/cpu/cpu0/cache"
    for idx in range(8):
        d = f"{base}/index{idx}"
        size = _read_first_line(f"{d}/size")
        if not size:
            continue
        level = _read_first_line(f"{d}/level") or str(idx)
        ctype = _read_first_line(f"{d}/type")
        if ctype == "Instruction":
            continue
        out.setdefault(f"L{level}", size)
    return out


def _page_size() -> int:
    try:
        return int(os.sysconf("SC_PAGESIZE"))
    except (ValueError, OSError, AttributeError):
        return 4096


def _blas_build() -> str:
    """A short identifier of the BLAS NumPy was built against."""
    try:
        cfg = np.show_config(mode="dicts")  # numpy >= 1.25
        blas = cfg.get("Build Dependencies", {}).get("blas", {})
        name = blas.get("name", "")
        version = blas.get("version", "")
        if name:
            return f"{name}-{version}" if version else str(name)
    except (TypeError, AttributeError, KeyError):
        pass
    return "unknown"


def machine_fingerprint(*, refresh: bool = False) -> Dict[str, Any]:
    """The facts that move kernel timings, read once and memoised.

    Deterministic per machine and per interpreter environment: two
    processes on the same box with the same NumPy produce the same
    dictionary (and therefore the same :func:`fingerprint_hash`).
    """
    global _FINGERPRINT
    if _FINGERPRINT is not None and not refresh:
        return dict(_FINGERPRINT)
    fp = {
        "cpu_model": _cpu_model(),
        "cpu_count": int(os.cpu_count() or 1),
        "machine": platform.machine(),
        "system": platform.system(),
        "page_size": _page_size(),
        "caches": _cache_sizes(),
        "numpy": np.__version__,
        "blas": _blas_build(),
        "python": f"{sys.version_info[0]}.{sys.version_info[1]}",
    }
    _FINGERPRINT = fp
    return dict(fp)


def fingerprint_hash(fp: Optional[Dict[str, Any]] = None) -> str:
    """Short stable id of a fingerprint (12 hex chars of SHA-256)."""
    if fp is None:
        fp = machine_fingerprint()
    canonical = json.dumps(fp, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


# -- profile bucketing ---------------------------------------------------


def _log_bucket(x: float, base: float = 2.0) -> int:
    """``round(log_base(x))`` clamped at 0; 0 for non-positive x."""
    if x <= 0.0:
        return 0
    import math

    return max(0, int(round(math.log(x, base))))


def _cv_class(cv: float) -> str:
    """Row-length variability class: the Fig. 4 regimes."""
    if cv < 0.25:
        return "uni"
    if cv < 1.0:
        return "mid"
    return "wide"


def _shape_class(m: int, n: int) -> str:
    if n == 0 or m == 0:
        return "empty"
    ratio = m / n
    if ratio >= 4.0:
        return "tall"
    if ratio <= 0.25:
        return "wide"
    return "square"


def profile_from_lengths(
    row_lengths, shape: "tuple[int, int]"
) -> DatasetProfile:
    """A bucket-sufficient profile from row lengths alone.

    :func:`profile_bucket` only reads ``adim`` / ``cv_dim`` / ``density``
    / ``m`` / ``n`` — all derivable from the per-row nnz counts, which
    format constructors have in hand anyway.  The diagonal statistics
    (``ndig`` / ``dnnz``), which would cost an O(nnz log nnz) sort,
    are filled with placeholders; this profile is for *cache keying
    only* and must not be fed to the cost model.
    """
    import numpy as np

    lengths = np.asarray(row_lengths, dtype=np.int64)
    m, n = int(shape[0]), int(shape[1])
    nnz = int(lengths.sum())
    if m == 0 or nnz == 0:
        return DatasetProfile(
            m=m, n=n, nnz=0, ndig=0, dnnz=0.0, mdim=0, adim=0.0,
            vdim=0.0, density=0.0,
        )
    adim = nnz / m
    return DatasetProfile(
        m=m,
        n=n,
        nnz=nnz,
        ndig=1,
        dnnz=float(nnz),
        mdim=int(lengths.max()),
        adim=adim,
        vdim=float(np.mean((lengths - adim) ** 2)),
        density=nnz / (m * n) if n else 0.0,
    )


def profile_bucket(p: DatasetProfile) -> str:
    """Quantise a profile into a transferable bucket key.

    Two matrices land in the same bucket when they agree on: nnz/row
    to within a factor of ~2 (log2 bucket of ``adim``), the row-length
    variability class (``cv_dim``), the density decade, the aspect
    class (tall / square / wide) and the row-count decade.  These are
    exactly the axes along which the measured knob optima move — a
    finer key would fragment the cache, a coarser one would transfer
    tunings across genuinely different kernels.
    """
    density_decade = _log_bucket(1.0 / p.density, base=10.0) if p.density > 0 else 9
    return (
        f"a{_log_bucket(p.adim)}"
        f"-{_cv_class(p.cv_dim)}"
        f"-d{min(density_decade, 9)}"
        f"-{_shape_class(p.m, p.n)}"
        f"-m{_log_bucket(float(p.m), base=10.0)}"
    )
