"""Effective-bandwidth estimation (Eq. (7) of the paper).

The paper explains the format performance gaps via

    execution_time  >≈  transferred_memory / memory_bandwidth

and reports measured bandwidth per format (e.g. gisette: 25.3 GB/s in
ELL vs 63.9 GB/s in CSR on Ivy Bridge).  This module computes the same
quantity from our explicit byte counters and wall time so benchmarks can
report a bandwidth column next to every speedup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.counters import OpCounter


def effective_bandwidth(bytes_moved: int, seconds: float) -> float:
    """Bytes-per-second achieved by an operation.

    Returns 0.0 for a degenerate (non-positive) elapsed time rather than
    raising, so that instrumentation never kills a benchmark run.
    """
    if seconds <= 0.0:
        return 0.0
    return bytes_moved / seconds


@dataclass
class BandwidthEstimator:
    """Accumulates (bytes, seconds) pairs and reports aggregate bandwidth.

    Used by the format benchmark harness: every SMSV invocation reports
    its counted traffic and duration, and the estimator exposes the
    stream-style effective bandwidth for the whole run.
    """

    bytes_moved: int = 0
    seconds: float = 0.0
    samples: int = 0

    def record(self, counter: OpCounter, seconds: float) -> None:
        self.bytes_moved += counter.bytes_total
        self.seconds += seconds
        self.samples += 1

    def record_raw(self, nbytes: int, seconds: float) -> None:
        self.bytes_moved += int(nbytes)
        self.seconds += seconds
        self.samples += 1

    @property
    def gb_per_s(self) -> float:
        return effective_bandwidth(self.bytes_moved, self.seconds) / 1e9

    @property
    def bytes_per_s(self) -> float:
        return effective_bandwidth(self.bytes_moved, self.seconds)
