"""Synthetic SpMM benchmark: blocked multi-vector SMSV vs repeated SMSV.

Two experiments, both on the synthetic generators the rest of the
reproduction uses:

1. **k-trajectory** — for each format, time ``k`` independent
   :meth:`~repro.formats.base.MatrixFormat.smsv` calls against one
   :meth:`~repro.formats.base.MatrixFormat.smsv_multi` sweep over the
   same ``k`` vectors, for growing ``k``.  This shows where the blocked
   kernels amortise traversal (CSR/ELL/COO) and where they cannot (the
   per-column fallback formats stay near 1x by construction).

2. **dual-row headline** — the fused SMO hot path: one iteration needs
   the kernel rows of *two* training samples.  We time the unfused
   sequence (two :meth:`~repro.svm.kernels.Kernel.row` calls, each with
   its own row extraction) against the fused one (one
   :meth:`~repro.svm.kernels.Kernel.rows` dual-row SpMM) exactly as
   ``smo_train`` issues them on a double cache miss.  The acceptance
   criterion for this PR is a >= 1.4x median speedup.

Run via ``repro bench smsv [--quick]``; results land in
``BENCH_smsv.json``.  Both paths are bit-for-bit identical in output
(property-tested in ``tests/formats/test_spmm.py``), so this file only
measures time.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.synthetic import uniform_rows_matrix
from repro.formats.base import FORMAT_NAMES, MatrixFormat
from repro.formats.convert import convert
from repro.formats.csr import CSRMatrix
from repro.perf.timers import benchmark
from repro.svm.kernels import make_kernel

#: The acceptance threshold for the fused dual-row path.
HEADLINE_CRITERION = 1.4

#: (m, n, row_nnz) triples shaped like the SMO workloads the SVM layer
#: runs: tall-ish sample matrices with tens of features per row.
FULL_SHAPES: Tuple[Tuple[int, int, int], ...] = (
    (512, 256, 24),
    (1000, 400, 32),
    (2000, 600, 40),
)
QUICK_SHAPES: Tuple[Tuple[int, int, int], ...] = ((512, 256, 24),)

TRAJECTORY_KS: Tuple[int, ...] = (1, 2, 4, 8)


def _build(m: int, n: int, row_nnz: int, seed: int = 0) -> CSRMatrix:
    rows, cols, vals, shape = uniform_rows_matrix(m, n, row_nnz, seed=seed)
    return CSRMatrix.from_coo(rows, cols, vals, shape)


def _sample_rows(X: MatrixFormat, k: int, seed: int = 0) -> List:
    """``k`` training-sample rows of ``X`` as sparse vectors."""
    rng = np.random.default_rng(seed)
    ids = rng.choice(X.shape[0], size=k, replace=False)
    return [X.row(int(i)) for i in ids]


def _bench_seconds(fn, repeats: int) -> float:
    # A generous min_time matters more than the repeat count here: the
    # individual kernel calls are tens of microseconds, so a short
    # window makes the median hostage to scheduler noise.
    return benchmark(fn, repeats=repeats, warmup=3, min_time=0.1).median


def _paired_ratio(
    slow: Callable[[], object],
    fast: Callable[[], object],
    *,
    samples: int,
    batch_seconds: float = 0.01,
) -> Tuple[float, float, float]:
    """Median of interleaved per-sample time ratios ``slow / fast``.

    Timing the two variants in separate windows lets CPU frequency
    drift bias the ratio; alternating batches inside one loop makes
    each sample a same-conditions comparison.  Returns
    ``(ratio, slow_seconds, fast_seconds)`` with per-call medians.
    """
    for fn in (slow, fast):
        fn()
        fn()
    t0 = time.perf_counter()
    slow()
    dt = time.perf_counter() - t0
    reps = max(1, int(batch_seconds / max(dt, 1e-9)))
    ratios: List[float] = []
    t_slow: List[float] = []
    t_fast: List[float] = []
    for _ in range(samples):
        t0 = time.perf_counter()
        for _ in range(reps):
            slow()
        a = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(reps):
            fast()
        b = time.perf_counter() - t0
        ratios.append(a / b)
        t_slow.append(a / reps)
        t_fast.append(b / reps)

    def med(xs: List[float]) -> float:
        xs = sorted(xs)
        mid = len(xs) // 2
        if len(xs) % 2:
            return xs[mid]
        return 0.5 * (xs[mid - 1] + xs[mid])

    return med(ratios), med(t_slow), med(t_fast)


def run_trajectory(
    shapes: Sequence[Tuple[int, int, int]],
    *,
    repeats: int,
    formats: Sequence[str] = FORMAT_NAMES,
    ks: Sequence[int] = TRAJECTORY_KS,
) -> List[Dict]:
    """Single-vs-batched medians for every format x shape x k."""
    records: List[Dict] = []
    for m, n, row_nnz in shapes:
        base = _build(m, n, row_nnz)
        vectors = _sample_rows(base, max(ks), seed=1)
        for fmt in formats:
            X = convert(base, fmt)
            for k in ks:
                vs = vectors[:k]

                def single() -> None:
                    for v in vs:
                        X.smsv(v)

                def multi() -> None:
                    X.smsv_multi(vs)

                t_single = _bench_seconds(single, repeats)
                t_multi = _bench_seconds(multi, repeats)
                records.append(
                    {
                        "fmt": fmt,
                        "m": m,
                        "n": n,
                        "row_nnz": row_nnz,
                        "k": k,
                        "single_seconds": t_single,
                        "multi_seconds": t_multi,
                        "speedup": t_single / t_multi,
                    }
                )
    return records


def run_dual_row(
    shapes: Sequence[Tuple[int, int, int]],
    *,
    repeats: int,
    kernels: Sequence[str] = ("gaussian", "linear"),
) -> List[Dict]:
    """Fused vs unfused dual-row kernel evaluation (the SMO hot path).

    Both timed closures include the ``X.row(i)`` extraction and norm
    lookups, because the real cache-miss path pays them too.
    """
    records: List[Dict] = []
    for m, n, row_nnz in shapes:
        X = _build(m, n, row_nnz)
        row_norms = X.row_norms_sq()
        rng = np.random.default_rng(2)
        i, j = (int(x) for x in rng.choice(m, size=2, replace=False))
        for name in kernels:
            params = {"gamma": 0.5} if name == "gaussian" else {}
            kernel = make_kernel(name, **params)

            def unfused() -> None:
                for idx in (i, j):
                    v = X.row(idx)
                    kernel.row(X, v, float(row_norms[idx]), row_norms)

            def fused() -> None:
                vi, vj = X.row(i), X.row(j)
                kernel.rows(
                    X,
                    (vi, vj),
                    np.array([float(row_norms[i]), float(row_norms[j])]),
                    row_norms,
                )

            speedup, t_unfused, t_fused = _paired_ratio(
                unfused, fused, samples=2 * repeats + 1
            )
            records.append(
                {
                    "kernel": name,
                    "m": m,
                    "n": n,
                    "row_nnz": row_nnz,
                    "unfused_seconds": t_unfused,
                    "fused_seconds": t_fused,
                    "speedup": speedup,
                }
            )
    return records


def run_suite(
    *,
    quick: bool = False,
    repeats: Optional[int] = None,
) -> Dict:
    """Run both experiments and assemble the ``BENCH_smsv.json`` payload.

    The headline number is the *median* dual-row speedup across the
    suite — robust to one noisy config, honest about the typical case.
    """
    shapes = QUICK_SHAPES if quick else FULL_SHAPES
    if repeats is None:
        repeats = 3 if quick else 7
    trajectory = run_trajectory(shapes, repeats=repeats)
    dual_row = run_dual_row(shapes, repeats=repeats)
    speedups = sorted(r["speedup"] for r in dual_row)
    mid = len(speedups) // 2
    if len(speedups) % 2:
        headline = speedups[mid]
    else:
        headline = 0.5 * (speedups[mid - 1] + speedups[mid])
    return {
        "meta": {
            "suite": "smsv",
            "quick": quick,
            "repeats": repeats,
            "shapes": [list(s) for s in shapes],
            "trajectory_ks": list(TRAJECTORY_KS),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "trajectory": trajectory,
        "dual_row": dual_row,
        "headline": {
            "dual_row_speedup": headline,
            "criterion": HEADLINE_CRITERION,
            "pass": headline >= HEADLINE_CRITERION,
        },
    }


def write_report(payload: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def render_summary(payload: Dict) -> str:
    """Terminal summary: headline plus the per-format best-k speedups."""
    lines = []
    head = payload["headline"]
    verdict = "PASS" if head["pass"] else "FAIL"
    lines.append(
        f"dual-row fused speedup (median): {head['dual_row_speedup']:.2f}x "
        f"(criterion {head['criterion']:.1f}x) [{verdict}]"
    )
    for r in payload["dual_row"]:
        lines.append(
            f"  {r['kernel']:<9} m={r['m']:<5} {r['speedup']:.2f}x "
            f"({r['unfused_seconds'] * 1e6:.0f} -> "
            f"{r['fused_seconds'] * 1e6:.0f} us)"
        )
    best: Dict[str, Dict] = {}
    for r in payload["trajectory"]:
        cur = best.get(r["fmt"])
        if cur is None or r["speedup"] > cur["speedup"]:
            best[r["fmt"]] = r
    lines.append("best batched-sweep speedup per format:")
    for fmt, r in sorted(best.items()):
        lines.append(
            f"  {fmt:<4} k={r['k']}: {r['speedup']:.2f}x (m={r['m']})"
        )
    return "\n".join(lines)
