"""Instrumentation: counters, timers and micro-benchmark helpers.

The guides for this domain insist on *measure before you optimise*.  This
package provides the measurement substrate that the rest of the library is
built on:

- :class:`OpCounter` — explicit flop / byte accounting used by the format
  kernels and the hardware models, so that "work" is a first-class,
  testable quantity rather than something inferred from wall time.
- :class:`Timer` / :func:`benchmark` — median-of-k wall-clock measurement
  with warm-up, the same discipline ``timeit`` applies.
- :class:`BandwidthEstimator` — effective-bandwidth computation (bytes
  moved / elapsed time), the quantity in Eq. (7) of the paper.
"""

from repro.perf.counters import OpCounter, counting, global_counter
from repro.perf.timers import BenchmarkResult, Timer, benchmark
from repro.perf.bandwidth import BandwidthEstimator, effective_bandwidth

__all__ = [
    "OpCounter",
    "counting",
    "global_counter",
    "Timer",
    "BenchmarkResult",
    "benchmark",
    "BandwidthEstimator",
    "effective_bandwidth",
]
