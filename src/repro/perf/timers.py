"""Wall-clock measurement helpers.

Implements the ``timeit`` discipline from the optimisation guide: warm up
first (JIT-less Python still has cache and allocator warm-up), repeat the
measurement, and report the *median* so a single OS hiccup cannot skew a
layout decision.  The autotuner in :mod:`repro.core.autotune` builds
directly on :func:`benchmark`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, List, Sequence


class Timer:
    """Simple accumulating stopwatch usable as a context manager.

    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: float | None = None

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError("Timer already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer not running")
        delta = time.perf_counter() - self._start
        self.elapsed += delta
        self._start = None
        return delta

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


@dataclass
class BenchmarkResult:
    """Summary statistics of a repeated timing run (seconds)."""

    samples: List[float] = field(default_factory=list)

    @property
    def median(self) -> float:
        s = sorted(self.samples)
        n = len(s)
        if n == 0:
            return math.nan
        mid = n // 2
        if n % 2:
            return s[mid]
        return 0.5 * (s[mid - 1] + s[mid])

    @property
    def best(self) -> float:
        return min(self.samples) if self.samples else math.nan

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else math.nan

    @property
    def stddev(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(
            sum((x - mu) ** 2 for x in self.samples) / (len(self.samples) - 1)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BenchmarkResult(median={self.median:.3e}s, "
            f"best={self.best:.3e}s, n={len(self.samples)})"
        )


def benchmark(
    fn: Callable[[], object],
    *,
    repeats: int = 5,
    warmup: int = 1,
    min_time: float = 0.0,
) -> BenchmarkResult:
    """Time ``fn`` with warm-up and repeats; return summary statistics.

    Parameters
    ----------
    fn:
        Zero-argument callable to measure.
    repeats:
        Number of measured invocations (after warm-up).
    warmup:
        Invocations discarded before measurement begins.
    min_time:
        If positive, keep adding repeats until the accumulated measured
        time exceeds this many seconds (bounds noise for very fast
        kernels, mirroring ``timeit``'s auto-ranging).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        fn()
    result = BenchmarkResult()
    total = 0.0
    n = 0
    while n < repeats or total < min_time:
        t0 = time.perf_counter()
        fn()
        dt = time.perf_counter() - t0
        result.samples.append(dt)
        total += dt
        n += 1
        if n >= 10_000:  # safety valve for pathological min_time
            break
    return result


def rank_by_median(
    candidates: Sequence[Callable[[], object]],
    *,
    repeats: int = 5,
    warmup: int = 1,
) -> List[int]:
    """Benchmark each candidate; return indices sorted fastest-first."""
    medians = [
        benchmark(fn, repeats=repeats, warmup=warmup).median for fn in candidates
    ]
    return sorted(range(len(candidates)), key=lambda i: medians[i])
