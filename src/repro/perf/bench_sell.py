"""SELL-C-sigma benchmark: scheduled reordered layouts vs fixed formats.

Three experiments on the high-row-variance synthetic suite (power-law
and bimodal row-length distributions — the shapes where per-slice
padding beats both ELL's global padding and CSR's lockstep row groups):

1. **headline** — for each suite matrix, the cost-strategy scheduler
   picks among the sparse analytic candidates (the paper's four sparse
   formats plus SELL and the reordered RCSR/RELL/RSELL layouts); the
   pick's modelled seconds on the :class:`~repro.hardware.vectormachine.
   VectorMachine` SIMD model are compared against the best *fixed,
   unreordered* sparse format (CSR/COO/ELL/DIA).  The acceptance
   criterion is a >= 1.4x median speedup.  Wall-clock paired ratios are
   reported alongside as an informative column: NumPy's interpreter-
   level kernels cannot express SIMD lane utilisation, so the modelled
   time is the Fig. 4 substitution the rest of the reproduction uses.
2. **trajectory** — padding ratio and modelled seconds of SELL-C-sigma
   across the sort-window ``sigma`` and slice height ``C``, showing the
   padding collapse as the window grows and the lane-utilisation
   plateau across C.
3. **SMO gate** — one end-to-end SMO training run on the permuted
   layout (RCSR) against the CSR reference: iterations, multipliers,
   bias and the final optimality vector must be *bitwise* identical
   (permutation transparency; see ``tests/formats/test_reorder.py``).

Run via ``repro bench sell [--quick]``; results land in
``BENCH_sell.json``.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.scheduler import LayoutScheduler
from repro.data.synthetic import (
    CooTriples,
    attach_labels,
    bimodal_rows_matrix,
    powerlaw_rows_matrix,
)
from repro.features import extract_profile, layout_features
from repro.formats.convert import convert
from repro.formats.csr import CSRMatrix
from repro.formats.reorder import RCSRMatrix, RSELLMatrix
from repro.hardware import VectorMachine, get_machine
from repro.svm.kernels import make_kernel
from repro.svm.smo import smo_train

#: The acceptance threshold for the scheduled-layout speedup.
HEADLINE_CRITERION = 1.4

#: The modelled platform (wide-SIMD, the paper's Xeon Phi class).
MACHINE = "knl"

#: Sparse formats the scheduler decides among for this suite.  DEN is
#: deliberately excluded: the race is between sparse layouts, and the
#: densest suite member would otherwise degenerate to a dense argmin.
SPARSE_CANDIDATES: Tuple[str, ...] = (
    "CSR", "COO", "ELL", "DIA", "SELL", "RCSR", "RELL", "RSELL",
)

#: The fixed, unreordered baselines the headline compares against.
FIXED_BASELINES: Tuple[str, ...] = ("CSR", "COO", "ELL", "DIA")

SIGMA_SWEEP: Tuple[Optional[int], ...] = (32, 256, None)
CHUNK_SWEEP: Tuple[int, ...] = (4, 8, 16, 32)


def _suite(quick: bool, seed: int = 0) -> List[Tuple[str, CooTriples]]:
    """Named high-variance matrices (power-law tails + bimodal).

    ``seed`` offsets every generator's pinned seed; 0 reproduces the
    published numbers exactly (the ``--seed`` CLI hook).
    """
    cases = [
        (
            "powerlaw-a1.6",
            powerlaw_rows_matrix(
                4096, 2048, alpha=1.6, min_nnz=32, max_nnz=1024,
                seed=seed + 7,
            ),
        ),
        (
            "powerlaw-a1.5",
            powerlaw_rows_matrix(
                4096, 2048, alpha=1.5, min_nnz=48, max_nnz=1024,
                seed=seed + 11,
            ),
        ),
        (
            "powerlaw-a1.4",
            powerlaw_rows_matrix(
                2048, 2048, alpha=1.4, min_nnz=64, max_nnz=1536,
                seed=seed + 13,
            ),
        ),
        (
            "bimodal-48-512",
            bimodal_rows_matrix(4096, 2048, 48, 512, 0.08, seed=seed + 5),
        ),
        (
            "bimodal-64-768",
            bimodal_rows_matrix(4096, 2048, 64, 768, 0.06, seed=seed + 5),
        ),
    ]
    return cases[:1] if quick else cases


def _paired_seconds(slow, fast, *, samples: int) -> Tuple[float, float, float]:
    """Median interleaved ratio ``slow / fast`` plus per-call medians."""
    for fn in (slow, fast):
        fn()
        fn()
    ratios: List[float] = []
    t_slow: List[float] = []
    t_fast: List[float] = []
    for _ in range(samples):
        t0 = time.perf_counter()
        slow()
        a = time.perf_counter() - t0
        t0 = time.perf_counter()
        fast()
        b = time.perf_counter() - t0
        ratios.append(a / max(b, 1e-12))
        t_slow.append(a)
        t_fast.append(b)
    return _median(ratios), _median(t_slow), _median(t_fast)


def _median(xs: Sequence[float]) -> float:
    xs = sorted(xs)
    mid = len(xs) // 2
    if len(xs) % 2:
        return xs[mid]
    return 0.5 * (xs[mid - 1] + xs[mid])


def run_headline(
    suite: Sequence[Tuple[str, CooTriples]],
    *,
    samples: int,
) -> List[Dict]:
    """Scheduled sparse pick vs the best fixed unreordered format."""
    vm = VectorMachine(get_machine(MACHINE))
    records: List[Dict] = []
    for name, (rows, cols, vals, shape) in suite:
        base = CSRMatrix.from_coo(rows, cols, vals, shape)
        profile = extract_profile(base)
        scheduler = LayoutScheduler(
            strategy="cost", candidates=SPARSE_CANDIDATES
        )
        decision = scheduler.decide(base)
        picked = convert(base, decision.fmt)
        t_pick = vm.count(picked).seconds
        fixed = {
            fmt: vm.count(convert(base, fmt)).seconds
            for fmt in FIXED_BASELINES
        }
        best_fixed = min(fixed, key=fixed.get)
        baseline = convert(base, best_fixed)
        x = np.arange(shape[1], dtype=float) / shape[1]
        wall_ratio, t_base_wall, t_pick_wall = _paired_seconds(
            lambda: baseline.matvec(x),
            lambda: picked.matvec(x),
            samples=samples,
        )
        records.append(
            {
                "matrix": name,
                "m": shape[0],
                "n": shape[1],
                "nnz": profile.nnz,
                "adim": profile.adim,
                "vdim": profile.vdim,
                "mdim": profile.mdim,
                "picked_fmt": decision.fmt,
                "picked_reason": decision.reason,
                "picked_seconds": t_pick,
                "fixed_seconds": fixed,
                "best_fixed_fmt": best_fixed,
                "best_fixed_seconds": fixed[best_fixed],
                "modelled_speedup": fixed[best_fixed] / t_pick,
                "wallclock_ratio": wall_ratio,
                "wallclock_baseline_seconds": t_base_wall,
                "wallclock_picked_seconds": t_pick_wall,
            }
        )
    return records


def run_trajectory(
    triples: CooTriples,
    *,
    sigmas: Sequence[Optional[int]] = SIGMA_SWEEP,
    chunks: Sequence[int] = CHUNK_SWEEP,
) -> List[Dict]:
    """Padding ratio + modelled seconds across (sigma, C)."""
    vm = VectorMachine(get_machine(MACHINE))
    rows, cols, vals, shape = triples
    lengths = np.bincount(rows, minlength=shape[0])
    records: List[Dict] = []
    for chunk in chunks:
        for sigma in sigmas:
            feats = layout_features(lengths, chunk=chunk, sigma=sigma)
            X = RSELLMatrix.from_coo(
                rows, cols, vals, shape, sigma=sigma, chunk=chunk
            )
            records.append(
                {
                    "chunk": chunk,
                    "sigma": sigma,
                    "padding_ratio_natural": feats.sell_padding_ratio,
                    "padding_ratio_sorted": feats.sell_sorted_padding_ratio,
                    "modelled_seconds": vm.count(X).seconds,
                }
            )
    return records


def run_smo_gate(*, max_iter: int = 2000) -> Dict:
    """End-to-end SMO on the permuted layout vs the CSR reference.

    Trains the same Gaussian-kernel SVM on a CSR matrix and its RCSR
    re-layout and demands *bitwise* agreement on every trajectory-
    determining quantity.  This is the acceptance gate that the whole
    reordering pipeline is permutation-transparent, not just the
    kernels in isolation.
    """
    rows, cols, vals, shape = powerlaw_rows_matrix(
        256, 128, alpha=1.7, min_nnz=4, max_nnz=64, seed=21
    )
    y = attach_labels((rows, cols, vals, shape), seed=3)
    kernel = make_kernel("gaussian", gamma=0.5)
    X_csr = CSRMatrix.from_coo(rows, cols, vals, shape)
    X_rcsr = RCSRMatrix.from_coo(rows, cols, vals, shape)
    ref = smo_train(X_csr, y, kernel, C=1.0, max_iter=max_iter)
    got = smo_train(X_rcsr, y, kernel, C=1.0, max_iter=max_iter)
    checks = {
        "iterations_equal": ref.iterations == got.iterations,
        "alpha_bitwise": bool(np.array_equal(ref.alpha, got.alpha)),
        "bias_bitwise": ref.b == got.b,
        "f_bitwise": bool(np.array_equal(ref.f, got.f)),
        "support_equal": bool(
            np.array_equal(
                np.nonzero(ref.alpha > 1e-12)[0],
                np.nonzero(got.alpha > 1e-12)[0],
            )
        ),
    }
    return {
        "m": shape[0],
        "n": shape[1],
        "iterations": ref.iterations,
        "n_support": ref.n_support,
        "checks": checks,
        "pass": all(checks.values()),
    }


def run_suite(
    *,
    quick: bool = False,
    samples: Optional[int] = None,
    seed: int = 0,
) -> Dict:
    """Run all three experiments; assemble the ``BENCH_sell.json`` payload.

    The headline number is the *median* modelled speedup across the
    suite.  The payload gates on two conditions: the speedup criterion
    and the bitwise SMO agreement — failing either fails the bench.
    """
    if samples is None:
        samples = 5 if quick else 15
    suite = _suite(quick, seed)
    headline_records = run_headline(suite, samples=samples)
    trajectory = run_trajectory(suite[0][1])
    smo_gate = run_smo_gate(max_iter=500 if quick else 2000)
    speedup = _median([r["modelled_speedup"] for r in headline_records])
    return {
        "meta": {
            "suite": "sell",
            "quick": quick,
            "samples": samples,
            "seed": seed,
            "machine_model": MACHINE,
            "candidates": list(SPARSE_CANDIDATES),
            "fixed_baselines": list(FIXED_BASELINES),
            "sigma_sweep": [s if s is not None else "global" for s in SIGMA_SWEEP],
            "chunk_sweep": list(CHUNK_SWEEP),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "headline_records": headline_records,
        "trajectory": trajectory,
        "smo_gate": smo_gate,
        "headline": {
            "scheduled_speedup": speedup,
            "criterion": HEADLINE_CRITERION,
            "smo_bitwise": smo_gate["pass"],
            "pass": speedup >= HEADLINE_CRITERION and smo_gate["pass"],
        },
    }


def write_report(payload: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def render_summary(payload: Dict) -> str:
    lines = []
    head = payload["headline"]
    verdict = "PASS" if head["pass"] else "FAIL"
    lines.append(
        f"scheduled layout speedup (median, modelled): "
        f"{head['scheduled_speedup']:.2f}x over best fixed format "
        f"(criterion {head['criterion']:.1f}x) [{verdict}]"
    )
    for r in payload["headline_records"]:
        lines.append(
            f"  {r['matrix']:<16} {r['picked_fmt']:<5} "
            f"{r['modelled_speedup']:.2f}x vs {r['best_fixed_fmt']} "
            f"(wall-clock {r['wallclock_ratio']:.2f}x, informative)"
        )
    gate = payload["smo_gate"]
    gate_verdict = "PASS" if gate["pass"] else "FAIL"
    lines.append(
        f"SMO permuted-vs-CSR bitwise gate: {gate_verdict} "
        f"({gate['iterations']} iterations, {gate['n_support']} SVs)"
    )
    best = min(
        payload["trajectory"], key=lambda r: r["modelled_seconds"]
    )
    sigma = best["sigma"] if best["sigma"] is not None else "global"
    lines.append(
        f"best (C, sigma) in trajectory: C={best['chunk']} sigma={sigma} "
        f"(sorted padding ratio {best['padding_ratio_sorted']:.3f})"
    )
    return "\n".join(lines)
