"""Explicit flop and byte counters.

The paper's analysis (Section III, Eq. (7)) reasons about *transferred
memory* and *computation* rather than wall time, because wall time on a
given box is just those two quantities divided by the machine's effective
throughput.  Making the counts explicit lets us:

- unit-test that a format kernel performs exactly the padded amount of
  work Table II predicts (e.g. an ELL SMSV touches ``2 * M * mdim``
  elements, padding included), and
- feed the same counts into the roofline / vector-machine models in
  :mod:`repro.hardware` without re-deriving them.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from typing import Dict, Iterator, Tuple


@dataclass
class OpCounter:
    """Accumulator for floating point operations and memory traffic.

    Attributes
    ----------
    flops:
        Scalar floating point operations (a fused multiply-add counts
        as two, matching the usual HPC convention).
    bytes_read / bytes_written:
        Memory traffic in bytes.  Padded (zero) elements count: the whole
        point of the paper is that padding is traffic you still pay for.
    vector_ops:
        Width-``W`` SIMD instructions issued, as counted by the
        vector-machine model.  Zero unless that model is in use.
    spmm_calls / spmm_columns:
        Number of blocked multi-vector sweeps (``matmat`` /
        ``smsv_multi``) and the total right-hand-side columns they
        carried.  ``spmm_columns / spmm_calls`` is the achieved batch
        width — the quantity the ``batch_k`` cost-model knob predicts.
    parallel_blocks / parallel_work_total / parallel_work_max:
        Row-block partition accounting from :mod:`repro.parallel`:
        blocks dispatched, their summed work weight (non-zeros for
        weighted formats, rows otherwise), and the heaviest single
        block seen.  ``parallel_work_max * parallel_blocks /
        parallel_work_total`` ~ 1 means the partition was balanced; a
        large value means one hot block would have serialised the pool.
    """

    flops: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    vector_ops: int = 0
    spmm_calls: int = 0
    spmm_columns: int = 0
    parallel_blocks: int = 0
    parallel_work_total: int = 0
    parallel_work_max: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    #: Fields that fold with ``max`` instead of ``+`` in :meth:`merge`
    #: (high-water marks, not additive totals).  Everything else sums.
    _MAX_FIELDS = frozenset({"parallel_work_max"})

    @classmethod
    def field_names(cls) -> Tuple[str, ...]:
        """Every accounting field, straight from the dataclass.

        ``reset``/``snapshot``/``merge``/``as_dict`` all iterate this
        list, so a field added by a future PR is covered by
        construction — the exhaustiveness regression test only has to
        check the *semantics* (sum vs max), never the coverage.
        """
        return tuple(
            f.name for f in fields(cls) if not f.name.startswith("_")
        )

    def add_flops(self, n: int) -> None:
        with self._lock:
            self.flops += int(n)

    def add_read(self, nbytes: int) -> None:
        with self._lock:
            self.bytes_read += int(nbytes)

    def add_write(self, nbytes: int) -> None:
        with self._lock:
            self.bytes_written += int(nbytes)

    def add_vector_ops(self, n: int) -> None:
        with self._lock:
            self.vector_ops += int(n)

    def add_spmm(self, k: int) -> None:
        """Record one blocked sweep carrying ``k`` right-hand sides."""
        with self._lock:
            self.spmm_calls += 1
            self.spmm_columns += int(k)

    def add_parallel_blocks(self, block_work) -> None:
        """Record one row-block partition's per-block work weights."""
        work = [int(w) for w in block_work]
        if not work:
            return
        with self._lock:
            self.parallel_blocks += len(work)
            self.parallel_work_total += sum(work)
            self.parallel_work_max = max(self.parallel_work_max, max(work))

    @property
    def bytes_total(self) -> int:
        return self.bytes_read + self.bytes_written

    def reset(self) -> None:
        with self._lock:
            for name in self.field_names():
                setattr(self, name, 0)

    def snapshot(self) -> "OpCounter":
        """Return an independent copy of the current totals."""
        with self._lock:
            out = OpCounter()
            for name in self.field_names():
                setattr(out, name, getattr(self, name))
            return out

    def merge(self, other: "OpCounter") -> None:
        """Fold another counter's totals into this one (thread-safe).

        Additive fields sum; high-water marks (``_MAX_FIELDS``) take
        the max.  Iterating the dataclass fields means a field added
        later can never silently drop out of the merge.
        """
        with self._lock:
            for name in self.field_names():
                if name in self._MAX_FIELDS:
                    setattr(
                        self,
                        name,
                        max(getattr(self, name), getattr(other, name)),
                    )
                else:
                    setattr(
                        self,
                        name,
                        getattr(self, name) + getattr(other, name),
                    )

    def as_dict(self) -> Dict[str, int]:
        """All accounting fields as a plain dict (metrics-view input)."""
        with self._lock:
            return {
                name: getattr(self, name) for name in self.field_names()
            }

    def arithmetic_intensity(self) -> float:
        """Flops per byte of traffic; the x-axis of a roofline plot."""
        total = self.bytes_total
        if total == 0:
            return 0.0
        return self.flops / total


_global = OpCounter()


def global_counter() -> OpCounter:
    """Process-wide counter that kernels report into when enabled."""
    return _global


@contextmanager
def counting() -> Iterator[OpCounter]:
    """Context manager yielding a fresh counter scoped to the block.

    Example
    -------
    >>> from repro.perf import counting
    >>> with counting() as c:
    ...     c.add_flops(10)
    >>> c.flops
    10
    """
    counter = OpCounter()
    yield counter
