"""Command-line interface.

``python -m repro <command>``:

========  ==========================================================
profile   print the nine Table IV parameters of a LIBSVM file
schedule  decide (and explain) the storage format for a LIBSVM file
train     train an adaptive SVM on a LIBSVM file and report accuracy
serve     simulate an online serving session (micro-batching + runtime
          layout re-scheduling) and report metrics; ``--workers N``
          serves through the sharded multi-process fleet instead
bench     run a synthetic benchmark suite (smsv, sell, serve, obs,
          fleet, tune)
tune      measured-time knob search (SELL chunk, sigma window, batch
          width, partition granularity, workers, SMO row cache);
          winners persist to ``~/.cache/repro/tune.json`` where the
          scheduler and kernels consult them
trace     run any other command with tracing on and export the span
          tree, decision audit log, and metrics
obs       observability reports (``obs report``: scheduler regret —
          predicted vs measured format rankings)
datasets  list the built-in Table V dataset clones
table7    print the regenerated Table VII
machines  list the hardware catalog (Table VII platforms + prices)
lint      run the RDL static-analysis rules over source paths
race      run only the concurrency rules (RDL009-RDL012) and report
          lock-discipline findings
========  ==========================================================

Every command is a thin shell over the public API, so scripts can do
the same four lines in Python; the CLI exists for quick inspection of
files on disk.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

import numpy as np


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.data import read_libsvm
    from repro.features import profile_from_coo

    (rows, cols, _vals, shape), _y = read_libsvm(
        args.file, n_features=args.n_features
    )
    p = profile_from_coo(rows, cols, shape, validated=True)
    print(p)
    for name, value in p.as_dict().items():
        print(f"  {name:8s} = {value}")
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    from repro.core import LayoutScheduler, explain
    from repro.data import read_libsvm

    (rows, cols, vals, shape), _y = read_libsvm(
        args.file, n_features=args.n_features
    )
    from repro.obs import audit_dataset

    sched = LayoutScheduler(args.strategy)
    with audit_dataset(args.file):
        decision = sched.decide_from_coo(rows, cols, vals, shape)
    print(f"format   : {decision.fmt}")
    print(f"strategy : {decision.strategy}")
    print(f"reason   : {decision.reason}")
    if args.explain:
        print()
        print(explain(decision.profile))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.core import LayoutScheduler
    from repro.data import read_libsvm
    from repro.svm import AdaptiveSVC

    if args.sanitize:
        # Construction-time checks everywhere downstream, plus a
        # per-operation wrapper around the training matrix below.
        import os

        os.environ["REPRO_SANITIZE"] = "1"
    if args.trace:
        from repro.obs import enable_tracing

        enable_tracing()

    (rows, cols, vals, shape), y = read_libsvm(
        args.file, n_features=args.n_features
    )
    classes = np.unique(y)
    if classes.shape[0] != 2:
        print(
            f"error: need a binary problem, found {classes.shape[0]} "
            f"classes",
            file=sys.stderr,
        )
        return 2
    # map arbitrary binary labels to ±1
    y_pm = np.where(y == classes[1], 1.0, -1.0)
    from repro.formats import format_class

    X = format_class("CSR").from_coo(rows, cols, vals, shape)
    if args.sanitize:
        from repro.analysis import sanitize_format

        X = sanitize_format(X)
    clf = AdaptiveSVC(
        args.kernel,
        C=args.C,
        max_iter=args.max_iter,
        scheduler=LayoutScheduler(args.strategy),
        cache_mb=args.cache_mb,
        **({"gamma": args.gamma} if args.kernel in ("gaussian", "rbf") else {}),
    )
    from repro.obs import audit_dataset

    t0 = time.perf_counter()
    with audit_dataset(args.file):
        clf.fit(X, y_pm)
    elapsed = time.perf_counter() - t0
    print(f"format      : {clf.chosen_format}")
    print(f"iterations  : {clf.result_.iterations}")
    print(f"converged   : {clf.result_.converged}")
    print(f"support     : {clf.n_support}")
    print(f"train acc   : {clf.score(X, y_pm):.4f}")
    print(f"train time  : {elapsed:.2f} s")
    return 0


def _cmd_serve_fleet(args: argparse.Namespace) -> int:
    """The multi-worker serving path (``repro serve --workers N``)."""
    import json

    from repro.serve import AdmissionController, ServingFleet, simulate_fleet
    from repro.serve.bench_fleet import (
        STRONG_BITWISE_FORMATS,
        fleet_models,
        tenant_workload,
    )

    from repro.obs import get_registry, trace_enabled
    from repro.obs.collect import clear_fleet_trace, publish_fleet_trace

    models = fleet_models(smoke=True)
    workload = tenant_workload(smoke=True, seed=args.seed)
    admission = AdmissionController(
        capacity=args.capacity, shed_at=args.shed_at
    )
    traced = trace_enabled()
    if traced:
        clear_fleet_trace()
    with ServingFleet(
        models,
        args.workers,
        backend=args.backend,
        rescheduler={
            "min_gain": 0.0,
            "candidates": STRONG_BITWISE_FORMATS,
        },
    ) as fleet:
        if traced:
            fleet.enable_worker_tracing()
        report = simulate_fleet(
            fleet,
            workload,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            admission=admission,
            registry=get_registry() if traced else None,
        )
        if traced:
            # Collect before close — worker rings die with the
            # processes.  The wrapping `repro trace` exports this.
            publish_fleet_trace(fleet.merged_trace())
    snap = report.metrics.snapshot()
    if args.json:
        snap["workload"] = report.workload
        snap["workers"] = args.workers
        snap["per_shard_served"] = {
            str(s): c for s, c in report.per_shard_served.items()
        }
        snap["rebalances"] = len(report.rebalances)
        snap["reschedule_events"] = len(report.events)
        snap["transport"] = {
            str(w): stats
            for w, stats in report.snapshot.transport.items()
        }
        print(json.dumps(snap, indent=2, sort_keys=True))
        return 0
    lat = snap["latency"]
    print(
        f"fleet       : {args.workers} {args.backend} worker(s), "
        f"{len(models)} model(s)"
    )
    print(f"workload    : {report.workload} ({len(workload)} requests)")
    print(
        f"served      : {snap['served']} in {snap['batches']} batches "
        f"(mean width {snap['mean_batch']:.2f})"
    )
    print(
        f"shed        : {snap['rejected']} rejected, "
        f"{snap['expired']} expired, {snap['degraded']} degraded"
    )
    print(
        f"latency ms  : p50 {lat['p50_ms']:.3f}  p95 {lat['p95_ms']:.3f}  "
        f"p99 {lat['p99_ms']:.3f} (virtual: coalescing wait)"
    )
    print(f"throughput  : {snap['throughput_rps']:.0f} rps (virtual time)")
    print(
        "per shard   : "
        + "  ".join(
            f"w{s}={c}" for s, c in sorted(report.per_shard_served.items())
        )
    )
    for w, stats in sorted(report.snapshot.transport.items()):
        per_req = (
            (stats["hot_bytes_sent"] + stats["hot_bytes_received"])
            / stats["hot_requests"]
            if stats["hot_requests"]
            else 0.0
        )
        print(
            f"  w{w} transport: {stats['hot_requests']} reqs, "
            f"{per_req:.0f} hot B/req, "
            f"{stats['control_bytes_sent'] + stats['control_bytes_received']} "
            f"control B"
        )
    for event in report.rebalances:
        print(
            f"  rebalance #{event.seq}: {event.model} -> shard "
            f"{event.cold_shard} (hot shard {event.hot_shard}, "
            f"imbalance {event.imbalance:.2f}x)"
        )
    n_flips = len(report.events)
    print(
        f"reschedules : {n_flips} per-replica format flip(s)"
        + ("" if n_flips else " (none warranted)")
    )
    for key, shard, e in report.events:
        print(
            f"  {key}@w{shard} batch {e.batch_seq}: {e.from_fmt} -> "
            f"{e.to_fmt} (effective k={e.effective_k})"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    if args.trace:
        from repro.obs import enable_tracing

        enable_tracing()

    if args.workers is not None:
        if args.workers < 1:
            print("error: --workers must be >= 1", file=sys.stderr)
            return 2
        if args.model is not None:
            print(
                "error: --workers runs the synthetic fleet demo and "
                "cannot load --model",
                file=sys.stderr,
            )
            return 2
        return _cmd_serve_fleet(args)

    from repro.serve import (
        AdmissionController,
        FormatRescheduler,
        InferenceEngine,
        ServedModel,
        closed_loop,
        open_loop,
        phase_shift,
        query_sampler,
        simulate,
    )

    if args.model:
        from repro.svm.persist import load_model

        model = ServedModel.from_model(load_model(args.model))
    else:
        # The synthetic demo model whose cost ranking flips with the
        # observed batch width — the workload below walks it across
        # the crossover so the session shows a runtime re-schedule.
        from repro.serve.bench import flip_model

        model = flip_model(seed=args.seed)
    if args.model is None:
        # Demo mode: restrict to the unreordered family so the batch-
        # width crossover exists (see serve.bench.CLASSIC_SERVE_FORMATS).
        from repro.serve.bench import CLASSIC_SERVE_FORMATS

        resch = FormatRescheduler(
            min_gain=0.0, candidates=CLASSIC_SERVE_FORMATS
        )
    else:
        resch = FormatRescheduler(min_gain=0.05)
    fmt0 = resch.initial_format(model.matrix)
    engine = InferenceEngine(model)
    engine.convert_to(fmt0)

    _r, _c, vals = model.matrix.to_coo()
    mean_nnz = max(1, round(vals.shape[0] / model.matrix.shape[0]))
    sampler = query_sampler(
        model.n_features, min(mean_nnz, model.n_features)
    )
    if args.workload == "phase-shift":
        workload = phase_shift(
            sampler,
            singles=max(1, args.requests // 4),
            bursts=max(1, args.requests // 10),
            burst_size=args.max_batch,
            seed=args.seed,
            deadline_ms=args.deadline_ms,
        )
    elif args.workload == "closed":
        workload = closed_loop(
            args.requests,
            concurrency=args.max_batch,
            sampler=sampler,
            seed=args.seed,
            deadline_ms=args.deadline_ms,
        )
    else:
        workload = open_loop(
            args.requests,
            args.rate,
            sampler,
            seed=args.seed,
            deadline_ms=args.deadline_ms,
        )
    admission = AdmissionController(
        capacity=args.capacity, shed_at=args.shed_at
    )
    from repro.obs import audit_dataset

    with audit_dataset(workload.name):
        report = simulate(
            engine,
            workload,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            admission=admission,
            rescheduler=resch,
        )
    snap = report.metrics.snapshot()
    if args.json:
        snap["workload"] = report.workload
        snap["initial_format"] = fmt0
        snap["final_format"] = report.final_format
        snap["events"] = [e.reason for e in report.events]
        print(json.dumps(snap, indent=2, sort_keys=True))
        return 0
    lat = snap["latency"]
    print(f"workload    : {report.workload} ({len(workload)} requests)")
    print(
        f"served      : {snap['served']} in {snap['batches']} batches "
        f"(mean width {snap['mean_batch']:.2f})"
    )
    print(
        f"shed        : {snap['rejected']} rejected, "
        f"{snap['expired']} expired, {snap['degraded']} degraded"
    )
    print(
        f"latency ms  : p50 {lat['p50_ms']:.3f}  p95 {lat['p95_ms']:.3f}  "
        f"p99 {lat['p99_ms']:.3f} (virtual: coalescing wait)"
    )
    print(f"throughput  : {snap['throughput_rps']:.0f} rps (virtual time)")
    print(
        f"spmm        : {snap['ops']['spmm_calls']} sweeps over "
        f"{snap['ops']['spmm_columns']} columns"
    )
    print(f"format      : {fmt0} -> {report.final_format}")
    for e in report.events:
        print(
            f"  reschedule at batch {e.batch_seq}: {e.from_fmt} -> "
            f"{e.to_fmt} ({e.reason})"
        )
    if not report.events:
        print("  (no runtime re-schedule was warranted)")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    smoke = args.smoke or args.quick
    rc = 0
    if args.what == "smsv":
        from repro.perf.bench_smsv import (
            render_summary,
            run_suite,
            write_report,
        )

        payload = run_suite(quick=smoke, repeats=args.repeats)
        out = args.out or "BENCH_smsv.json"
    elif args.what == "sell":
        from repro.perf.bench_sell import (
            render_summary,
            run_suite,
            write_report,
        )

        payload = run_suite(
            quick=smoke, samples=args.repeats, seed=args.bench_seed
        )
        out = args.out or "BENCH_sell.json"
        # Deterministic criteria (modelled speedup + bitwise SMO
        # agreement) — safe to gate on, unlike wall-clock suites.
        rc = 0 if payload["headline"]["pass"] else 1
    elif args.what == "obs" and args.fleet:
        from repro.obs.bench_fleet import (
            render_summary,
            run_suite,
            write_report,
        )

        payload = run_suite(quick=smoke, repeats=args.repeats)
        out = args.out or "BENCH_obs.json"
        # Bitwise traced-vs-untraced equality, lane completeness,
        # parent resolution and the forced SLO breach are all
        # deterministic — safe to gate on.
        rc = 0 if payload["headline"]["pass"] else 1
    elif args.what == "obs":
        from repro.obs.bench import (
            render_summary,
            run_suite,
            write_report,
        )

        payload = run_suite(quick=smoke, repeats=args.repeats)
        out = args.out or "BENCH_obs.json"
        # The no-op-singleton checks are deterministic and the timing
        # gate has 4x headroom over true span cost — safe to gate on.
        rc = 0 if payload["headline"]["pass"] else 1
    elif args.what == "tune":
        from repro.tune.bench import (
            render_summary,
            run_suite,
            write_report,
        )

        payload = run_suite(
            quick=smoke, repeats=args.repeats, seed=args.bench_seed
        )
        out = args.out or "BENCH_tune.json"
        # All three gate parts are deterministic (incumbent protection
        # makes "tuned never slower" an invariant of the search, and
        # the decision checks compare values, not timings) — safe to
        # gate on.
        rc = 0 if payload["headline"]["pass"] else 1
    elif args.what == "fleet":
        from repro.serve.bench_fleet import (
            render_summary,
            run_suite,
            write_report,
        )

        payload = run_suite(smoke=smoke, samples=args.repeats)
        out = args.out or "BENCH_fleet.json"
        # Virtual-clock throughput scaling, bitwise replay agreement,
        # zero-copy byte accounting and the admission bound are all
        # deterministic — safe to gate on.
        rc = 0 if payload["headline"]["pass"] else 1
    else:
        from repro.serve.bench import (
            render_summary,
            run_suite,
            write_report,
        )

        payload = run_suite(smoke=smoke, samples=args.repeats)
        out = args.out or "BENCH_serve.json"
    write_report(payload, out)
    print(render_summary(payload))
    print(f"report      : {out}")
    return rc


def _cmd_tune(args: argparse.Namespace) -> int:
    """Search the knob families and persist the winners.

    With ``--dataset`` the search runs on that LIBSVM file; otherwise
    it covers the synthetic report suite (one profile bucket per
    dataset family).  Winners land in the persisted tuning cache
    (``REPRO_TUNE_CACHE`` or ``~/.cache/repro/tune.json``) where the
    scheduler, the parallel kernels, the serving tier and the SMO row
    cache consult them on every later run.
    """
    import json

    from repro.core.autotune import AutoTuner
    from repro.core.cost_model import ANALYTIC_FORMATS
    from repro.tune.cache import tune_cache
    from repro.tune.search import ProbeContext, TuneSearch
    from repro.tune.space import FORMAT_FAMILY, KNOB_FAMILIES, SPACES

    if args.families:
        families = []
        for f in args.families.split(","):
            f = f.strip()
            if f not in SPACES:
                print(
                    f"error: unknown knob family {f!r}; expected one "
                    f"of {', '.join(KNOB_FAMILIES)}",
                    file=sys.stderr,
                )
                return 2
            families.append(f)
    else:
        families = list(KNOB_FAMILIES)

    if args.dataset:
        from repro.data import read_libsvm

        (rows, cols, vals, shape), _y = read_libsvm(
            args.dataset, n_features=args.n_features
        )
        datasets = [(args.dataset, rows, cols, vals, shape)]
    else:
        from repro.obs.report import REPORT_DATASETS

        datasets = []
        for name, build in REPORT_DATASETS:
            rows, cols, vals, shape = build(1024, 512, args.seed)
            datasets.append((name, rows, cols, vals, shape))

    cache = tune_cache()
    data_families = [f for f in families if not SPACES[f].machine_wide]
    machine_families = [f for f in families if SPACES[f].machine_wide]
    tuner = AutoTuner(repeats=3, seed=args.seed)
    payload: dict = {"cache": str(cache.path), "datasets": {}}
    for index, (name, rows, cols, vals, shape) in enumerate(datasets):
        ctx = ProbeContext(rows, cols, vals, shape, seed=args.seed)
        search = TuneSearch(seed=args.seed, budget=args.budget)
        run = list(data_families)
        if index == 0:
            run += machine_families  # machine-wide: tuned once per box
        results = search.tune(ctx, run)
        for family, r in results.items():
            cache.put(
                family,
                r.best,
                profile=ctx.profile,
                stats={
                    "median_seconds": r.best_seconds,
                    "default_seconds": r.default_seconds,
                    "fidelity": r.fidelity,
                },
            )
        probed = tuner.probe(rows, cols, vals, shape, ANALYTIC_FORMATS)
        cache.put(
            FORMAT_FAMILY,
            {"fmt": probed[0].fmt, "batch_k": 1},
            profile=ctx.profile,
            stats={"median_seconds": probed[0].median_seconds},
        )
        payload["datasets"][name] = {
            "bucket": cache.bucket_for(FORMAT_FAMILY, ctx.profile),
            "format": probed[0].fmt,
            "families": {f: r.as_dict() for f, r in results.items()},
            "budget_spent": search.spent,
        }
        if not args.json:
            fams = "  ".join(
                f"{f} {dict(r.best)}"
                + (f" x{r.speedup:.2f}" if r.improved else " (=default)")
                for f, r in results.items()
            )
            print(f"{name:12s}: format {probed[0].fmt:5s}  {fams}")
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"cache       : {cache.path} ({len(cache)} entries)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if not args.cmd or args.cmd[0] == "trace":
        print(
            "error: usage is `repro trace [--trace-out F ...] "
            "<command> [args...]`",
            file=sys.stderr,
        )
        return 2
    misplaced = {
        "--trace-out", "--chrome", "--audit-out", "--metrics-out"
    } & set(args.cmd)
    if misplaced:
        # argparse.REMAINDER swallows everything after the wrapped
        # command's name, so export options are only seen before it.
        print(
            f"error: {', '.join(sorted(misplaced))} must come before "
            f"the wrapped command: repro trace [options] "
            f"{args.cmd[0]} ...",
            file=sys.stderr,
        )
        return 2
    from repro.obs import audit_log, enable_tracing, get_registry, get_tracer
    from repro.obs.collect import (
        clear_fleet_trace,
        last_fleet_trace,
        mount_tracer_health,
    )
    from repro.obs.export import (
        write_audit_jsonl,
        write_chrome_trace,
        write_merged_chrome_trace,
        write_prometheus,
        write_spans_jsonl,
    )

    enable_tracing()
    tracer = get_tracer()
    clear_fleet_trace()
    rc = main(args.cmd)
    spans = tracer.spans()
    # A fleet command (serve --workers N) publishes its merged
    # multi-process timeline on the way out; prefer it — it contains
    # the door's spans plus every worker's, already re-parented.
    merged = last_fleet_trace()
    # Exports and the summary go to stderr-adjacent paths so a wrapped
    # `--json` command's stdout stays machine-parseable.
    if args.trace_out:
        if merged is not None:
            write_spans_jsonl(
                merged.spans,
                args.trace_out,
                dropped={
                    str(lane): n
                    for lane, n in sorted(merged.dropped.items())
                },
            )
        else:
            write_spans_jsonl(spans, args.trace_out, dropped=tracer.dropped)
    if args.chrome:
        if merged is not None:
            write_merged_chrome_trace(merged, args.chrome)
        else:
            write_chrome_trace(spans, args.chrome)
    if args.audit_out:
        write_audit_jsonl(audit_log().records(), args.audit_out)
    if args.metrics_out:
        mount_tracer_health(get_registry())
        write_prometheus(get_registry(), args.metrics_out)
    outs = [
        f"{label} -> {path}"
        for label, path in (
            ("spans", args.trace_out),
            ("chrome", args.chrome),
            ("audit", args.audit_out),
            ("metrics", args.metrics_out),
        )
        if path
    ]
    if merged is not None:
        lanes = merged.worker_lanes()
        print(
            f"trace       : {len(merged.spans)} spans across "
            f"{len(lanes) + 1} processes (door + workers {lanes}), "
            f"{len(audit_log().records())} audited decisions"
            + (f" ({'; '.join(outs)})" if outs else ""),
            file=sys.stderr,
        )
    else:
        print(
            f"trace       : {len(spans)} spans, "
            f"{len(audit_log().records())} audited decisions"
            + (f" ({'; '.join(outs)})" if outs else ""),
            file=sys.stderr,
        )
    return rc


def _cmd_obs_report(args: argparse.Namespace) -> int:
    import json

    from repro.obs.report import (
        render_report,
        report_payload,
        run_report,
    )

    records = run_report(
        quick=args.quick,
        repeats=args.repeats,
        seed=args.seed,
        batch_k=args.batch_k,
    )
    if args.json:
        print(json.dumps(report_payload(records), indent=2, sort_keys=True))
    else:
        print(render_report(records))
    return 0


def _cmd_obs_slo(args: argparse.Namespace) -> int:
    """Run the synthetic fleet demo under declarative SLOs."""
    import json

    from repro.obs.flight import FlightRecorder
    from repro.obs.slo import SLOMonitor, default_slos, render_slo
    from repro.serve.bench_fleet import fleet_models, tenant_workload
    from repro.serve.fleet import ServingFleet, simulate_fleet

    flight = FlightRecorder(enabled=True)
    monitor = SLOMonitor(
        default_slos(
            latency_ms=args.latency_ms,
            saturation_ms=args.saturation_ms,
        ),
        flight=flight,
        dump_path=args.dump,
    )
    with ServingFleet(
        fleet_models(smoke=True),
        args.workers,
        backend="local",
    ) as fleet:
        report = simulate_fleet(
            fleet,
            tenant_workload(smoke=True, seed=args.seed),
            slo=monitor,
        )
    if args.json:
        payload = monitor.payload()
        payload["workload"] = report.workload
        payload["served"] = report.metrics.served
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        f"fleet       : {args.workers} local worker(s), "
        f"{report.metrics.served} served"
    )
    print(render_slo(monitor))
    if args.dump and monitor.breaches:
        print(f"flight dump : {args.dump}")
    return 0


def _cmd_obs_dump(args: argparse.Namespace) -> int:
    """Render a flight-recorder dump file."""
    import json

    from repro.obs.flight import read_flight_dump, render_flight

    try:
        dump = read_flight_dump(args.file)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(dump, indent=2, sort_keys=True))
    else:
        print(render_flight(dump))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (
        explain_rule,
        lint_paths,
        render_json,
        render_text,
    )

    if args.explain:
        try:
            print(explain_rule(args.explain))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0

    paths = args.paths or ["src"]
    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None
    try:
        findings = lint_paths(paths, select=select, ignore=ignore)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    render = render_json if args.json else render_text
    print(render(findings))
    return 1 if findings else 0


def _cmd_race(args: argparse.Namespace) -> int:
    from repro.analysis import lint_paths, render_json, render_text
    from repro.analysis.concurrency import CONCURRENCY_CODES

    paths = args.paths or ["src"]
    try:
        findings = lint_paths(paths, select=list(CONCURRENCY_CODES))
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    render = render_json if args.json else render_text
    print(render(findings))
    return 1 if findings else 0


def _cmd_datasets(_args: argparse.Namespace) -> int:
    from repro.data import DATASET_SPECS

    header = (
        f"{'name':14s} {'application':12s} {'M':>9s} {'N':>7s} "
        f"{'density':>8s} {'scaled':>7s}"
    )
    print(header)
    for name, spec in DATASET_SPECS.items():
        p = spec.paper
        print(
            f"{name:14s} {spec.application:12s} {p.m:9d} {p.n:7d} "
            f"{p.density:8.3f} {'yes' if spec.scaled else 'no':>7s}"
        )
    return 0


def _cmd_table7(_args: argparse.Namespace) -> int:
    from repro.tuning import reproduce_table7
    from repro.tuning.table7 import format_rows

    print(format_rows(reproduce_table7()))
    return 0


def _cmd_machines(_args: argparse.Namespace) -> int:
    from repro.hardware import MACHINES

    print(
        f"{'name':10s} {'cores':>6s} {'peak Gf/s':>10s} {'BW GB/s':>8s} "
        f"{'price $':>9s}  description"
    )
    for name, m in MACHINES.items():
        print(
            f"{name:10s} {m.cores:6d} {m.peak_gflops:10.0f} "
            f"{m.bandwidth_gbs:8.0f} {m.price_usd:9,.0f}  {m.long_name}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Runtime data layout scheduling for ML datasets "
        "(You & Demmel, ICPP 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("profile", help="nine-parameter profile of a LIBSVM file")
    p.add_argument("file")
    p.add_argument("--n-features", type=int, default=None)
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("schedule", help="decide the storage format")
    p.add_argument("file")
    p.add_argument("--n-features", type=int, default=None)
    p.add_argument(
        "--strategy",
        choices=("rules", "cost", "probe", "hybrid"),
        default="hybrid",
    )
    p.add_argument(
        "--explain",
        action="store_true",
        help="print the full decision rationale (profile, rule trace, "
        "cost-model ranking)",
    )
    p.set_defaults(func=_cmd_schedule)

    p = sub.add_parser("train", help="train an adaptive SVM")
    p.add_argument("file")
    p.add_argument("--n-features", type=int, default=None)
    p.add_argument("--kernel", default="linear")
    p.add_argument("--gamma", type=float, default=0.1)
    p.add_argument("--C", type=float, default=1.0)
    p.add_argument("--max-iter", type=int, default=10_000)
    p.add_argument(
        "--strategy",
        choices=("rules", "cost", "probe", "hybrid"),
        default="hybrid",
    )
    p.add_argument(
        "--sanitize",
        action="store_true",
        help="validate format invariants at every construction and "
        "operation (sets REPRO_SANITIZE=1)",
    )
    p.add_argument(
        "--cache-mb",
        type=float,
        default=None,
        metavar="MB",
        help="kernel-row cache budget in megabytes (LIBSVM -m "
        "semantics); default: a fixed row count",
    )
    p.add_argument(
        "--trace",
        action="store_true",
        help="enable span tracing for the run (same as REPRO_TRACE=1; "
        "use `repro trace train ...` to also export the spans)",
    )
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser(
        "serve",
        help="simulate an online serving session on the virtual clock",
    )
    p.add_argument(
        "--model",
        default=None,
        metavar="FILE",
        help="saved model (.npz from SVC.save / MulticlassSVC.save); "
        "default: a synthetic demo model whose format flips with "
        "batch width",
    )
    p.add_argument(
        "--workload",
        choices=("open", "closed", "phase-shift"),
        default="phase-shift",
        help="arrival pattern (default: phase-shift, which drifts the "
        "batch width to trigger a runtime re-schedule)",
    )
    p.add_argument("--requests", type=int, default=256)
    p.add_argument(
        "--rate",
        type=float,
        default=2000.0,
        help="open-loop arrival rate in requests/s (virtual time)",
    )
    p.add_argument("--max-batch", type=int, default=8)
    p.add_argument("--max-wait-ms", type=float, default=2.0)
    p.add_argument("--capacity", type=int, default=64)
    p.add_argument("--shed-at", type=float, default=0.75)
    p.add_argument("--deadline-ms", type=float, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="serve through a sharded multi-process fleet of N workers "
        "(zero-copy shared-memory models, per-replica re-scheduling) "
        "instead of one in-process engine",
    )
    p.add_argument(
        "--backend",
        choices=("process", "local"),
        default="process",
        help="fleet worker backend (--workers only; local runs the "
        "identical wire protocol in-process)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="machine-readable metrics snapshot",
    )
    p.add_argument(
        "--trace",
        action="store_true",
        help="enable span tracing for the session (same as "
        "REPRO_TRACE=1; use `repro trace serve ...` to also export)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "bench",
        help="run a synthetic benchmark suite and write a JSON report",
    )
    p.add_argument(
        "what",
        choices=("smsv", "sell", "serve", "obs", "fleet", "tune"),
        help="which suite to run (smsv: blocked SpMM + fused dual-row; "
        "sell: scheduled SELL-C-sigma vs fixed formats + SMO bitwise "
        "gate; serve: micro-batched serving throughput + re-schedule "
        "demo; obs: disabled-mode tracing overhead gate; fleet: multi-"
        "worker scaling + zero-copy transport + overload admission; "
        "tune: measured knob search vs analytic defaults + warm-cache "
        "decision determinism)",
    )
    p.add_argument(
        "--quick",
        action="store_true",
        help="one small shape, fewer repeats (CI smoke mode)",
    )
    p.add_argument(
        "--smoke",
        action="store_true",
        help="alias for --quick",
    )
    p.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timing repeats/samples per measurement (default: suite-"
        "specific)",
    )
    p.add_argument(
        "--out",
        default=None,
        help="output JSON path (default: BENCH_<suite>.json)",
    )
    p.add_argument(
        "--seed",
        dest="bench_seed",
        type=int,
        default=0,
        help="generator seed offset for the sell suite (default 0 — "
        "the pinned seeds the published numbers use; other suites "
        "ignore it)",
    )
    p.add_argument(
        "--fleet",
        action="store_true",
        help="for the obs suite: the full fleet gate — traced-vs-"
        "untraced bitwise equality on a multi-process fleet, merged-"
        "timeline completeness, and the deterministic SLO-breach -> "
        "flight-dump path (other suites ignore it)",
    )
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "tune",
        help="measured-time knob search; winners persist to the "
        "tuning cache the scheduler and kernels consult",
    )
    p.add_argument(
        "--budget",
        type=int,
        default=256,
        help="timed-repeat budget per dataset (default 256)",
    )
    p.add_argument(
        "--dataset",
        default=None,
        metavar="FILE",
        help="tune on this LIBSVM file instead of the synthetic "
        "report suite",
    )
    p.add_argument("--n-features", type=int, default=None)
    p.add_argument(
        "--families",
        default=None,
        metavar="F1,F2",
        help="comma-separated knob families (default: all)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--json",
        action="store_true",
        help="machine-readable results",
    )
    p.set_defaults(func=_cmd_tune)

    p = sub.add_parser(
        "trace",
        help="run another repro command with tracing on, then export "
        "the span tree, decision audit log, and metrics",
    )
    p.add_argument(
        "cmd",
        nargs=argparse.REMAINDER,
        metavar="command",
        help="the command to run traced, with its own arguments "
        "(e.g. `repro trace train data.libsvm --max-iter 100`)",
    )
    p.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write the spans as JSON-lines",
    )
    p.add_argument(
        "--chrome",
        default=None,
        metavar="FILE",
        help="write a chrome://tracing / Perfetto JSON trace",
    )
    p.add_argument(
        "--audit-out",
        default=None,
        metavar="FILE",
        help="write the scheduler decision audit log as JSON-lines",
    )
    p.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the metrics registry in Prometheus text format",
    )
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "obs",
        help="observability reports over the decision audit pipeline",
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    pr = obs_sub.add_parser(
        "report",
        help="scheduler regret: the cost model's predicted format "
        "ranking vs the autotuner's measured one, per dataset",
    )
    pr.add_argument(
        "--quick",
        action="store_true",
        help="small shapes (CI smoke mode)",
    )
    pr.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="autotuner probe repeats per format (default 3)",
    )
    pr.add_argument("--seed", type=int, default=0)
    pr.add_argument(
        "--batch-k",
        type=int,
        default=1,
        help="batch width the rankings are priced at (default 1)",
    )
    pr.add_argument(
        "--json",
        action="store_true",
        help="machine-readable payload (rows + full decision records)",
    )
    pr.set_defaults(func=_cmd_obs_report)
    ps = obs_sub.add_parser(
        "slo",
        help="serve the synthetic fleet demo under the stock SLOs "
        "and report burn rates / breaches",
    )
    ps.add_argument(
        "--workers",
        type=int,
        default=2,
        help="fleet width for the demo (default 2, local backend)",
    )
    ps.add_argument(
        "--latency-ms",
        type=float,
        default=50.0,
        help="latency_p99 objective threshold (default 50 ms; set "
        "low to force a breach)",
    )
    ps.add_argument(
        "--saturation-ms",
        type=float,
        default=20.0,
        help="shard_saturation backlog threshold (default 20 ms)",
    )
    ps.add_argument("--seed", type=int, default=0)
    ps.add_argument(
        "--dump",
        default=None,
        metavar="FILE",
        help="write a flight dump here on the first breach",
    )
    ps.add_argument(
        "--json",
        action="store_true",
        help="machine-readable statuses + breach history",
    )
    ps.set_defaults(func=_cmd_obs_slo)
    pd = obs_sub.add_parser(
        "dump",
        help="render a flight-recorder dump file (crash, SIGUSR1, "
        "or SLO-breach output)",
    )
    pd.add_argument("file", help="path to a flight-*.jsonl dump")
    pd.add_argument(
        "--json",
        action="store_true",
        help="machine-readable header + events + spans + metrics",
    )
    pd.set_defaults(func=_cmd_obs_dump)

    p = sub.add_parser(
        "lint",
        help="run the RDL static-analysis rules (RDL001-RDL012)",
    )
    p.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output for CI gating",
    )
    p.add_argument(
        "--explain",
        metavar="RDLxxx",
        help="print the rationale for one rule and exit",
    )
    p.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    p.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "race",
        help="static race report: run only the concurrency rules "
        "(RDL009-RDL012) over source paths",
    )
    p.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyse (default: src)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output for CI gating",
    )
    p.set_defaults(func=_cmd_race)

    p = sub.add_parser("datasets", help="list Table V dataset clones")
    p.set_defaults(func=_cmd_datasets)

    p = sub.add_parser("table7", help="print the regenerated Table VII")
    p.set_defaults(func=_cmd_table7)

    p = sub.add_parser("machines", help="list the hardware catalog")
    p.set_defaults(func=_cmd_machines)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
